"""Subtree access control.

The TOPS application motivates read control explicitly: query handling
profiles give subscribers "considerable control over the privacy of their
information", and real directory servers guard subtrees with access
control rules.  This module provides the generic mechanism:

- :class:`AccessRule` -- (subject, scope dn, base/sub, allow/deny);
- :class:`AccessControlList` -- an ordered rule list; for a given subject
  and entry dn, the *most specific matching* rule decides (ties broken by
  rule order), with a configurable default;
- :class:`SecuredEngine` -- wraps a query engine and filters every
  result by what the requesting subject may read.  Filtering happens on
  the result (one extra linear pass), so the evaluation bounds of the
  underlying engine are untouched.

Subjects are opaque strings; ``"*"`` matches anyone (including anonymous,
which is ``None``).
"""

from __future__ import annotations

from typing import List, Optional, Union

from .engine.engine import QueryEngine, QueryResult
from .model.dn import DN
from .query.ast import Query

__all__ = ["AccessRule", "AccessControlList", "SecuredEngine"]


class AccessRule:
    """One rule: does ``subject`` get to read the subtree at ``scope_dn``?"""

    def __init__(
        self,
        subject: str,
        scope_dn: Union[DN, str],
        allow: bool,
        base_only: bool = False,
    ):
        if isinstance(scope_dn, str):
            scope_dn = DN.parse(scope_dn)
        self.subject = subject
        self.scope_dn = scope_dn
        self.allow = allow
        self.base_only = base_only

    def matches(self, subject: Optional[str], dn: DN) -> bool:
        if self.subject != "*" and subject != self.subject:
            return False
        if self.base_only:
            return dn == self.scope_dn
        return self.scope_dn.is_prefix_of(dn)

    def specificity(self) -> int:
        """Deeper scopes are more specific; at equal depth, a named subject
        beats the wildcard, and a base-only rule beats a subtree rule."""
        return (
            self.scope_dn.depth() * 4
            + (2 if self.subject != "*" else 0)
            + (1 if self.base_only else 0)
        )

    def __repr__(self) -> str:
        return "AccessRule(%s %s %s%s)" % (
            "allow" if self.allow else "deny",
            self.subject,
            self.scope_dn or "(root)",
            " [base]" if self.base_only else "",
        )


class AccessControlList:
    """An ordered list of rules with most-specific-match resolution."""

    def __init__(self, default_allow: bool = False):
        self.default_allow = default_allow
        self._rules: List[AccessRule] = []

    def allow(self, subject: str, scope_dn: Union[DN, str], base_only: bool = False) -> "AccessControlList":
        self._rules.append(AccessRule(subject, scope_dn, True, base_only))
        return self

    def deny(self, subject: str, scope_dn: Union[DN, str], base_only: bool = False) -> "AccessControlList":
        self._rules.append(AccessRule(subject, scope_dn, False, base_only))
        return self

    def readable(self, subject: Optional[str], dn: DN) -> bool:
        """May ``subject`` read the entry at ``dn``?"""
        best: Optional[AccessRule] = None
        best_rank = None
        for position, rule in enumerate(self._rules):
            if not rule.matches(subject, dn):
                continue
            # Most specific wins; earlier rules win ties (negative position
            # so earlier = larger rank at equal specificity).
            rank = (rule.specificity(), -position)
            if best_rank is None or rank > best_rank:
                best = rule
                best_rank = rank
        if best is None:
            return self.default_allow
        return best.allow

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return "AccessControlList(%d rules, default %s)" % (
            len(self._rules),
            "allow" if self.default_allow else "deny",
        )


class SecuredEngine:
    """A query engine that filters results by subject visibility."""

    def __init__(self, engine: QueryEngine, acl: AccessControlList):
        self.engine = engine
        self.acl = acl

    def run(self, query: Union[Query, str], subject: Optional[str] = None) -> QueryResult:
        """Evaluate and return only the entries ``subject`` may read."""
        result = self.engine.run(query)
        visible = [
            entry for entry in result.entries if self.acl.readable(subject, entry.dn)
        ]
        return QueryResult(visible, result.io, result.elapsed)

    def __repr__(self) -> str:
        return "SecuredEngine(%r, %r)" % (self.engine, self.acl)
