"""Directory entries (Definition 3.2).

An entry ``r`` carries:

- ``dn(r)`` -- its distinguished name (the key);
- ``class(r)`` -- a non-empty set of class names;
- ``val(r)`` -- a *set* of (attribute, value) pairs.  A single attribute may
  appear with several values, which is one of the three forms of
  heterogeneity Section 3.5 calls out; but a given (attribute, value) pair
  appears at most once.

Entries are value objects: equality and hashing are by dn (dn is a key of
the instance), while :meth:`Entry.same_content` compares full content.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .dn import DN
from .schema import OBJECT_CLASS

__all__ = ["Entry"]


class Entry:
    """One directory entry.

    ``values`` maps attribute name to the tuple of its values (duplicates
    removed, first occurrence order preserved).  ``objectClass`` is kept in
    sync with ``classes`` at construction (condition (c2) of
    Definition 3.2).
    """

    __slots__ = ("_dn", "_classes", "_values")

    def __init__(
        self,
        dn: DN,
        classes: Iterable[str],
        values: Optional[Dict[str, Iterable[Any]]] = None,
    ):
        self._dn = dn
        self._classes = frozenset(classes)
        if not self._classes:
            raise ValueError("class(r) must be non-empty (Definition 3.2b)")
        store: Dict[str, Tuple[Any, ...]] = {}
        for attr, vals in (values or {}).items():
            deduped = _dedupe(vals)
            if deduped:
                store[attr] = deduped
        # Condition (c2): objectClass values are exactly the classes.
        store[OBJECT_CLASS] = tuple(sorted(self._classes))
        self._values = store

    # -- the three components ----------------------------------------------

    @property
    def dn(self) -> DN:
        return self._dn

    @property
    def classes(self) -> frozenset:
        """``class(r)``."""
        return self._classes

    @property
    def rdn(self):
        return self._dn.rdn

    def values(self, attribute: str) -> Tuple[Any, ...]:
        """All values of ``attribute`` (empty tuple if absent)."""
        return self._values.get(attribute, ())

    def first(self, attribute: str) -> Any:
        """The first value of ``attribute``, or ``None``."""
        vals = self._values.get(attribute)
        return vals[0] if vals else None

    def has(self, attribute: str) -> bool:
        """Presence test (the ``a=*`` atomic filter)."""
        return attribute in self._values

    def attributes(self) -> List[str]:
        """Attribute names present on this entry, sorted."""
        return sorted(self._values)

    def pairs(self) -> Iterator[Tuple[str, Any]]:
        """Iterate ``val(r)`` as (attribute, value) pairs."""
        for attr in sorted(self._values):
            for value in self._values[attr]:
                yield attr, value

    def value_count(self, attribute: str) -> int:
        return len(self._values.get(attribute, ()))

    # -- derived -----------------------------------------------------------

    def rdn_consistent(self) -> bool:
        """Condition (d-ii) of Definition 3.2: ``rdn(r) subseteq val(r)``.

        RDN values are compared as strings against the string form of the
        entry's values, because RDNs are textual."""
        for attr, value in self._dn.rdn:
            if not any(str(v) == value for v in self.values(attr)):
                return False
        return True

    def with_values(self, **extra: Iterable[Any]) -> "Entry":
        """A copy of this entry with additional attribute values appended."""
        merged: Dict[str, Iterable[Any]] = {
            attr: list(vals) for attr, vals in self._values.items()
        }
        for attr, vals in extra.items():
            merged.setdefault(attr, [])
            merged[attr] = list(merged[attr]) + list(vals)
        merged.pop(OBJECT_CLASS, None)
        return Entry(self._dn, self._classes, merged)

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return self._dn == other._dn

    def __hash__(self) -> int:
        return hash(self._dn)

    def same_content(self, other: "Entry") -> bool:
        """Full structural equality (dn, classes and all values)."""
        return (
            self._dn == other._dn
            and self._classes == other._classes
            and {a: frozenset(map(str, v)) for a, v in self._values.items()}
            == {a: frozenset(map(str, v)) for a, v in other._values.items()}
        )

    def __repr__(self) -> str:
        return "Entry(%s)" % self._dn

    def pretty(self) -> str:
        """A multi-line rendering in the style of the paper's figures."""
        lines = [str(self._dn) or "(null dn)"]
        for attr, value in self.pairs():
            lines.append("  %s: %s" % (attr, value))
        return "\n".join(lines)


def _dedupe(values: Iterable[Any]) -> Tuple[Any, ...]:
    """Remove duplicates preserving first-occurrence order.

    ``val(r)`` is a set of pairs, so the same (attribute, value) pair must
    not appear twice."""
    seen = set()
    out = []
    for value in values:
        marker = (type(value).__name__, str(value))
        if marker not in seen:
            seen.add(marker)
            out.append(value)
    return tuple(out)
