"""The type system of the directory data model (Section 3.1).

The paper assumes a set ``T`` of type names, each with an associated domain,
containing at least the basic types ``string`` and ``int`` plus the complex
type ``distinguishedName`` whose domain is the set of DNs (sequences of sets
of (attribute, value) pairs).  Commercial servers add a few more (telephone
numbers, case-insensitive strings, ...); we model the ones the paper's
examples need and leave the registry open for extension.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .dn import DN, DNSyntaxError

__all__ = [
    "AttributeType",
    "TypeRegistry",
    "STRING",
    "INT",
    "DN_TYPE",
    "TypeError_",
    "default_registry",
]


class TypeError_(ValueError):
    """Raised when a value does not belong to the domain of a type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class AttributeType:
    """A named type with a domain membership test and a canonicalizer.

    ``contains(v)`` decides domain membership (Definition 3.1 uses
    ``v in dom(t)``); ``coerce(v)`` converts accepted surface values (e.g.
    the string form of an int, the string form of a DN) to the canonical
    Python representation stored in directory entries.
    """

    def __init__(
        self,
        name: str,
        contains: Callable[[Any], bool],
        coerce: Optional[Callable[[Any], Any]] = None,
    ):
        self.name = name
        self._contains = contains
        self._coerce = coerce or (lambda value: value)

    def contains(self, value: Any) -> bool:
        """True iff ``value`` (already canonical) is in this type's domain."""
        return self._contains(value)

    def coerce(self, value: Any) -> Any:
        """Convert a surface value to canonical form, or raise
        :class:`TypeError_`."""
        try:
            canonical = self._coerce(value)
        except (ValueError, TypeError, DNSyntaxError) as exc:
            raise TypeError_(
                "%r is not a valid %s: %s" % (value, self.name, exc)
            ) from exc
        if not self._contains(canonical):
            raise TypeError_("%r is not in dom(%s)" % (value, self.name))
        return canonical

    def __repr__(self) -> str:
        return "AttributeType(%r)" % self.name


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        raise ValueError("booleans are not directory ints")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return int(value.strip())
    raise ValueError("cannot interpret as int")


def _coerce_dn(value: Any) -> DN:
    if isinstance(value, DN):
        return value
    if isinstance(value, str):
        return DN.parse(value)
    raise ValueError("cannot interpret as distinguishedName")


#: The basic ``string`` type.
STRING = AttributeType(
    "string",
    contains=lambda value: isinstance(value, str),
    coerce=lambda value: value if isinstance(value, str) else str(value),
)

#: The basic ``int`` type.
INT = AttributeType(
    "int",
    contains=lambda value: isinstance(value, int) and not isinstance(value, bool),
    coerce=_coerce_int,
)

#: The complex ``distinguishedName`` type: values are DNs and can serve as
#: directory entry references (Section 7).
DN_TYPE = AttributeType(
    "distinguishedName",
    contains=lambda value: isinstance(value, DN),
    coerce=_coerce_dn,
)


class TypeRegistry:
    """The set ``T`` of types available to a schema.

    Always contains ``string``, ``int`` and ``distinguishedName``; further
    types may be registered (e.g. a ``telephoneNumber`` type).
    """

    def __init__(self) -> None:
        self._types: Dict[str, AttributeType] = {}
        for builtin in (STRING, INT, DN_TYPE):
            self.register(builtin)

    def register(self, type_: AttributeType) -> AttributeType:
        if type_.name in self._types and self._types[type_.name] is not type_:
            raise ValueError("type %r already registered" % type_.name)
        self._types[type_.name] = type_
        return type_

    def get(self, name: str) -> AttributeType:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError("unknown type %r" % name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self):
        return sorted(self._types)


_DEFAULT = TypeRegistry()


def default_registry() -> TypeRegistry:
    """The shared default registry holding the built-in types."""
    return _DEFAULT
