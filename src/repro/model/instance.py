"""Directory instances (Definition 3.2): a forest of entries.

A :class:`DirectoryInstance` of a schema ``S`` is the 4-tuple
``I = (R, class, val, dn)``.  ``dn`` is a key (enforced structurally: the
instance is a mapping from DN to entry).  The hierarchy of entries -- the
*directory information forest* (DIF) of Section 3.3 -- is induced purely by
the distinguished names; an entry whose parent dn is not present is a root
of the forest (the paper generalises LDAP's tree to a forest to obtain
closure of its query languages).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .dn import DN
from .entry import Entry
from .schema import OBJECT_CLASS, DirectorySchema, SchemaError

__all__ = ["DirectoryInstance", "InstanceError"]


class InstanceError(ValueError):
    """Raised on operations that would break instance invariants."""


class DirectoryInstance:
    """A validating, in-memory directory instance.

    This is the *logical* data structure; :mod:`repro.storage.store` lays an
    instance out on the simulated block device for the external-memory
    algorithms.  Entries are kept in a dict by DN plus a list of DN keys in
    reverse-dn sorted order, so hierarchical range scans are cheap.
    """

    def __init__(
        self,
        schema: DirectorySchema,
        require_parents: bool = False,
    ):
        self.schema = schema
        #: When true, every non-root insertion must have its parent present
        #: (the LDAP discipline); when false, arbitrary forests are allowed
        #: (the paper's model).
        self.require_parents = require_parents
        self._entries: Dict[DN, Entry] = {}
        self._sorted_keys: List[Tuple[Tuple[str, ...], DN]] = []

    # -- mutation ----------------------------------------------------------

    def add(
        self,
        dn: Union[DN, str],
        classes: Iterable[str],
        attributes: Optional[Dict[str, Iterable[Any]]] = None,
        **kw_attributes: Any,
    ) -> Entry:
        """Create, validate and insert an entry.

        ``attributes`` maps attribute name to an iterable of values;
        ``kw_attributes`` is a convenience for single values or lists, e.g.
        ``instance.add(dn, ["dcObject"], dc="att")``.  Values are coerced
        through the schema's types.
        """
        if isinstance(dn, str):
            dn = DN.parse(dn)
        if dn.is_null():
            raise InstanceError("cannot insert an entry at the null dn")
        if dn in self._entries:
            raise InstanceError("dn is a key: %s already present" % dn)
        if self.require_parents and dn.depth() > 1 and dn.parent not in self._entries:
            raise InstanceError("parent of %s is not present" % dn)

        merged: Dict[str, List[Any]] = {}
        for attr, vals in (attributes or {}).items():
            merged[attr] = list(_as_values(vals))
        for attr, vals in kw_attributes.items():
            merged.setdefault(attr, []).extend(_as_values(vals))
        merged.pop(OBJECT_CLASS, None)

        class_set = frozenset(classes)
        coerced = self._check_and_coerce(dn, class_set, merged)
        entry = Entry(dn, class_set, coerced)
        if not entry.rdn_consistent():
            raise InstanceError(
                "rdn(r) must be a subset of val(r) (Definition 3.2d-ii): "
                "%s vs values %s" % (dn.rdn, sorted(coerced))
            )
        self._entries[dn] = entry
        insort(self._sorted_keys, (dn.key(), dn))
        return entry

    def add_entry(self, entry: Entry) -> Entry:
        """Insert an already-built entry (re-validated)."""
        values = {attr: list(entry.values(attr)) for attr in entry.attributes()}
        values.pop(OBJECT_CLASS, None)
        return self.add(entry.dn, entry.classes, values)

    def remove(self, dn: Union[DN, str], recursive: bool = False) -> int:
        """Remove an entry; with ``recursive`` also its whole subtree.

        Returns the number of entries removed."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        if dn not in self._entries:
            raise InstanceError("no entry at %s" % dn)
        victims = [dn]
        if recursive:
            victims.extend(e.dn for e in self.descendants_of(dn))
        elif any(True for _ in self.children_of(dn)):
            raise InstanceError("%s has children; pass recursive=True" % dn)
        for victim in victims:
            del self._entries[victim]
            index = bisect_left(self._sorted_keys, (victim.key(), victim))
            del self._sorted_keys[index]
        return len(victims)

    # -- validation ----------------------------------------------------------

    def _check_and_coerce(
        self,
        dn: DN,
        classes: frozenset,
        values: Dict[str, List[Any]],
    ) -> Dict[str, List[Any]]:
        schema = self.schema
        for class_name in classes:
            if not schema.has_class(class_name):
                raise SchemaError("undeclared class %r at %s" % (class_name, dn))
        coerced: Dict[str, List[Any]] = {}
        for attr, vals in values.items():
            if not schema.has_attribute(attr):
                raise SchemaError("undeclared attribute %r at %s" % (attr, dn))
            if not schema.attribute_allowed_for(attr, classes):
                raise SchemaError(
                    "attribute %r is not allowed by any class of %s "
                    "(Definition 3.2c-1)" % (attr, dn)
                )
            coerced[attr] = [schema.coerce_value(attr, v) for v in vals]
        return coerced

    def validate(self) -> List[str]:
        """Re-check every instance invariant; return a list of violations
        (empty when the instance is consistent)."""
        problems = []
        for entry in self:
            if not entry.rdn_consistent():
                problems.append("rdn not in val: %s" % entry.dn)
            if frozenset(entry.values(OBJECT_CLASS)) != entry.classes:
                problems.append("objectClass out of sync: %s" % entry.dn)
            try:
                self._check_and_coerce(
                    entry.dn,
                    entry.classes,
                    {
                        attr: list(entry.values(attr))
                        for attr in entry.attributes()
                        if attr != OBJECT_CLASS
                    },
                )
            except SchemaError as exc:
                problems.append(str(exc))
        return problems

    # -- lookup ----------------------------------------------------------------

    def get(self, dn: Union[DN, str]) -> Optional[Entry]:
        if isinstance(dn, str):
            dn = DN.parse(dn)
        return self._entries.get(dn)

    def __contains__(self, dn: DN) -> bool:
        return dn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        """Iterate entries in reverse-dn sorted order (the canonical order
        of every list the algorithms consume)."""
        for _key, dn in self._sorted_keys:
            yield self._entries[dn]

    def entries_sorted(self) -> List[Entry]:
        return list(self)

    # -- hierarchy -----------------------------------------------------------

    def parent_of(self, entry: Entry) -> Optional[Entry]:
        dn = entry.dn
        if dn.depth() <= 1:
            return None
        return self._entries.get(dn.parent)

    def children_of(self, dn: Union[DN, str]) -> Iterator[Entry]:
        if isinstance(dn, str):
            dn = DN.parse(dn)
        for entry in self._subtree_range(dn, include_base=False):
            if dn.is_parent_of(entry.dn):
                yield entry

    def descendants_of(self, dn: Union[DN, str]) -> Iterator[Entry]:
        """All proper descendants, in sorted order."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        return self._subtree_range(dn, include_base=False)

    def subtree(self, dn: Union[DN, str]) -> Iterator[Entry]:
        """The entry at ``dn`` (if present) and all its descendants."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        return self._subtree_range(dn, include_base=True)

    def roots(self) -> Iterator[Entry]:
        """Entries with no parent present in the instance: the roots of the
        directory information forest."""
        for entry in self:
            dn = entry.dn
            if dn.depth() == 1 or dn.parent not in self._entries:
                yield entry

    def _subtree_range(self, dn: DN, include_base: bool) -> Iterator[Entry]:
        """Contiguous sorted-order scan of the subtree below ``dn``.

        Because entries are ordered by reverse-dn key, the subtree of ``dn``
        is exactly the contiguous run of keys having ``dn.key()`` as a
        prefix."""
        if dn.is_null():
            # Whole forest.
            for entry in self:
                yield entry
            return
        prefix = dn.key()
        start = bisect_left(self._sorted_keys, (prefix, dn))
        for index in range(start, len(self._sorted_keys)):
            key, entry_dn = self._sorted_keys[index]
            if key[: len(prefix)] != prefix:
                break
            if not include_base and entry_dn == dn:
                continue
            yield self._entries[entry_dn]

    def __repr__(self) -> str:
        return "DirectoryInstance(%d entries)" % len(self._entries)


def _as_values(value: Any) -> Iterable[Any]:
    """Interpret a keyword attribute: scalars become single values, lists,
    tuples and sets become multiple values."""
    if isinstance(value, (list, tuple, set, frozenset)):
        return list(value)
    return [value]
