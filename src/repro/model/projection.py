"""Attribute projection of search results.

LDAP searches name the attributes to return (so do LDAP URLs -- the
second URL component).  Projection produces reduced *views* of entries:
``objectClass`` and the RDN attributes are always retained so the
projected entry still satisfies Definition 3.2's invariants
(``rdn(r) subseteq val(r)``, objectClass in sync).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .entry import Entry

__all__ = ["project_entry", "project"]


def project_entry(entry: Entry, attributes: Sequence[str]) -> Entry:
    """A copy of ``entry`` restricted to ``attributes`` (plus objectClass
    and the RDN attributes).  An empty selection means "all attributes"
    (LDAP's convention)."""
    if not attributes:
        return entry
    keep = set(attributes)
    keep.update(entry.dn.rdn.attributes())
    values = {
        attribute: list(entry.values(attribute))
        for attribute in entry.attributes()
        if attribute in keep and attribute != "objectClass"
    }
    return Entry(entry.dn, entry.classes, values)


def project(entries: Iterable[Entry], attributes: Sequence[str]) -> List[Entry]:
    """Project every entry of a result."""
    return [project_entry(entry, attributes) for entry in entries]
