"""Distinguished names (DNs) and relative distinguished names (RDNs).

The paper (Definition 3.2) models the distinguished name of a directory
entry as a *sequence of sets* of (attribute, value) pairs, written leaf
first: ``dn(r) = s1; ...; sn`` where ``s1`` is the relative distinguished
name of ``r`` and ``s2; ...; sn`` is the dn of the parent of ``r``.  This
module implements that algebra:

- :class:`RDN` -- one set of (attribute, value) pairs;
- :class:`DN` -- a sequence of RDNs, leaf first, with parent / ancestor
  tests and the *reverse lexicographic sort key* that every external-memory
  algorithm in the paper relies on (Section 4.2).

The paper sorts entry lists "by the lexicographic ordering on the reverse of
the string representation of the distinguished names", so that the reverse
dn of a parent is a prefix of the reverse dn of each of its children.  We
implement the same order as a tuple of canonical RDN strings from the root
down (:meth:`DN.key`): a parent's key is a proper prefix of a child's key,
and all keys of a subtree are contiguous in sorted order.  This is exactly
the property the stack algorithms need, and unlike literal character-level
string reversal it is robust to RDN values that contain the separator.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Sequence, Tuple, Union

__all__ = [
    "AVA",
    "RDN",
    "DN",
    "ROOT_DN",
    "DNSyntaxError",
    "escape_value",
    "unescape_value",
]

#: An attribute-value assertion: one (attribute name, value) pair.
AVA = Tuple[str, str]

# Characters that must be escaped inside RDN attribute values (a pragmatic
# subset of RFC 2253).
_SPECIAL = {",", "+", "=", "\\", ";"}


class DNSyntaxError(ValueError):
    """Raised when a DN or RDN string cannot be parsed."""


def escape_value(value: str) -> str:
    """Escape the RDN-special characters in an attribute value."""
    out = []
    for ch in value:
        if ch in _SPECIAL:
            out.append("\\")
        out.append(ch)
    return "".join(out)


def unescape_value(value: str) -> str:
    """Reverse :func:`escape_value`."""
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise DNSyntaxError("dangling escape in %r" % value)
            out.append(value[i + 1])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_unescaped(text: str, sep: str) -> Iterator[str]:
    """Split ``text`` on every occurrence of ``sep`` not preceded by ``\\``."""
    part = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            part.append(ch)
            part.append(text[i + 1])
            i += 2
            continue
        if ch == sep:
            yield "".join(part)
            part = []
        else:
            part.append(ch)
        i += 1
    yield "".join(part)


@total_ordering
class RDN:
    """A relative distinguished name: a non-empty set of (attribute, value)
    pairs that distinguishes an entry among its siblings.

    The paper allows an arbitrary *set* of pairs (unlike UNIX file names,
    which use a single name attribute).  RDNs are immutable and hashable.
    """

    __slots__ = ("_avas", "_canonical")

    def __init__(self, avas: Iterable[AVA]):
        pairs = []
        for attr, value in avas:
            if not attr:
                raise DNSyntaxError("empty attribute name in RDN")
            pairs.append((attr, str(value)))
        if not pairs:
            raise DNSyntaxError("an RDN must contain at least one pair")
        self._avas = frozenset(pairs)
        # Canonical form: pairs sorted, '+'-joined, values escaped.  Used
        # both for display and as the unit of the DN sort key.
        self._canonical = "+".join(
            "%s=%s" % (attr, escape_value(value))
            for attr, value in sorted(self._avas)
        )

    @classmethod
    def single(cls, attr: str, value: str) -> "RDN":
        """Build the common single-pair RDN, e.g. ``RDN.single('dc', 'com')``."""
        return cls([(attr, value)])

    @classmethod
    def parse(cls, text: str) -> "RDN":
        """Parse ``attr=value`` or multi-valued ``a=v+b=w`` RDN syntax."""
        avas = []
        for part in _split_unescaped(text, "+"):
            part = part.strip()
            if not part:
                raise DNSyntaxError("empty AVA in RDN %r" % text)
            pieces = list(_split_unescaped(part, "="))
            if len(pieces) != 2:
                raise DNSyntaxError("malformed AVA %r (expected attr=value)" % part)
            attr, value = pieces
            attr = attr.strip()
            if not attr:
                raise DNSyntaxError("empty attribute name in %r" % part)
            avas.append((attr, unescape_value(value.strip())))
        return cls(avas)

    @property
    def avas(self) -> frozenset:
        """The frozenset of (attribute, value) pairs."""
        return self._avas

    def canonical(self) -> str:
        """Canonical string form (sorted pairs, escaped values)."""
        return self._canonical

    def attributes(self) -> Iterator[str]:
        """Iterate the attribute names used by this RDN."""
        for attr, _value in self._avas:
            yield attr

    def __contains__(self, ava: AVA) -> bool:
        return ava in self._avas

    def __iter__(self) -> Iterator[AVA]:
        return iter(sorted(self._avas))

    def __len__(self) -> int:
        return len(self._avas)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDN):
            return NotImplemented
        return self._avas == other._avas

    def __lt__(self, other: "RDN") -> bool:
        if not isinstance(other, RDN):
            return NotImplemented
        return self._canonical < other._canonical

    def __hash__(self) -> int:
        return hash(self._avas)

    def __str__(self) -> str:
        return self._canonical

    def __repr__(self) -> str:
        return "RDN(%r)" % self._canonical


@total_ordering
class DN:
    """A distinguished name: a sequence of RDNs, **leaf first** (as in the
    paper and in LDAP's string representation).

    ``DN(())`` is the *null dn* -- the conceptual parent of every forest
    root; the paper uses it as the base of whole-instance atomic queries
    (Section 8.1).  It is exported as :data:`ROOT_DN`.
    """

    __slots__ = ("_rdns", "_key", "_hash")

    def __init__(self, rdns: Sequence[RDN] = ()):
        self._rdns = tuple(rdns)
        # Root-first tuple of canonical RDN strings: the reverse-dn sort key.
        self._key = tuple(rdn.canonical() for rdn in reversed(self._rdns))
        self._hash = hash(self._key)

    # -- construction -----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "DN":
        """Parse the LDAP-style string form, e.g.
        ``"dc=research, dc=att, dc=com"`` (leaf first)."""
        text = text.strip()
        if not text:
            return ROOT_DN
        rdns = [RDN.parse(part) for part in _split_unescaped(text, ",")]
        return cls(rdns)

    @classmethod
    def of(cls, *components: Union[str, RDN]) -> "DN":
        """Build a DN from leaf-first components, each a string like
        ``"dc=com"`` or an :class:`RDN`."""
        rdns = [
            comp if isinstance(comp, RDN) else RDN.parse(comp)
            for comp in components
        ]
        return cls(rdns)

    def child(self, rdn: Union[str, RDN]) -> "DN":
        """The DN of a child of this entry with the given RDN."""
        if isinstance(rdn, str):
            rdn = RDN.parse(rdn)
        return DN((rdn,) + self._rdns)

    # -- structure --------------------------------------------------------

    @property
    def rdns(self) -> Tuple[RDN, ...]:
        """Leaf-first tuple of RDNs."""
        return self._rdns

    @property
    def rdn(self) -> RDN:
        """The relative distinguished name (the first set in the sequence)."""
        if not self._rdns:
            raise ValueError("the null dn has no RDN")
        return self._rdns[0]

    @property
    def parent(self) -> "DN":
        """The DN with the leading RDN removed.  The parent of a depth-1 DN
        is the null dn."""
        if not self._rdns:
            raise ValueError("the null dn has no parent")
        return DN(self._rdns[1:])

    def depth(self) -> int:
        """Number of RDN components (0 for the null dn)."""
        return len(self._rdns)

    def is_null(self) -> bool:
        return not self._rdns

    def ancestors(self) -> Iterator["DN"]:
        """Proper ancestors, nearest first, excluding the null dn."""
        for i in range(1, len(self._rdns)):
            yield DN(self._rdns[i:])

    # -- hierarchy tests --------------------------------------------------

    def key(self) -> Tuple[str, ...]:
        """The reverse-dn sort key: canonical RDN strings, root first.

        Sorting entry lists by this key realises the paper's "lexicographic
        ordering on the reverse of the string representation of the dn":
        a parent's key is a proper prefix of each child's key, and every
        subtree occupies a contiguous range.
        """
        return self._key

    def is_parent_of(self, other: "DN") -> bool:
        """True iff ``other``'s dn is ``rdn(other); self`` (Definition 3.2a)."""
        return other.depth() == self.depth() + 1 and self.is_prefix_of(other)

    def is_child_of(self, other: "DN") -> bool:
        return other.is_parent_of(self)

    def is_ancestor_of(self, other: "DN") -> bool:
        """True iff ``self`` is a *proper* ancestor of ``other``
        (Definition 3.2b).  The null dn is an ancestor of every non-null dn."""
        return other.depth() > self.depth() and self.is_prefix_of(other)

    def is_descendant_of(self, other: "DN") -> bool:
        return other.is_ancestor_of(self)

    def is_prefix_of(self, other: "DN") -> bool:
        """True iff this dn's key is a (not necessarily proper) prefix of
        ``other``'s key -- i.e. ``self == other`` or ``self`` is an ancestor."""
        if len(self._key) > len(other._key):
            return False
        return other._key[: len(self._key)] == self._key

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DN):
            return NotImplemented
        return self._key == other._key

    def __lt__(self, other: "DN") -> bool:
        if not isinstance(other, DN):
            return NotImplemented
        return self._key < other._key

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._rdns)

    def __str__(self) -> str:
        return ", ".join(rdn.canonical() for rdn in self._rdns)

    def __repr__(self) -> str:
        return "DN(%r)" % str(self)


#: The null dn: parent of all forest roots; base of whole-instance queries.
ROOT_DN = DN(())
