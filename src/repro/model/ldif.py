"""LDIF-style serialisation of directory instances.

Network directories interchange data as LDIF (the LDAP Data Interchange
Format); this module reads and writes a faithful subset so instances can
be dumped, versioned and reloaded:

- one record per entry: a ``dn:`` line followed by ``attribute: value``
  lines, blank-line separated;
- ``objectClass`` lines carry the entry's classes;
- multi-valued attributes repeat the attribute line;
- values are typed back through the schema on load (ints become ints,
  dn-valued attributes become :class:`~repro.model.dn.DN`);
- values containing leading/trailing spaces or newlines are base64-encoded
  with the standard ``attribute:: value`` syntax;
- ``#`` comment lines and line continuations (a leading single space) are
  honoured on input.

Entries may appear in any order; loading sorts them into the instance's
canonical order and validates them against the schema.
"""

from __future__ import annotations

import base64
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from .dn import DN

from .instance import DirectoryInstance
from .schema import OBJECT_CLASS, DirectorySchema

__all__ = ["dump_ldif", "dumps_ldif", "load_ldif", "loads_ldif", "LDIFError"]


class LDIFError(ValueError):
    """Raised on malformed LDIF input."""


def _needs_base64(value: str) -> bool:
    if not value:
        return False
    if value[0] in (" ", ":", "<") or value[-1] == " ":
        return True
    return any(ch in value for ch in ("\n", "\r", "\0"))


def _format_line(attribute: str, value: str) -> str:
    if _needs_base64(value):
        encoded = base64.b64encode(value.encode("utf-8")).decode("ascii")
        return "%s:: %s" % (attribute, encoded)
    return "%s: %s" % (attribute, value)


def dumps_ldif(instance: DirectoryInstance) -> str:
    """Serialise an instance to an LDIF string (canonical entry order)."""
    records = []
    for entry in instance:
        lines = [_format_line("dn", str(entry.dn))]
        for class_name in sorted(entry.classes):
            lines.append(_format_line(OBJECT_CLASS, class_name))
        for attribute in entry.attributes():
            if attribute == OBJECT_CLASS:
                continue
            for value in entry.values(attribute):
                lines.append(_format_line(attribute, str(value)))
        records.append("\n".join(lines))
    return "\n\n".join(records) + ("\n" if records else "")


def dump_ldif(instance: DirectoryInstance, stream: TextIO) -> None:
    """Serialise to a writable text stream."""
    stream.write(dumps_ldif(instance))


def _logical_lines(raw_lines: Iterable[str]) -> Iterator[str]:
    """Unfold continuations and drop comments/blank bookkeeping upstream."""
    current: Optional[str] = None
    for raw in raw_lines:
        line = raw.rstrip("\n")
        if line.startswith(" ") and current is not None:
            current += line[1:]
            continue
        if current is not None:
            yield current
        current = line
    if current is not None:
        yield current


def _parse_line(line: str) -> Tuple[str, str]:
    attribute, sep, rest = line.partition(":")
    attribute = attribute.strip()
    if not sep:
        raise LDIFError("missing ':' in LDIF line %r" % line)
    if not attribute:
        raise LDIFError("missing attribute name in %r" % line)
    if rest.startswith(":"):
        encoded = rest[1:].strip()
        try:
            value = base64.b64decode(encoded.encode("ascii"), validate=True).decode("utf-8")
        except Exception as exc:
            raise LDIFError("bad base64 value in %r: %s" % (line, exc)) from exc
        return attribute, value
    return attribute, rest.strip()


def loads_ldif(
    text: str,
    schema: DirectorySchema,
    require_parents: bool = False,
) -> DirectoryInstance:
    """Parse LDIF text into a validated instance of ``schema``."""
    instance = DirectoryInstance(schema, require_parents=False)
    pending: List[Tuple[DN, List[str], Dict[str, List[str]]]] = []

    record_lines: List[str] = []

    def flush_record(lines: List[str]) -> None:
        if not lines:
            return
        dn: Optional[DN] = None
        classes: List[str] = []
        values: Dict[str, List[str]] = {}
        for line in _logical_lines(lines):
            if not line or line.startswith("#"):
                continue
            attribute, value = _parse_line(line)
            if attribute.lower() == "dn":
                if dn is not None:
                    raise LDIFError("duplicate dn line in record: %r" % line)
                dn = DN.parse(value)
            elif attribute == OBJECT_CLASS:
                classes.append(value)
            else:
                values.setdefault(attribute, []).append(value)
        if dn is None:
            raise LDIFError("record without a dn line: %r..." % lines[0][:40])
        if not classes:
            raise LDIFError("record %s has no objectClass" % dn)
        pending.append((dn, classes, values))

    for raw in text.splitlines():
        if raw.strip() == "" and not raw.startswith(" "):
            flush_record(record_lines)
            record_lines = []
        else:
            record_lines.append(raw)
    flush_record(record_lines)

    # Insert parents first so require_parents instances load regardless of
    # record order in the file.
    pending.sort(key=lambda record: record[0].key())
    if require_parents:
        instance = DirectoryInstance(schema, require_parents=True)
    for dn, classes, values in pending:
        instance.add(dn, classes, values)
    return instance


def load_ldif(
    stream: TextIO,
    schema: DirectorySchema,
    require_parents: bool = False,
) -> DirectoryInstance:
    """Parse LDIF from a readable text stream."""
    return loads_ldif(stream.read(), schema, require_parents=require_parents)
