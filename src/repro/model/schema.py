"""Directory schemas (Definition 3.1).

A directory schema is a 4-tuple ``S = (C, A, tau, beta)``:

- ``C`` -- a finite set of class names;
- ``A`` -- a finite set of attributes, always containing ``objectClass``;
- ``tau : A -> T`` -- associates a *type* with each attribute, with
  ``tau(objectClass) = string``.  Crucially, the type of an attribute is
  defined independently of the classes that carry it: every occurrence of
  the same attribute, in any class, shares one type;
- ``beta : C -> 2^A`` -- associates each class with its set of *allowed*
  attributes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set

from .types import AttributeType, TypeRegistry, default_registry

__all__ = ["SchemaError", "DirectorySchema", "OBJECT_CLASS"]

#: The mandatory attribute naming the classes of each entry.
OBJECT_CLASS = "objectClass"


class SchemaError(ValueError):
    """Raised when a schema is internally inconsistent, or when an entry
    violates its schema."""


class DirectorySchema:
    """An explicit, validating implementation of Definition 3.1.

    Example::

        schema = DirectorySchema()
        schema.add_attribute("dc", "string")
        schema.add_class("dcObject", {"dc"})
    """

    def __init__(self, types: Optional[TypeRegistry] = None):
        self.types = types or default_registry()
        self._tau: Dict[str, str] = {OBJECT_CLASS: "string"}
        self._beta: Dict[str, FrozenSet[str]] = {}

    # -- construction -----------------------------------------------------

    def add_attribute(self, name: str, type_name: str) -> None:
        """Declare attribute ``name`` with type ``type_name``.

        Re-declaring with the same type is a no-op; re-declaring with a
        different type is an error (attribute types are class-independent).
        """
        if not name:
            raise SchemaError("attribute name must be non-empty")
        if type_name not in self.types:
            raise SchemaError("unknown type %r for attribute %r" % (type_name, name))
        existing = self._tau.get(name)
        if existing is not None and existing != type_name:
            raise SchemaError(
                "attribute %r already has type %r (tried to re-declare as %r); "
                "attribute types are shared across all classes" % (name, existing, type_name)
            )
        self._tau[name] = type_name

    def add_class(self, name: str, allowed_attributes: Iterable[str]) -> None:
        """Declare class ``name`` with its allowed attribute set.

        ``objectClass`` is implicitly allowed for every class (condition
        (c2) of Definition 3.2 makes every entry carry it)."""
        if not name:
            raise SchemaError("class name must be non-empty")
        if name in self._beta:
            raise SchemaError("class %r already declared" % name)
        allowed = set(allowed_attributes)
        allowed.add(OBJECT_CLASS)
        missing = sorted(attr for attr in allowed if attr not in self._tau)
        if missing:
            raise SchemaError(
                "class %r allows undeclared attributes: %s" % (name, ", ".join(missing))
            )
        self._beta[name] = frozenset(allowed)

    # -- the four components ---------------------------------------------

    @property
    def classes(self) -> Set[str]:
        """``C``: the declared class names."""
        return set(self._beta)

    @property
    def attributes(self) -> Set[str]:
        """``A``: the declared attribute names (always contains
        ``objectClass``)."""
        return set(self._tau)

    def type_name_of(self, attribute: str) -> str:
        """``tau``, by name."""
        try:
            return self._tau[attribute]
        except KeyError:
            raise SchemaError("undeclared attribute %r" % attribute) from None

    def type_of(self, attribute: str) -> AttributeType:
        """``tau``, resolved to the :class:`AttributeType`."""
        return self.types.get(self.type_name_of(attribute))

    def allowed_attributes(self, class_name: str) -> FrozenSet[str]:
        """``beta(c)``: the allowed attributes of a class."""
        try:
            return self._beta[class_name]
        except KeyError:
            raise SchemaError("undeclared class %r" % class_name) from None

    def has_class(self, class_name: str) -> bool:
        return class_name in self._beta

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self._tau

    # -- entry-level checks (used by DirectoryInstance) --------------------

    def attribute_allowed_for(self, attribute: str, classes: Iterable[str]) -> bool:
        """True iff ``attribute`` is an allowed attribute of at least one of
        ``classes`` (condition (c1) of Definition 3.2)."""
        return any(
            attribute in self._beta.get(class_name, frozenset())
            for class_name in classes
        )

    def coerce_value(self, attribute: str, value):
        """Coerce ``value`` into the domain of ``tau(attribute)``."""
        return self.type_of(attribute).coerce(value)

    def __repr__(self) -> str:
        return "DirectorySchema(classes=%d, attributes=%d)" % (
            len(self._beta),
            len(self._tau),
        )
