"""A standard schema in the spirit of Netscape Directory Server 3.1.

The paper's examples draw their classes (``dcObject``, ``domain``,
``organizationalUnit``, ``inetOrgPerson``, ``organizationalPerson``, ...)
"from the default schema of Netscape Directory Server 3.1"; this module
provides a ready-made schema with those classes plus a ``telephoneNumber``
type, so applications and examples don't have to re-declare the common
vocabulary.

The schema is open: callers may keep adding attributes and classes.
"""

from __future__ import annotations

from .schema import DirectorySchema
from .types import AttributeType, TypeRegistry

__all__ = ["standard_schema", "telephone_number_type"]


def telephone_number_type() -> AttributeType:
    """A phone-number type: digits with optional +, spaces and dashes
    (commercial servers carry such a type alongside string/int)."""

    def contains(value) -> bool:
        if not isinstance(value, str) or not value:
            return False
        bare = value.lstrip("+").replace("-", "").replace(" ", "")
        return bare.isdigit()

    return AttributeType("telephoneNumber", contains=contains, coerce=str)


def standard_schema() -> DirectorySchema:
    """The shared base vocabulary of the paper's figures."""
    types = TypeRegistry()
    types.register(telephone_number_type())
    schema = DirectorySchema(types)

    for attribute, type_name in (
        ("dc", "string"),
        ("ou", "string"),
        ("o", "string"),
        ("commonName", "string"),
        ("surName", "string"),
        ("givenName", "string"),
        ("uid", "string"),
        ("mail", "string"),
        ("title", "string"),
        ("description", "string"),
        ("telephoneNumber", "telephoneNumber"),
        ("facsimileTelephoneNumber", "telephoneNumber"),
        ("roomNumber", "string"),
        ("employeeNumber", "int"),
        ("manager", "distinguishedName"),
        ("secretary", "distinguishedName"),
        ("seeAlso", "distinguishedName"),
        ("member", "distinguishedName"),
    ):
        schema.add_attribute(attribute, type_name)

    schema.add_class("dcObject", {"dc"})
    schema.add_class("domain", {"dc", "description"})
    schema.add_class("organization", {"o", "description", "telephoneNumber"})
    schema.add_class("organizationalUnit", {"ou", "description", "telephoneNumber"})
    schema.add_class(
        "person",
        {"commonName", "surName", "telephoneNumber", "description", "seeAlso"},
    )
    schema.add_class(
        "organizationalPerson",
        {
            "commonName",
            "surName",
            "title",
            "ou",
            "telephoneNumber",
            "facsimileTelephoneNumber",
            "roomNumber",
            "secretary",
            "manager",
            "seeAlso",
        },
    )
    schema.add_class(
        "inetOrgPerson",
        {
            "commonName",
            "surName",
            "givenName",
            "uid",
            "mail",
            "title",
            "ou",
            "employeeNumber",
            "telephoneNumber",
            "roomNumber",
            "manager",
            "secretary",
            "seeAlso",
        },
    )
    schema.add_class("groupOfNames", {"commonName", "member", "description"})
    return schema
