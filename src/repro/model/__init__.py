"""The network directory data model (Section 3 of the paper)."""

from .dn import AVA, DN, ROOT_DN, RDN, DNSyntaxError
from .entry import Entry
from .instance import DirectoryInstance, InstanceError
from .ldif import LDIFError, dump_ldif, dumps_ldif, load_ldif, loads_ldif
from .integrity import find_dangling_references, reference_graph, referencing_entries
from .projection import project, project_entry
from .standard import standard_schema, telephone_number_type
from .schema import OBJECT_CLASS, DirectorySchema, SchemaError
from .types import (
    DN_TYPE,
    INT,
    STRING,
    AttributeType,
    TypeRegistry,
    default_registry,
)

__all__ = [
    "AVA",
    "DN",
    "ROOT_DN",
    "RDN",
    "DNSyntaxError",
    "Entry",
    "DirectoryInstance",
    "InstanceError",
    "LDIFError",
    "dump_ldif",
    "dumps_ldif",
    "load_ldif",
    "loads_ldif",
    "find_dangling_references",
    "reference_graph",
    "referencing_entries",
    "project",
    "project_entry",
    "standard_schema",
    "telephone_number_type",
    "OBJECT_CLASS",
    "DirectorySchema",
    "SchemaError",
    "DN_TYPE",
    "INT",
    "STRING",
    "AttributeType",
    "TypeRegistry",
    "default_registry",
]
