"""Referential integrity over dn-valued attributes.

Section 3.5 notes that "arbitrary DAGs and cyclic data can easily be
described by having attributes 'pointing' to the referenced entries" --
which also means references can dangle (the paper's QoS schema references
profiles, periods, actions and exception policies that administrators
add and remove independently).  This module audits them:

- :func:`find_dangling_references` -- every (entry, attribute, target)
  whose target dn is absent from the instance;
- :func:`reference_graph` -- the directed reference graph as adjacency
  lists (useful for closure/impact analysis);
- :func:`referencing_entries` -- who points at a given dn (what would
  break if it were deleted).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .dn import DN
from .entry import Entry
from .instance import DirectoryInstance

__all__ = ["find_dangling_references", "reference_graph", "referencing_entries"]


def _dn_refs(entry: Entry, attributes: Optional[Sequence[str]]) -> List[Tuple[str, DN]]:
    """(attribute, target) pairs for the entry's dn-valued attributes."""
    names = attributes if attributes is not None else entry.attributes()
    refs = []
    for attribute in names:
        for value in entry.values(attribute):
            if isinstance(value, DN):
                refs.append((attribute, value))
    return refs


def find_dangling_references(
    instance: DirectoryInstance,
    attributes: Optional[Sequence[str]] = None,
) -> List[Tuple[DN, str, DN]]:
    """Every reference whose target entry does not exist.

    ``attributes`` restricts the audit to the named attributes (default:
    every dn-typed value on every entry)."""
    dangling = []
    for entry in instance:
        for attribute, target in _dn_refs(entry, attributes):
            if instance.get(target) is None:
                dangling.append((entry.dn, attribute, target))
    return dangling


def reference_graph(
    instance: DirectoryInstance,
    attributes: Optional[Sequence[str]] = None,
) -> Dict[DN, List[DN]]:
    """Adjacency lists of the (existing-target) reference graph."""
    graph: Dict[DN, List[DN]] = {}
    for entry in instance:
        targets = [
            target
            for _attribute, target in _dn_refs(entry, attributes)
            if instance.get(target) is not None
        ]
        if targets:
            graph[entry.dn] = sorted(set(targets), key=lambda dn: dn.key())
    return graph


def referencing_entries(
    instance: DirectoryInstance,
    target: Union[DN, str],
    attributes: Optional[Sequence[str]] = None,
) -> List[Tuple[DN, str]]:
    """Who references ``target``: (referrer dn, attribute) pairs -- the
    entries a deletion of ``target`` would leave dangling."""
    if isinstance(target, str):
        target = DN.parse(target)
    referrers = []
    for entry in instance:
        for attribute, candidate in _dn_refs(entry, attributes):
            if candidate == target:
                referrers.append((entry.dn, attribute))
    return referrers
