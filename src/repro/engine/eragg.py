"""Embedded-reference operators ``vd`` / ``dv`` -- ComputeERAgg (Figure 3,
Section 7.2), generalised to arbitrary aggregate selection terms.

The shape follows the paper's sort-merge strategy:

``dv (L1, L2, a)`` -- witnesses of ``r1`` are the L2 entries whose
attribute ``a`` embeds ``dn(r1)``:

1. scan L2, exploding each dn-valued ``a`` into a pair
   ``(embedded-dn-key, witness-entry)`` (the list ``LP``);
2. external-sort ``LP`` by the embedded dn's reverse key -- the
   ``(|L2| m / B) log(|L2| m / B)`` term of Theorem 7.1;
3. co-scan the sorted ``LP`` with L1 (already in the same order), folding
   each matching pair into the witness-aggregate states of its unique L1
   entry; every L1 entry (witnessed or not) is emitted annotated;
4. the shared selection phase applies the filter.

``vd (L1, L2, a)`` is symmetric but the pairs come from L1 and must be
re-grouped by their owning entry after matching, which costs one more sort
of the matched pairs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..model.dn import DN, DNSyntaxError
from ..query.aggregates import AggSelFilter
from ..storage.extsort import external_sort
from ..storage.pager import Pager
from ..storage.runs import Run, RunWriter
from .common import add_witness, fresh_states, resolve_terms, witness_terms_of
from .selection import select_annotated

__all__ = ["embedded_ref_select"]


def embedded_ref_select(
    pager: Pager,
    op: str,
    first: Run,
    second: Run,
    attribute: str,
    agg_filter: Optional[AggSelFilter] = None,
    memory_pages: int = 4,
) -> Run:
    """Evaluate ``(op first second attribute [agg_filter])`` on sorted runs."""
    if op not in ("vd", "dv"):
        raise ValueError("unknown embedded-reference operator %r" % op)
    terms = witness_terms_of(agg_filter)
    skipped: List[int] = [0]
    if op == "dv":
        annotated = _annotate_dv(
            pager, first, second, attribute, terms, memory_pages, skipped
        )
    else:
        annotated = _annotate_vd(
            pager, first, second, attribute, terms, memory_pages, skipped
        )
    try:
        result = select_annotated(pager, annotated, terms, agg_filter)
    finally:
        annotated.free()
    # Surface unparseable embedded references instead of dropping them
    # silently: the count rides on the result run, up to QueryResult /
    # EXPLAIN --analyze.
    result.eval_errors += skipped[0]
    return result


def _dn_values(entry, attribute: str, skipped: List[int]) -> Iterator[DN]:
    """The dn-valued occurrences of ``attribute`` on an entry.

    A string value that is not a parseable dn cannot be an embedded
    reference; it is skipped and counted in ``skipped[0]`` (the paper's
    model types the attribute as dn-valued, but real data lies).  Any
    other error propagates -- only the expected coercion failure is
    caught."""
    for value in entry.values(attribute):
        if isinstance(value, DN):
            yield value
        elif isinstance(value, str):
            try:
                yield DN.parse(value)
            except DNSyntaxError:
                skipped[0] += 1
                continue


def _annotate_dv(pager, first, second, attribute, terms, memory_pages,
                 skipped) -> Run:
    # Phase 1: explode L2 into (embedded dn key, witness) pairs.
    pairs = RunWriter(pager)
    for witness in second:
        for target in _dn_values(witness, attribute, skipped):
            pairs.append((target.key(), witness))
    pair_run = pairs.close()
    # Sort LP by the embedded dn key (same order L1 is already in).
    sorted_pairs = external_sort(
        pager, pair_run, key=lambda pair: pair[0], memory_pages=memory_pages
    )
    pair_run.free()
    annotated = _fold_pairs_into(pager, first, sorted_pairs, terms)
    sorted_pairs.free()
    return annotated


def _annotate_vd(pager, first, second, attribute, terms, memory_pages,
                 skipped) -> Run:
    # Phase 1: explode L1 into (embedded dn key, owner) pairs and sort by
    # the embedded key so they line up with L2.
    pairs = RunWriter(pager)
    for owner in first:
        for target in _dn_values(owner, attribute, skipped):
            pairs.append((target.key(), owner))
    pair_run = pairs.close()
    sorted_pairs = external_sort(
        pager, pair_run, key=lambda pair: pair[0], memory_pages=memory_pages
    )
    pair_run.free()

    # Phase 2: co-scan with L2; a pair whose embedded dn names an L2 entry
    # yields a (owner dn key, owner, witness) match.
    matches = RunWriter(pager)
    reader = sorted_pairs.reader()
    witness_reader = second.reader()
    while True:
        pair = reader.peek()
        witness = witness_reader.peek()
        if pair is None or witness is None:
            break
        target_key = pair[0]
        witness_key = witness.dn.key()
        if target_key == witness_key:
            _key, owner = reader.next()
            matches.append((owner.dn.key(), owner, witness))
        elif target_key < witness_key:
            reader.next()
        else:
            witness_reader.next()
    sorted_pairs.free()
    match_run = matches.close()

    # Phase 3: regroup matches by owner and fold along a co-scan of L1.
    sorted_matches = external_sort(
        pager, match_run, key=lambda match: match[0], memory_pages=memory_pages
    )
    match_run.free()
    annotated = _fold_matches_into(pager, first, sorted_matches, terms)
    sorted_matches.free()
    return annotated


def _fold_pairs_into(pager, first: Run, sorted_pairs: Run, terms) -> Run:
    """dv phase 2: ``sorted_pairs`` holds (dn key, witness); co-scan with L1."""
    writer = RunWriter(pager)
    pair_reader = sorted_pairs.reader()
    for entry in first:
        entry_key = entry.dn.key()
        states = fresh_states(terms)
        while True:
            pair = pair_reader.peek()
            if pair is None or pair[0] > entry_key:
                break
            pair_reader.next()
            if pair[0] == entry_key:
                add_witness(states, terms, pair[1])
        writer.append((entry, resolve_terms(states)))
    return writer.close()


def _fold_matches_into(pager, first: Run, sorted_matches: Run, terms) -> Run:
    """vd phase 3: ``sorted_matches`` holds (owner key, owner, witness)."""
    writer = RunWriter(pager)
    match_reader = sorted_matches.reader()
    for entry in first:
        entry_key = entry.dn.key()
        states = fresh_states(terms)
        while True:
            match = match_reader.peek()
            if match is None or match[0] > entry_key:
                break
            match_reader.next()
            if match[0] == entry_key:
                add_witness(states, terms, match[2])
        writer.append((entry, resolve_terms(states)))
    return writer.close()
