"""External-memory query evaluation (Sections 4.2, 5.3, 6.3, 6.4, 7.2, 8.2)."""

from .atomic import evaluate_atomic, scope_admits
from .common import SpillList, labeled_merge, witness_terms_of
from .engine import QueryEngine, QueryResult
from .eragg import embedded_ref_select
from .hsagg import hierarchical_select
from .merge import boolean_merge
from .naive import naive_embedded_ref_select, naive_hierarchical_select
from .optimizer import AccessPlanner, PlannedEngine, explain, rewrite
from .paging import LimitedResult, PagedSearch, run_limited
from .stats import CardinalityEstimator, DirectoryStatistics
from .selection import select_annotated
from .simpleagg import simple_agg_select
from .stackjoin import hierarchical_annotate

__all__ = [
    "evaluate_atomic",
    "scope_admits",
    "SpillList",
    "labeled_merge",
    "witness_terms_of",
    "QueryEngine",
    "QueryResult",
    "embedded_ref_select",
    "hierarchical_select",
    "boolean_merge",
    "naive_embedded_ref_select",
    "naive_hierarchical_select",
    "AccessPlanner",
    "PlannedEngine",
    "explain",
    "rewrite",
    "LimitedResult",
    "PagedSearch",
    "run_limited",
    "CardinalityEstimator",
    "DirectoryStatistics",
    "select_annotated",
    "simple_agg_select",
    "hierarchical_annotate",
]
