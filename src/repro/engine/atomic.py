"""Atomic query evaluation against the directory store.

The paper *assumes* atomic queries are efficiently evaluable "with the help
of B-tree indices for integer and distinguishedName filters, and trie and
suffix tree indices for string filters" (Section 4.1), and charges the rest
of the query by the cumulative size ``|L|`` of the atomic results
(Theorem 8.3).  This module provides both concrete paths:

- **clustered scan**: the master run is ordered by reverse-dn key, so the
  subtree of the base dn is a contiguous page range located through the
  in-memory sparse index; the scan reads only that range;
- **secondary index**: comparison filters on indexed int attributes use the
  B+tree, equality/presence/wildcard filters on indexed string attributes
  use the string index; matching master positions (ascending = dn order)
  are fetched page-wise and scope-checked.

Either way the result is a sorted, duplicate-free run -- the contract every
operator above relies on.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..filters.ast import Comparison, Equality, Filter, MatchAll, Presence, Substring
from ..model.dn import DN
from ..model.entry import Entry
from ..query.ast import AtomicQuery, Scope
from ..storage.runs import Run, RunWriter
from ..storage.store import DirectoryStore

__all__ = ["evaluate_atomic", "scope_admits"]


def scope_admits(base: DN, scope: str, dn: DN) -> bool:
    """Definition 4.1's scope test (``one``/``sub`` include the base)."""
    if scope == Scope.BASE:
        return dn == base
    if scope == Scope.ONE:
        return dn == base or base.is_parent_of(dn)
    return dn == base or base.is_ancestor_of(dn)


def evaluate_atomic(
    store: DirectoryStore,
    query: AtomicQuery,
    use_indices: bool = True,
) -> Run:
    """Evaluate one atomic query; returns a sorted run of entries."""
    writer = RunWriter(store.pager)
    if use_indices:
        positions = _index_positions(store, query.filter)
        if positions is not None:
            for entry in store.fetch_positions(positions):
                if scope_admits(query.base, query.scope, entry.dn) and query.filter.matches(entry, store.schema):
                    writer.append(entry)
            return writer.close()
    for entry in _scoped_scan(store, query):
        if query.filter.matches(entry, store.schema):
            writer.append(entry)
    return writer.close()


def _scoped_scan(store: DirectoryStore, query: AtomicQuery) -> Iterator[Entry]:
    """Clustered scan of exactly the page range the scope can touch."""
    base, scope = query.base, query.scope
    if scope == Scope.BASE:
        base_key = base.key()
        for entry in store.scan_subtree(base):
            if entry.dn.key() == base_key:
                yield entry
            break  # the base entry is first in its subtree range
        return
    for entry in store.scan_subtree(base):
        if scope == Scope.SUB or scope_admits(base, scope, entry.dn):
            yield entry


def _index_positions(store: DirectoryStore, filter_: Filter) -> Optional[List[int]]:
    """Master positions matching the filter via a secondary index, or None
    when no suitable index exists."""
    if isinstance(filter_, Comparison) and filter_.attribute in store.int_indices:
        tree = store.int_indices[filter_.attribute]
        if filter_.op == "<":
            return list(tree.range_scan(None, filter_.value, True, False))
        if filter_.op == "<=":
            return list(tree.range_scan(None, filter_.value, True, True))
        if filter_.op == ">":
            return list(tree.range_scan(filter_.value, None, False, True))
        return list(tree.range_scan(filter_.value, None, True, True))
    if isinstance(filter_, Equality):
        attribute = filter_.attribute
        if attribute in store.int_indices:
            try:
                return list(store.int_indices[attribute].search(int(filter_.value)))
            except (TypeError, ValueError):
                return []
        if attribute in store.string_indices:
            return list(store.string_indices[attribute].lookup_eq(str(filter_.value)))
        return None
    if isinstance(filter_, Substring) and filter_.attribute in store.string_indices:
        return list(store.string_indices[filter_.attribute].lookup_pattern(filter_.pattern))
    if isinstance(filter_, Presence) and filter_.attribute in store.string_indices:
        return list(store.string_indices[filter_.attribute].lookup_presence())
    if isinstance(filter_, MatchAll):
        return None  # a full scan is the right plan anyway
    return None
