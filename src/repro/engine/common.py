"""Shared machinery of the external-memory operators.

Two pieces every algorithm in Figures 2--6 needs:

- :func:`labeled_merge` -- the "lexicographic merge of L1 and L2 (and L3)":
  a single sorted stream of entries, each tagged with the set of input
  lists it belongs to (``label(rl) = {i | rl in Li}``).

- :class:`SpillList` -- an ordered list of records that supports appends
  and O(1) concatenation, spilling full pages to the device.  The stack
  algorithms resolve an entry's witness counts only when it is *popped*
  (post-order), while their output must be in sorted (pre-order) dn order;
  each stack frame therefore carries a SpillList of already-resolved
  entries from its subtree, lists are concatenated parent-ward on pop, and
  the bottom-most pop flushes in sorted order.  Every record is written to
  at most one page and read back once, so the extra I/O is
  ``O(output / B)`` plus at most one partial page per pop -- linear, as
  Theorem 5.1 requires (see DESIGN.md for the discussion).

The per-frame witness-aggregate states (:class:`repro.query.aggregates.AggState`)
generalise the paper's ``above``/``below`` counters to any distributive or
algebraic aggregate, exactly as Section 6.4 prescribes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..model.entry import Entry
from ..query.aggregates import AggState, EntryAggregate
from ..storage.pager import Pager
from ..storage.runs import Run, RunReader, RunWriter

__all__ = [
    "labeled_merge",
    "SpillList",
    "Annotated",
    "resolve_terms",
    "witness_terms_of",
]

#: An annotated record: the entry plus the resolved values of each
#: witness-aggregate term, in term order.
Annotated = Tuple[Entry, Tuple[Optional[float], ...]]


def labeled_merge(runs: Sequence[Run]) -> Iterator[Tuple[Entry, frozenset]]:
    """Merge sorted entry runs into one stream of (entry, label) pairs.

    ``label`` holds the 1-based indices of the runs containing the entry
    (entries are identified by dn).  Input runs must be sorted by reverse-dn
    key and duplicate-free individually.
    """
    readers: List[RunReader] = [run.reader() for run in runs]
    while True:
        best_key = None
        for reader in readers:
            head = reader.peek()
            if head is not None:
                key = head.dn.key()
                if best_key is None or key < best_key:
                    best_key = key
        if best_key is None:
            return
        label = set()
        entry: Optional[Entry] = None
        for index, reader in enumerate(readers):
            head = reader.peek()
            if head is not None and head.dn.key() == best_key:
                entry = reader.next()
                label.add(index + 1)
        assert entry is not None
        yield entry, frozenset(label)


class SpillList:
    """An ordered record list with prepend, append, O(1) concatenation and
    bounded memory.

    Internally: an in-memory *head* buffer, a sequence of spilled page ids,
    and an in-memory *tail* buffer (each buffer below ``B`` records).  The
    head buffer exists for the stack algorithms' pop path -- a frame's own
    resolved entry is *prepended* to the deferred list of its subtree -- so
    the dominant chain-shaped unwinding never writes fragmented pages.  A
    concatenation merges the meeting buffers (this list's tail, the other's
    head) in memory and spills full pages; only when both sides already
    have spilled segments can one partial page remain between them, which
    keeps memory at one head plus one tail per live stack frame.
    ``flush_to`` streams the whole list, in order, into a
    :class:`RunWriter`.
    """

    __slots__ = ("pager", "_head", "_segments", "_tail", "length")

    def __init__(self, pager: Pager):
        self.pager = pager
        self._head: List[Any] = []  # records before the first segment
        self._segments: List[int] = []  # page ids, in order
        self._tail: List[Any] = []  # records after the last segment
        self.length = 0

    def append(self, record: Any) -> None:
        if not self._segments and not self._tail:
            # Everything still lives in the head buffer.
            self._head.append(record)
            self.length += 1
            if len(self._head) >= self.pager.page_size:
                self._segments.append(self.pager.append_page(self._head))
                self._head = []
            return
        self._tail.append(record)
        self.length += 1
        if len(self._tail) >= self.pager.page_size:
            self._segments.append(self.pager.append_page(self._tail))
            self._tail = []

    def prepend(self, record: Any) -> None:
        """Insert ``record`` before every current record."""
        self._head.insert(0, record)
        self.length += 1
        if len(self._head) >= self.pager.page_size:
            self._segments.insert(0, self.pager.append_page(self._head))
            self._head = []

    def concat(self, other: "SpillList") -> None:
        """Append ``other``'s records after this list's.  ``other`` must not
        be used afterwards."""
        if other.length == 0:
            return
        page_size = self.pager.page_size
        length = self.length + other.length
        if not self._segments:
            # This list is fully in memory (head only; a tail implies
            # segments): fold it in front of the other's head.  No partial
            # page is ever needed -- the remainder simply becomes the new
            # head -- which is what keeps chain-shaped unwinding dense.
            combined = self._head + self._tail + other._head
            if not other._segments:
                combined += other._tail
            front_pages: List[int] = []
            while len(combined) >= page_size:
                front_pages.append(self.pager.append_page(combined[:page_size]))
                combined = combined[page_size:]
            if front_pages and other._segments and combined:
                # remainder caught between two spilled regions
                front_pages.append(self.pager.append_page(combined))
                combined = []
            if front_pages:
                self._head = []
                self._segments = front_pages + other._segments
                self._tail = other._tail if other._segments else combined
            else:
                self._head = combined
                self._segments = list(other._segments)
                self._tail = other._tail if other._segments else []
            self.length = length
            other._drop()
            return
        # This list has spilled: the meeting records (our tail, their head,
        # and their tail too when they never spilled) follow our segments.
        middle = self._tail + other._head
        if not other._segments:
            middle += other._tail
        self._tail = []
        while len(middle) >= page_size:
            self._segments.append(self.pager.append_page(middle[:page_size]))
            middle = middle[page_size:]
        if middle:
            if other._segments:
                # Records between two spilled regions: one partial page
                # keeps memory bounded at a head+tail pair per live list.
                self._segments.append(self.pager.append_page(middle))
            else:
                self._tail = middle
        if other._segments:
            self._segments.extend(other._segments)
            self._tail = other._tail
        self.length = length
        other._drop()

    def flush_to(self, writer: RunWriter) -> None:
        """Stream every record into ``writer`` and release the pages."""
        for record in self._head:
            writer.append(record)
        for page_id in self._segments:
            for record in self.pager.read(page_id):
                writer.append(record)
            self.pager.free(page_id)
        for record in self._tail:
            writer.append(record)
        self._drop()

    def _drop(self) -> None:
        self._head = []
        self._segments = []
        self._tail = []
        self.length = 0

    def __len__(self) -> int:
        return self.length


def witness_terms_of(agg_filter) -> List[EntryAggregate]:
    """The distinct $2-sourced entry-aggregate terms an aggregate selection
    filter needs per entry (these are what the stack pass must maintain).

    The plain hierarchical operators use the single term ``count($2)``.
    """
    if agg_filter is None:
        return [EntryAggregate("count", "$2", None)]
    terms: List[EntryAggregate] = []
    for side in (agg_filter.left, agg_filter.right):
        candidates = []
        if isinstance(side, EntryAggregate):
            candidates.append(side)
        elif hasattr(side, "inner") and side.inner is not None:
            candidates.append(side.inner)
        for term in candidates:
            if term.needs_witnesses() and term not in terms:
                terms.append(term)
    return terms


def resolve_terms(states: Sequence[AggState]) -> Tuple[Optional[float], ...]:
    """Freeze a frame's aggregate states into the annotation tuple."""
    return tuple(state.result() for state in states)


def fresh_states(terms: Sequence[EntryAggregate]) -> List[AggState]:
    """One empty state per term."""
    return [term.fresh_state() for term in terms]


def add_witness(states: Sequence[AggState], terms: Sequence[EntryAggregate], witness: Entry) -> None:
    """Fold one witness entry into every term state."""
    for state, term in zip(states, terms):
        if term.attribute is None:
            state.add_count(1)
        else:
            for value in witness.values(term.attribute):
                state.add(value)


def copy_states(states: Sequence[AggState]) -> List[AggState]:
    return [state.copy() for state in states]


def merge_states(into: Sequence[AggState], source: Sequence[AggState]) -> None:
    for target, extra in zip(into, source):
        target.merge(extra)
