"""The selection phase shared by every aggregate-capable operator.

The stack pass (and the embedded-reference pass) produce a run of
``(entry, resolved-term-values)`` pairs in sorted order.  Selection then
takes at most two scans:

1. if the aggregate filter uses entry-set aggregates (``max(count($2))``,
   ``count($1)``, ...), one scan folds them -- the incremental computation
   of Ross et al. that Section 6.3 cites;
2. one scan tests the filter per entry and writes the survivors.

For the plain L1 operators the filter is ``count($2) > 0``
(Section 6.2's closing remark) and phase 1 is skipped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..query.aggregates import (
    AggSelFilter,
    AggState,
    EntryAggregate,
    EntrySetAggregate,
    WITNESS_COUNT_POSITIVE,
)
from ..storage.pager import Pager
from ..storage.runs import Run, RunWriter

__all__ = ["select_annotated"]


def select_annotated(
    pager: Pager,
    annotated: Run,
    terms: Sequence[EntryAggregate],
    agg_filter: Optional[AggSelFilter],
) -> Run:
    """Apply ``agg_filter`` (default: ``count($2) > 0``) to an annotated
    run; return the selected entries as a sorted run."""
    if agg_filter is None:
        agg_filter = WITNESS_COUNT_POSITIVE
    term_index = {term: position for position, term in enumerate(terms)}

    set_aggs = agg_filter.entry_set_aggregates()
    set_values: Dict[int, Optional[float]] = {}
    if set_aggs:
        set_values = _fold_entry_set_aggregates(annotated, set_aggs, term_index)

    writer = RunWriter(pager)
    for entry, results in annotated:
        resolved = {term: results[position] for term, position in term_index.items()}
        if agg_filter.test_resolved(entry, resolved, set_values):
            writer.append(entry)
    return writer.close()


def _fold_entry_set_aggregates(
    annotated: Run,
    set_aggs: List[EntrySetAggregate],
    term_index: Dict[EntryAggregate, int],
) -> Dict[int, Optional[float]]:
    """One scan computing every entry-set aggregate incrementally."""
    states: Dict[int, AggState] = {}
    counts: Dict[int, int] = {}
    for esa in set_aggs:
        if esa.inner is None:
            counts[id(esa)] = 0
        else:
            states[id(esa)] = AggState(esa.func)
    for entry, results in annotated:
        for esa in set_aggs:
            if esa.inner is None:
                counts[id(esa)] += 1
                continue
            inner = esa.inner
            if inner.needs_witnesses():
                value = results[term_index[inner]]
            else:
                value = inner.evaluate(entry, None)
            if value is not None:
                states[id(esa)].add(value)
    values: Dict[int, Optional[float]] = {}
    for esa in set_aggs:
        if esa.inner is None:
            values[id(esa)] = counts[id(esa)]
        else:
            values[id(esa)] = states[id(esa)].result()
    return values
