"""Simple aggregate selection ``(g Q AggSel)`` -- Section 6.3.

Evaluated in at most two scans of the input run, as Theorem 6.1 states:

1. when the filter contains entry-set aggregates (``count($$)``,
   ``min(min(a))``, ...), one scan computes them incrementally;
2. one scan tests the filter per entry (entry aggregates like ``min(a)``
   are computed from the entry in place) and writes the survivors.

When the filter has no entry-set aggregate the first scan is skipped and a
single scan suffices.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..query.aggregates import AggSelFilter, AggState
from ..storage.pager import Pager
from ..storage.runs import Run, RunWriter

__all__ = ["simple_agg_select"]


def simple_agg_select(pager: Pager, operand: Run, agg_filter: AggSelFilter) -> Run:
    """Apply a simple aggregate selection filter to a sorted run."""
    if agg_filter.needs_witnesses():
        raise ValueError(
            "simple aggregate selection cannot reference $2: %s" % agg_filter
        )

    set_aggs = agg_filter.entry_set_aggregates()
    set_values: Dict[int, Optional[float]] = {}
    if set_aggs:
        states = {}
        counts = {}
        for esa in set_aggs:
            if esa.inner is None:
                counts[id(esa)] = 0
            else:
                states[id(esa)] = AggState(esa.func)
        for entry in operand:  # scan 1
            for esa in set_aggs:
                if esa.inner is None:
                    counts[id(esa)] += 1
                else:
                    value = esa.inner.evaluate(entry, None)
                    if value is not None:
                        states[id(esa)].add(value)
        for esa in set_aggs:
            if esa.inner is None:
                set_values[id(esa)] = counts[id(esa)]
            else:
                set_values[id(esa)] = states[id(esa)].result()

    writer = RunWriter(pager)
    for entry in operand:  # scan 2
        if agg_filter.test(entry, None, set_values):
            writer.append(entry)
    return writer.close()
