"""Query optimisation: algebraic rewrites, access-path choice, EXPLAIN.

Three pieces, all grounded in the paper:

1. **Rewrites** (:func:`rewrite`):

   - *R1, the Section 8.1 identity in reverse*: the paper shows
     ``(p Q1 Q2) = (ac Q1 Q2 (null-dn ? sub ? objectClass=*))`` and warns
     that the rewriting "would lead to a very expensive evaluation as
     written".  The optimiser recognises an ``ac``/``dc`` node whose third
     operand is the whole instance and replaces it with the cheap ``p``/
     ``c`` -- turning the paper's design argument into an optimisation.
   - *R2, boolean idempotence*: ``(& Q Q) -> Q`` and ``(| Q Q) -> Q``.
   - *R3, scope tightening*: in ``(& A B)`` with sub-scoped atomic
     operands whose bases are nested, the outer base can be narrowed to
     the inner one (the intersection lives inside the smaller subtree),
     shrinking the leaf's scan range.

2. **Access-path choice** (:class:`AccessPlanner`): per atomic leaf,
   compare the estimated cost of the clustered subtree scan against each
   applicable secondary index (B+tree for comparisons, string index for
   equality/wildcard/presence) using the
   :class:`~repro.engine.stats.CardinalityEstimator`, and remember the
   decision.

3. **EXPLAIN** (:func:`explain`): a physical-plan rendering with
   estimated cardinalities and chosen access paths, and --- when run with
   ``analyze=True`` through a :class:`PlannedEngine` --- actual sizes next
   to the estimates.

:class:`PlannedEngine` is a drop-in :class:`~repro.engine.engine.QueryEngine`
that applies the rewrites once per query and follows the planner's
per-leaf decisions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..filters.ast import Comparison, Equality, MatchAll, Presence, Substring

from ..query.ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    Scope,
    SimpleAggSelect,
)
from ..storage.runs import Run
from ..storage.store import DirectoryStore
from .atomic import evaluate_atomic
from .engine import QueryEngine
from .stats import CardinalityEstimator, DirectoryStatistics

__all__ = ["rewrite", "AccessPlanner", "PlannedEngine", "explain", "ExplainNode"]


# ---------------------------------------------------------------------------
# Rewrites
# ---------------------------------------------------------------------------


def _is_whole_instance(query: Query) -> bool:
    return (
        isinstance(query, AtomicQuery)
        and query.base.is_null()
        and query.scope == Scope.SUB
        and isinstance(query.filter, MatchAll)
    )


def rewrite(query: Query) -> Tuple[Query, List[str]]:
    """Apply the rewrite rules bottom-up; returns (query', applied-rules).

    The query is first normalised (associativity/commutativity/duplicate
    elimination of the boolean operators), so R2 also catches commuted
    duplicates like ``(& (& A B) (& B A))``."""
    from ..query.normalize import normalize

    normalized = normalize(query)
    applied: List[str] = []
    if normalized != query:
        applied.append("R0: boolean operands normalised")
    query = normalized

    def walk(node: Query) -> Query:
        if isinstance(node, AtomicQuery):
            return node
        if isinstance(node, (And, Or, Diff)):
            left = walk(node.left)
            right = walk(node.right)
            if isinstance(node, (And, Or)) and left == right:
                applied.append("R2: idempotent %s collapsed" % type(node).__name__)
                return left
            if isinstance(node, And):
                tightened = _tighten_scopes(left, right, applied)
                if tightened is not None:
                    left, right = tightened
            return type(node)(left, right)
        if isinstance(node, HierarchySelect):
            first = walk(node.first)
            second = walk(node.second)
            third = walk(node.third) if node.third is not None else None
            if node.op in ("ac", "dc") and third is not None and _is_whole_instance(third):
                cheap_op = "p" if node.op == "ac" else "c"
                applied.append(
                    "R1: (%s Q1 Q2 whole-instance) -> (%s Q1 Q2)" % (node.op, cheap_op)
                )
                return HierarchySelect(cheap_op, first, second, None, node.agg)
            return HierarchySelect(node.op, first, second, third, node.agg)
        if isinstance(node, SimpleAggSelect):
            return SimpleAggSelect(walk(node.operand), node.agg)
        if isinstance(node, EmbeddedRef):
            return EmbeddedRef(
                node.op, walk(node.first), walk(node.second), node.attribute, node.agg
            )
        return node

    return walk(query), applied


def _tighten_scopes(left: Query, right: Query, applied: List[str]):
    """R3: narrow the wider sub-scoped base in an intersection of nested
    subtrees."""
    if not (
        isinstance(left, AtomicQuery)
        and isinstance(right, AtomicQuery)
        and left.scope == Scope.SUB
        and right.scope == Scope.SUB
    ):
        return None
    if left.base.is_prefix_of(right.base) and left.base != right.base:
        applied.append("R3: scope of left operand tightened to %s" % right.base)
        return AtomicQuery(right.base, Scope.SUB, left.filter), right
    if right.base.is_prefix_of(left.base) and left.base != right.base:
        applied.append("R3: scope of right operand tightened to %s" % left.base)
        return left, AtomicQuery(left.base, Scope.SUB, right.filter)
    return None


# ---------------------------------------------------------------------------
# Access-path choice
# ---------------------------------------------------------------------------


class AccessPlanner:
    """Chooses scan vs index per atomic leaf, cost-estimated in pages."""

    def __init__(self, store: DirectoryStore, estimator: Optional[CardinalityEstimator] = None):
        self.store = store
        self.estimator = estimator or CardinalityEstimator(store)

    def _index_available(self, filter_) -> Optional[str]:
        if isinstance(filter_, Comparison) and filter_.attribute in self.store.int_indices:
            return "btree(%s)" % filter_.attribute
        if isinstance(filter_, Equality):
            if filter_.attribute in self.store.int_indices:
                return "btree(%s)" % filter_.attribute
            if filter_.attribute in self.store.string_indices:
                return "strindex(%s)" % filter_.attribute
        if isinstance(filter_, (Substring, Presence)) and getattr(
            filter_, "attribute", None
        ) in self.store.string_indices:
            return "strindex(%s)" % filter_.attribute
        return None

    def plan_leaf(self, query: AtomicQuery) -> Tuple[bool, str, float]:
        """Returns (use_index, access-path label, estimated result size)."""
        page_size = self.store.pager.page_size
        estimated = self.estimator.atomic_cardinality(query)
        start, end = self.store.page_range_for_subtree(query.base)
        scan_pages = max(end - start, 1)
        index_label = self._index_available(query.filter)
        if index_label is None:
            return False, "scan[%d pages]" % scan_pages, estimated
        # Index cost: read matching postings (selectivity * index pages for
        # wildcards/presence; t/B for equality and ranges) + fetch ~t data
        # pages (unclustered).
        selectivity = self.estimator.filter_selectivity(query.filter)
        matches = selectivity * self.estimator.stats.total_entries
        if isinstance(query.filter, (Substring, Presence)):
            index_pages = max(self.estimator.stats.total_entries / page_size, 1)
        else:
            index_pages = max(matches / page_size, 1)
        index_cost = index_pages + matches  # one data-page fault per match
        if index_cost < scan_pages:
            return True, "%s[~%d matches]" % (index_label, int(matches)), estimated
        return False, "scan[%d pages]" % scan_pages, estimated


# ---------------------------------------------------------------------------
# The planned engine and EXPLAIN
# ---------------------------------------------------------------------------


class PlannedEngine(QueryEngine):
    """A QueryEngine with rewrites and per-leaf access-path planning."""

    def __init__(
        self,
        store: DirectoryStore,
        stats: Optional[DirectoryStatistics] = None,
        tracer=None,
    ):
        super().__init__(store, tracer=tracer)
        self.estimator = CardinalityEstimator(store, stats)
        self.planner = AccessPlanner(store, self.estimator)
        self.last_rewrites: List[str] = []

    def run(self, query):
        if isinstance(query, str):
            from ..query.parser import parse_query

            query = parse_query(query)
        query, self.last_rewrites = rewrite(query)
        return super().run(query)

    def atomic_run(self, query: AtomicQuery) -> Run:
        use_index, _label, _estimate = self.planner.plan_leaf(query)
        return evaluate_atomic(self.store, query, use_indices=use_index)


class ExplainNode:
    """One node of an EXPLAIN tree.

    With ``analyze`` the node carries actuals measured on a single traced
    evaluation of the whole query: the operator's result size
    (``actual``), its *own* page transfers (``actual_io`` physical /
    ``actual_logical_io`` logical -- children's costs subtracted out, so
    the tree's values sum to the pager's global delta for the run) and its
    inclusive wall time.
    """

    def __init__(self, label: str, estimate: float, children: List["ExplainNode"],
                 actual: Optional[int] = None,
                 actual_io: Optional[int] = None,
                 actual_logical_io: Optional[int] = None,
                 elapsed: Optional[float] = None,
                 eval_errors: int = 0):
        self.label = label
        self.estimate = estimate
        self.children = children
        self.actual = actual
        self.actual_io = actual_io
        self.actual_logical_io = actual_logical_io
        self.elapsed = elapsed
        #: Source records this operator skipped because a value failed to
        #: evaluate (see :attr:`repro.engine.engine.QueryResult.eval_errors`).
        self.eval_errors = eval_errors

    def total_io(self) -> int:
        """Sum of per-operator physical transfers over the subtree."""
        own = self.actual_io or 0
        return own + sum(child.total_io() for child in self.children)

    def total_logical_io(self) -> int:
        """Sum of per-operator logical page accesses over the subtree."""
        own = self.actual_logical_io or 0
        return own + sum(child.total_logical_io() for child in self.children)

    def render(self, indent: int = 0) -> str:
        actual = "" if self.actual is None else "  actual=%d" % self.actual
        if self.actual_io is not None:
            actual += " io=%d lio=%d" % (self.actual_io, self.actual_logical_io or 0)
        if self.eval_errors:
            actual += " eval_errors=%d" % self.eval_errors
        line = "%s%s  (est=%.1f%s)" % ("  " * indent, self.label, self.estimate, actual)
        return "\n".join([line] + [child.render(indent + 1) for child in self.children])

    def as_dict(self) -> dict:
        """JSON-ready form (used by ``explain --json``)."""
        node = {"label": self.label, "estimate": self.estimate}
        if self.actual is not None:
            node["actual"] = self.actual
        if self.actual_io is not None:
            node["actual_io"] = self.actual_io
            node["actual_logical_io"] = self.actual_logical_io
        if self.elapsed is not None:
            node["elapsed_s"] = self.elapsed
        if self.eval_errors:
            node["eval_errors"] = self.eval_errors
        node["children"] = [child.as_dict() for child in self.children]
        return node

    def __str__(self) -> str:
        return self.render()


def explain(
    store: DirectoryStore,
    query: Query,
    analyze: bool = False,
    planner: Optional[AccessPlanner] = None,
) -> ExplainNode:
    """Build the EXPLAIN tree for ``query`` (post-rewrite).  With
    ``analyze=True`` the rewritten query is evaluated **once** through a
    span-traced :class:`PlannedEngine`; each node then carries the actual
    result size and its own (exclusive) page I/O, harvested from the span
    tree -- which mirrors the query tree exactly -- so the per-operator
    actuals sum to the pager's global delta for the run."""
    from ..obs.trace import Tracer

    query, applied = rewrite(query)
    planner = planner or AccessPlanner(store)
    root_span = None
    if analyze:
        # Reuse the planner's statistics so the traced window holds the
        # evaluation's I/O and nothing else -- the per-operator actuals
        # then sum exactly to the pager delta of the run.
        tracer = Tracer()
        engine = PlannedEngine(store, stats=planner.estimator.stats, tracer=tracer)
        result_run = engine.evaluate_to_run(query)
        result_run.free()
        root_span = tracer.last_root()

    def estimate(node: Query) -> float:
        if isinstance(node, AtomicQuery):
            return planner.estimator.atomic_cardinality(node)
        child_estimates = [estimate(child) for child in node.children()]
        if isinstance(node, And):
            return min(child_estimates)
        if isinstance(node, Or):
            return min(sum(child_estimates), planner.estimator.stats.total_entries)
        if isinstance(node, Diff):
            return child_estimates[0]
        if isinstance(node, (HierarchySelect, EmbeddedRef)):
            return child_estimates[0] * 0.5
        if isinstance(node, SimpleAggSelect):
            return child_estimates[0] * 0.5
        return child_estimates[0] if child_estimates else 0.0

    def build(node: Query, span) -> ExplainNode:
        child_spans = span.children if span is not None else []
        children = [
            build(child, child_spans[i] if i < len(child_spans) else None)
            for i, child in enumerate(node.children())
        ]
        if isinstance(node, AtomicQuery):
            _use_index, label, node_estimate = planner.plan_leaf(node)
            text = "atomic %s via %s" % (node, label)
        else:
            node_estimate = estimate(node)
            if isinstance(node, (And, Or, Diff)):
                text = "boolean %s" % type(node).__name__.lower()
            elif isinstance(node, HierarchySelect):
                text = "hierarchy %s%s" % (node.op, " +agg" if node.agg else "")
            elif isinstance(node, SimpleAggSelect):
                text = "aggregate g [%s]" % node.agg
            else:
                text = "embedded %s(%s)%s" % (
                    node.op, node.attribute, " +agg" if node.agg else "")
        actual = actual_io = actual_logical = elapsed = None
        eval_errors = 0
        if span is not None:
            actual = span.attrs.get("rows")
            actual_io = span.exclusive("io", "total")
            actual_logical = span.exclusive("io", "logical_total")
            elapsed = span.elapsed
            eval_errors = span.attrs.get("eval_errors", 0)
        return ExplainNode(
            text,
            node_estimate,
            children,
            actual,
            actual_io=actual_io,
            actual_logical_io=actual_logical,
            elapsed=elapsed,
            eval_errors=eval_errors,
        )

    root = build(query, root_span)
    if applied:
        root.label += "  [rewrites: %s]" % "; ".join(applied)
    return root
