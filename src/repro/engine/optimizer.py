"""Query optimisation: algebraic rewrites, access-path choice, EXPLAIN.

Four pieces, all grounded in the paper:

1. **Rewrites** (:func:`rewrite`):

   - *R1, the Section 8.1 identity in reverse*: the paper shows
     ``(p Q1 Q2) = (ac Q1 Q2 (null-dn ? sub ? objectClass=*))`` and warns
     that the rewriting "would lead to a very expensive evaluation as
     written".  The optimiser recognises an ``ac``/``dc`` node whose third
     operand is the whole instance and replaces it with the cheap ``p``/
     ``c`` -- turning the paper's design argument into an optimisation.
     The whole-instance test accepts both spellings the parser produces
     for the paper-literal string: ``MatchAll`` and the schema-guaranteed
     always-true ``Presence("objectClass")`` (Definition 3.2 (c2) puts
     ``objectClass`` on every entry).
   - *R2, boolean idempotence*: ``(& Q Q) -> Q`` and ``(| Q Q) -> Q``.
   - *R3, scope tightening*: in ``(& A B)`` with sub-scoped atomic
     operands whose bases are nested, the outer base can be narrowed to
     the inner one (the intersection lives inside the smaller subtree),
     shrinking the leaf's scan range.
   - *R4, boolean absorption*: when one operand of ``&``/``|`` is an
     always-true sub-scoped atomic whose subtree provably contains the
     other operand's read footprint, the intersection is the other
     operand and the union is the covering operand -- one whole
     evaluation disappears.
   - *R5, difference tightening*: in ``(- A B)`` only the part of ``B``
     inside ``A``'s footprint can cancel anything, so a wider sub-scoped
     ``B`` narrows to ``A``'s range.
   - *R6, hierarchical scope push-down*: the descendant-directed
     operators (``c``/``d``/``dc``) find witnesses and separators only
     *inside* the subtree of a selected entry, so wider sub-scoped
     second/third operands narrow to the first operand's base.  (Not
     sound for ``p``/``a``/``ac``: ancestors escape the subtree.)

2. **Cost-based operand ordering** (*R7*, :func:`reorder_operands`):
   ``&`` and ``|`` are commutative, so the planner puts the operand with
   the smaller estimated cardinality first -- cheapest-first for ``&``
   (an empty first operand short-circuits the whole node, see
   :class:`PlannedEngine`), and short-circuit-aware for ``|`` (the
   cheaper operand runs while R4 absorption handles the provably
   covering case).  ``-`` is never reordered.

3. **Access-path choice** (:class:`AccessPlanner`): per atomic leaf,
   compare the estimated cost of the clustered subtree scan against each
   applicable secondary index (B+tree for comparisons, string index for
   equality/wildcard/presence) using the
   :class:`~repro.engine.stats.CardinalityEstimator`, and remember the
   decision.

4. **EXPLAIN and the Q-error loop** (:func:`explain`): a physical-plan
   rendering with estimated cardinalities and chosen access paths; with
   ``analyze=True`` each operator also carries its actual size, its exact
   (exclusive) page I/O, and its **Q-error** ``max(est/actual,
   actual/est)`` -- observed into the ``repro_planner_qerror`` histogram
   -- and nodes whose Q-error crosses :data:`QERROR_ALERT` get a
   replan/rewrite hint from the symptom routing table
   (:data:`QERROR_ROUTES`).

:class:`PlannedEngine` is a drop-in :class:`~repro.engine.engine.QueryEngine`
that applies the rewrites and the cost-based ordering once per query
(:meth:`PlannedEngine.plan`), follows the planner's per-leaf decisions,
short-circuits ``&``/``-`` on an empty first operand, and reports the
run-level Q-error of every query it executes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..filters.ast import Comparison, Equality, MatchAll, Presence, Substring
from ..model.schema import OBJECT_CLASS

from ..query.ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    Scope,
    SimpleAggSelect,
)
from ..storage.runs import Run
from ..storage.store import DirectoryStore
from .atomic import evaluate_atomic
from .engine import QueryEngine
from .merge import boolean_merge
from .stats import CardinalityEstimator, DirectoryStatistics

__all__ = [
    "rewrite",
    "reorder_operands",
    "estimate_cardinality",
    "qerror",
    "qerror_histogram",
    "route_hints",
    "QERROR_ALERT",
    "QERROR_ROUTES",
    "AccessPlanner",
    "PlannedEngine",
    "explain",
    "ExplainNode",
]


# ---------------------------------------------------------------------------
# Rewrites
# ---------------------------------------------------------------------------


def _always_true_filter(filter_) -> bool:
    """Filters the schema guarantees every entry satisfies: ``MatchAll``
    and the exact-case presence of ``objectClass`` (Definition 3.2 (c2)
    puts it on every entry; presence tests are case-sensitive, so the
    lowercase spelling names a different -- generally absent --
    attribute and must not be treated as always-true)."""
    if isinstance(filter_, MatchAll):
        return True
    return isinstance(filter_, Presence) and filter_.attribute == OBJECT_CLASS


def _is_whole_instance(query: Query) -> bool:
    return (
        isinstance(query, AtomicQuery)
        and query.base.is_null()
        and query.scope == Scope.SUB
        and _always_true_filter(query.filter)
    )


def _footprint_within(base, query: Query) -> bool:
    """Is ``query``'s read footprint provably inside ``subtree(base)``?
    Every operator's result is contained in its footprint (see
    :mod:`repro.cache.footprint`), so this also bounds the result set."""
    from ..cache.footprint import query_footprint

    return all(
        base.is_prefix_of(root) for root, _subtree in query_footprint(query).ranges
    )


def _absorb(node: Query, left: Query, right: Query, applied: List[str]):
    """R4: ``(& cover Q) -> Q`` and ``(| cover Q) -> cover`` when
    ``cover`` is an always-true sub-scoped atomic whose subtree contains
    ``Q``'s footprint (so ``cover``'s result provably contains ``Q``'s)."""
    for kept, cover in ((right, left), (left, right)):
        if not (
            isinstance(cover, AtomicQuery)
            and cover.scope == Scope.SUB
            and _always_true_filter(cover.filter)
        ):
            continue
        if not _footprint_within(cover.base, kept):
            continue
        if isinstance(node, And):
            applied.append("R4: & operand absorbed (always-true cover)")
            return kept
        applied.append("R4: | collapsed to its always-true cover")
        return cover
    return None


def rewrite(query: Query) -> Tuple[Query, List[str]]:
    """Apply the rewrite rules bottom-up; returns (query', applied-rules).

    The query is first normalised (associativity/commutativity/duplicate
    elimination of the boolean operators), so R2 also catches commuted
    duplicates like ``(& (& A B) (& B A))``."""
    from ..query.normalize import normalize

    normalized = normalize(query)
    applied: List[str] = []
    if normalized != query:
        applied.append("R0: boolean operands normalised")
    query = normalized

    def walk(node: Query) -> Query:
        if isinstance(node, AtomicQuery):
            return node
        if isinstance(node, (And, Or, Diff)):
            left = walk(node.left)
            right = walk(node.right)
            if isinstance(node, (And, Or)) and left == right:
                applied.append("R2: idempotent %s collapsed" % type(node).__name__)
                return left
            if isinstance(node, (And, Or)):
                absorbed = _absorb(node, left, right, applied)
                if absorbed is not None:
                    return absorbed
            if isinstance(node, And):
                tightened = _tighten_scopes(left, right, applied)
                if tightened is not None:
                    left, right = tightened
            if isinstance(node, Diff):
                right = _tighten_diff(left, right, applied)
            return type(node)(left, right)
        if isinstance(node, HierarchySelect):
            op = node.op
            first = walk(node.first)
            second = walk(node.second)
            third = walk(node.third) if node.third is not None else None
            if op in ("ac", "dc") and third is not None and _is_whole_instance(third):
                cheap_op = "p" if op == "ac" else "c"
                applied.append(
                    "R1: (%s Q1 Q2 whole-instance) -> (%s Q1 Q2)" % (op, cheap_op)
                )
                op, third = cheap_op, None
            if op in ("c", "d", "dc") and isinstance(first, AtomicQuery):
                # Witnesses (and dc separators) of a selected entry are its
                # descendants, so they live inside the first operand's
                # subtree; wider sub-scoped operands narrow to its base.
                second = _push_scope(second, first.base, op, "second", applied)
                if third is not None:
                    third = _push_scope(third, first.base, op, "third", applied)
            return HierarchySelect(op, first, second, third, node.agg)
        if isinstance(node, SimpleAggSelect):
            return SimpleAggSelect(walk(node.operand), node.agg)
        if isinstance(node, EmbeddedRef):
            return EmbeddedRef(
                node.op, walk(node.first), walk(node.second), node.attribute, node.agg
            )
        return node

    return walk(query), applied


def _tighten_scopes(left: Query, right: Query, applied: List[str]):
    """R3: narrow the wider sub-scoped base in an intersection of nested
    subtrees."""
    if not (
        isinstance(left, AtomicQuery)
        and isinstance(right, AtomicQuery)
        and left.scope == Scope.SUB
        and right.scope == Scope.SUB
    ):
        return None
    if left.base.is_prefix_of(right.base) and left.base != right.base:
        applied.append("R3: scope of left operand tightened to %s" % right.base)
        return AtomicQuery(right.base, Scope.SUB, left.filter), right
    if right.base.is_prefix_of(left.base) and left.base != right.base:
        applied.append("R3: scope of right operand tightened to %s" % left.base)
        return left, AtomicQuery(left.base, Scope.SUB, right.filter)
    return None


def _tighten_diff(left: Query, right: Query, applied: List[str]) -> Query:
    """R5: in ``(- A B)``, entries of ``B`` outside ``A``'s read region
    can never cancel anything, so a wider sub-scoped atomic ``B`` narrows
    to ``A``'s range.  ``A``'s side is never touched (``-`` is not
    commutative and the result must stay within ``A``)."""
    if not (isinstance(right, AtomicQuery) and right.scope == Scope.SUB):
        return right
    from ..cache.footprint import query_footprint

    roots = list(query_footprint(left).ranges)
    if len(roots) != 1:
        return right
    base = roots[0][0]
    if right.base.is_prefix_of(base) and right.base != base:
        applied.append("R5: right operand of - tightened to %s" % base)
        return AtomicQuery(base, Scope.SUB, right.filter)
    return right


def _push_scope(
    operand: Query, base, op: str, which: str, applied: List[str]
) -> Query:
    """R6 helper: narrow one wider sub-scoped atomic operand to ``base``."""
    if not (isinstance(operand, AtomicQuery) and operand.scope == Scope.SUB):
        return operand
    if operand.base.is_prefix_of(base) and operand.base != base:
        applied.append(
            "R6: %s operand of %s pushed into scope %s" % (which, op, base)
        )
        return AtomicQuery(base, Scope.SUB, operand.filter)
    return operand


# ---------------------------------------------------------------------------
# Cardinality estimation over whole trees, Q-error and its routing table
# ---------------------------------------------------------------------------


def estimate_cardinality(node: Query, estimator: CardinalityEstimator) -> float:
    """Estimated result size of a whole query tree (the cost spine the
    reorderer, EXPLAIN and the run-level Q-error all share)."""
    if isinstance(node, AtomicQuery):
        return estimator.atomic_cardinality(node)
    child_estimates = [
        estimate_cardinality(child, estimator) for child in node.children()
    ]
    if isinstance(node, And):
        return min(child_estimates)
    if isinstance(node, Or):
        return min(sum(child_estimates), estimator.stats.total_entries)
    if isinstance(node, Diff):
        return child_estimates[0]
    if isinstance(node, (HierarchySelect, EmbeddedRef)):
        return child_estimates[0] * 0.5
    if isinstance(node, SimpleAggSelect):
        return child_estimates[0] * 0.5
    return child_estimates[0] if child_estimates else 0.0


def qerror(estimate: float, actual: float) -> float:
    """The Q-error ``max(est/actual, actual/est)``, floored at one entry
    on both sides so empty results stay finite.  1.0 is a perfect
    estimate; the factor is symmetric in over- and under-estimation."""
    est = max(float(estimate), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


#: Histogram buckets for Q-error (1 = perfect; each bucket doubles).
QERROR_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Q-error at or above which EXPLAIN flags a node and routes a hint.
QERROR_ALERT = 4.0


def qerror_histogram(registry):
    """The shared ``repro_planner_qerror`` histogram (idempotent)."""
    return registry.histogram(
        "repro_planner_qerror",
        "Planner Q-error max(est/actual, actual/est), per planned run and "
        "per analyzed operator",
        buckets=QERROR_BUCKETS,
    )


#: The symptom -> rewrite/replan routing table: a persistently
#: mis-estimated node shape maps to the action that usually repairs it
#: (the DuckDB/PostgreSQL playbook: find the cost spine, measure
#: per-operator Q-error, route the symptom to a fix).
QERROR_ROUTES = {
    "leaf-substring": (
        "substring selectivity is a default guess; build a string index on "
        "the attribute or rebuild statistics"
    ),
    "leaf-equality": (
        "value frequency missed by the tracked common values; rebuild "
        "statistics (stale after updates?) or add an index on the attribute"
    ),
    "leaf-range": (
        "int histogram no longer matches the data; rebuild statistics"
    ),
    "leaf-presence": (
        "attribute carry-rate drifted; rebuild statistics"
    ),
    "leaf": (
        "leaf estimate off; rebuild statistics"
    ),
    "boolean-and": (
        "operands look correlated (independence assumption misfires); "
        "tighten scopes (R3/R6) or check the operand order with `repro plan`"
    ),
    "boolean-or": (
        "union overlap differs from the disjointness assumption; consider "
        "the absorbing form (R4) if one operand covers the other"
    ),
    "boolean-diff": (
        "difference cancels more/less than assumed; tighten the right "
        "operand's scope (R5)"
    ),
    "hierarchy": (
        "witness fanout differs from the 0.5 default; prefer the cheap "
        "p/c form (R1) and push scopes into the operands (R6)"
    ),
    "aggregate": (
        "aggregate selectivity defaulted; no statistics exist for "
        "aggregate filters yet"
    ),
    "embedded": (
        "embedded-reference fanout is unknowable from local statistics; "
        "consider materialising the reference closure"
    ),
}


def _symptom(node: Query) -> str:
    """The routing-table key for one query-tree node."""
    if isinstance(node, AtomicQuery):
        if isinstance(node.filter, Substring):
            return "leaf-substring"
        if isinstance(node.filter, Equality):
            return "leaf-equality"
        if isinstance(node.filter, Comparison):
            return "leaf-range"
        if isinstance(node.filter, Presence):
            return "leaf-presence"
        return "leaf"
    if isinstance(node, And):
        return "boolean-and"
    if isinstance(node, Or):
        return "boolean-or"
    if isinstance(node, Diff):
        return "boolean-diff"
    if isinstance(node, HierarchySelect):
        return "hierarchy"
    if isinstance(node, EmbeddedRef):
        return "embedded"
    return "aggregate"


def route_hints(node: Query, estimate: float, actual: Optional[int]) -> List[str]:
    """Replan/rewrite hints for one analyzed node: empty while the
    estimate holds, the routed symptom fix once Q-error crosses
    :data:`QERROR_ALERT`."""
    if actual is None:
        return []
    factor = qerror(estimate, actual)
    if factor < QERROR_ALERT:
        return []
    hint = QERROR_ROUTES.get(_symptom(node))
    return [hint] if hint else []


# ---------------------------------------------------------------------------
# Cost-based operand ordering (R7)
# ---------------------------------------------------------------------------


def reorder_operands(
    query: Query, estimator: CardinalityEstimator, applied: Optional[List[str]] = None
) -> Query:
    """R7: order the operands of every ``&``/``|`` cheapest (most
    selective) first, by estimated cardinality.  Both operators are
    commutative so results are bit-identical; the payoff is the planned
    engine's empty-first-operand short-circuit for ``&`` and smaller
    intermediate runs held live.  ``-`` is left alone (not commutative)."""
    notes = applied if applied is not None else []

    def walk(node: Query) -> Query:
        if isinstance(node, AtomicQuery):
            return node
        if isinstance(node, (And, Or)):
            left = walk(node.left)
            right = walk(node.right)
            left_est = estimate_cardinality(left, estimator)
            right_est = estimate_cardinality(right, estimator)
            if right_est < left_est:
                notes.append(
                    "R7: %s operands reordered (est %.1f before %.1f)"
                    % (
                        "&" if isinstance(node, And) else "|",
                        right_est,
                        left_est,
                    )
                )
                left, right = right, left
            return type(node)(left, right)
        if isinstance(node, Diff):
            return Diff(walk(node.left), walk(node.right))
        if isinstance(node, HierarchySelect):
            third = walk(node.third) if node.third is not None else None
            return HierarchySelect(
                node.op, walk(node.first), walk(node.second), third, node.agg
            )
        if isinstance(node, SimpleAggSelect):
            return SimpleAggSelect(walk(node.operand), node.agg)
        if isinstance(node, EmbeddedRef):
            return EmbeddedRef(
                node.op, walk(node.first), walk(node.second), node.attribute, node.agg
            )
        return node

    return walk(query)


# ---------------------------------------------------------------------------
# Access-path choice
# ---------------------------------------------------------------------------


class AccessPlanner:
    """Chooses scan vs index per atomic leaf, cost-estimated in pages."""

    def __init__(self, store: DirectoryStore, estimator: Optional[CardinalityEstimator] = None):
        self.store = store
        self.estimator = estimator or CardinalityEstimator(store)

    def _index_available(self, filter_) -> Optional[str]:
        if isinstance(filter_, Comparison) and filter_.attribute in self.store.int_indices:
            return "btree(%s)" % filter_.attribute
        if isinstance(filter_, Equality):
            if filter_.attribute in self.store.int_indices:
                return "btree(%s)" % filter_.attribute
            if filter_.attribute in self.store.string_indices:
                return "strindex(%s)" % filter_.attribute
        if isinstance(filter_, (Substring, Presence)) and getattr(
            filter_, "attribute", None
        ) in self.store.string_indices:
            return "strindex(%s)" % filter_.attribute
        return None

    def plan_leaf(self, query: AtomicQuery) -> Tuple[bool, str, float]:
        """Returns (use_index, access-path label, estimated result size)."""
        page_size = self.store.pager.page_size
        estimated = self.estimator.atomic_cardinality(query)
        start, end = self.store.page_range_for_subtree(query.base)
        scan_pages = max(end - start, 1)
        index_label = self._index_available(query.filter)
        if index_label is None:
            return False, "scan[%d pages]" % scan_pages, estimated
        # Index cost: read matching postings (selectivity * index pages for
        # wildcards/presence; t/B for equality and ranges) + fetch ~t data
        # pages (unclustered).
        selectivity = self.estimator.filter_selectivity(query.filter)
        matches = selectivity * self.estimator.stats.total_entries
        if isinstance(query.filter, (Substring, Presence)):
            index_pages = max(self.estimator.stats.total_entries / page_size, 1)
        else:
            index_pages = max(matches / page_size, 1)
        index_cost = index_pages + matches  # one data-page fault per match
        if index_cost < scan_pages:
            return True, "%s[~%d matches]" % (index_label, int(matches)), estimated
        return False, "scan[%d pages]" % scan_pages, estimated


# ---------------------------------------------------------------------------
# The planned engine and EXPLAIN
# ---------------------------------------------------------------------------


class PlannedEngine(QueryEngine):
    """A QueryEngine with rewrites, cost-based operand ordering, per-leaf
    access-path planning, boolean short-circuiting and run-level Q-error.

    ``stats`` may be a static :class:`~repro.engine.stats.
    DirectoryStatistics` snapshot or a :class:`~repro.engine.stats.
    LiveDirectoryStatistics` (estimates then track the directory).
    ``metrics`` (a registry) enables the ``repro_planner_qerror``
    histogram; extra keyword arguments (``pool``, ``log``, ``budget``,
    ...) pass through to :class:`~repro.engine.engine.QueryEngine`.
    """

    def __init__(
        self,
        store: DirectoryStore,
        stats=None,
        tracer=None,
        reorder: bool = True,
        short_circuit: bool = True,
        metrics=None,
        **engine_options,
    ):
        super().__init__(store, tracer=tracer, **engine_options)
        self.estimator = CardinalityEstimator(store, stats)
        # Touch the statistics now: a lazy first collection would land its
        # scan inside the first query's measured I/O window.
        self.estimator.stats
        self.planner = AccessPlanner(store, self.estimator)
        self.reorder = reorder
        self.short_circuit = short_circuit
        self.last_rewrites: List[str] = []
        #: Q-error of the most recent :meth:`run` (root estimate vs
        #: actual result size); None before the first run.
        self.last_qerror: Optional[float] = None
        #: Boolean nodes whose second operand was skipped because the
        #: first came back empty.
        self.short_circuits = 0
        self._m_qerror = qerror_histogram(metrics) if metrics is not None else None

    # -- planning -----------------------------------------------------------

    def plan(self, query) -> Tuple[Query, List[str]]:
        """Rewrite + cost-order ``query`` once; returns (planned query,
        applied rules).  Idempotent: planning a planned query is a no-op."""
        if isinstance(query, str):
            from ..query.parser import parse_query

            query = parse_query(query)
        query, applied = rewrite(query)
        if self.reorder:
            query = reorder_operands(query, self.estimator, applied)
        return query, applied

    def run(self, query, budget=None):
        query, self.last_rewrites = self.plan(query)
        return self.run_planned(query, budget=budget)

    def run_planned(self, query: Query, budget=None):
        """Execute an already-planned query (no further rewriting) and
        close the feedback loop: compare the root estimate against the
        actual result size and record the run-level Q-error."""
        estimate = estimate_cardinality(query, self.estimator)
        result = super().run(query, budget=budget)
        self.last_qerror = qerror(estimate, len(result.entries))
        if self._m_qerror is not None:
            self._m_qerror.observe(self.last_qerror)
        return result

    # -- execution ----------------------------------------------------------

    def atomic_run(self, query: AtomicQuery) -> Run:
        use_index, _label, _estimate = self.planner.plan_leaf(query)
        return evaluate_atomic(self.store, query, use_indices=use_index)

    def _evaluate_node(self, query: Query) -> Run:
        # Short-circuit & and -: an empty first operand decides the node,
        # so the second operand is never evaluated.  Only on the
        # sequential path -- a concurrent pool evaluates both operands in
        # parallel, where skipping would serialise them (results are
        # bit-identical either way).
        if (
            self.short_circuit
            and isinstance(query, (And, Diff))
            and (self.pool is None or not self.pool.parallel)
        ):
            left = self.evaluate_to_run(query.left)
            if len(left) == 0:
                self.short_circuits += 1
                return left
            try:
                right = self.evaluate_to_run(query.right)
            except BaseException:
                left.free()
                raise
            try:
                op = "and" if isinstance(query, And) else "diff"
                return boolean_merge(self.pager, op, left, right)
            finally:
                left.free()
                right.free()
        return super()._evaluate_node(query)


class ExplainNode:
    """One node of an EXPLAIN tree.

    With ``analyze`` the node carries actuals measured on a single traced
    evaluation of the whole query: the operator's result size
    (``actual``), its *own* page transfers (``actual_io`` physical /
    ``actual_logical_io`` logical -- children's costs subtracted out, so
    the tree's values sum to the pager's global delta for the run), its
    inclusive wall time, its Q-error ``max(est/actual, actual/est)`` and
    -- when the Q-error crosses :data:`QERROR_ALERT` -- the routed
    replan hints.
    """

    def __init__(self, label: str, estimate: float, children: List["ExplainNode"],
                 actual: Optional[int] = None,
                 actual_io: Optional[int] = None,
                 actual_logical_io: Optional[int] = None,
                 elapsed: Optional[float] = None,
                 eval_errors: int = 0,
                 qerror: Optional[float] = None,
                 hints: Tuple[str, ...] = ()):
        self.label = label
        self.estimate = estimate
        self.children = children
        self.actual = actual
        self.actual_io = actual_io
        self.actual_logical_io = actual_logical_io
        self.elapsed = elapsed
        #: Source records this operator skipped because a value failed to
        #: evaluate (see :attr:`repro.engine.engine.QueryResult.eval_errors`).
        self.eval_errors = eval_errors
        self.qerror = qerror
        self.hints = tuple(hints)

    def total_io(self) -> int:
        """Sum of per-operator physical transfers over the subtree."""
        own = self.actual_io or 0
        return own + sum(child.total_io() for child in self.children)

    def total_logical_io(self) -> int:
        """Sum of per-operator logical page accesses over the subtree."""
        own = self.actual_logical_io or 0
        return own + sum(child.total_logical_io() for child in self.children)

    def max_qerror(self) -> Optional[float]:
        """The worst Q-error in the subtree (None without analyze)."""
        candidates = [self.qerror] if self.qerror is not None else []
        candidates += [
            child_max
            for child in self.children
            for child_max in [child.max_qerror()]
            if child_max is not None
        ]
        return max(candidates) if candidates else None

    def render(self, indent: int = 0) -> str:
        actual = "" if self.actual is None else "  actual=%d" % self.actual
        if self.actual_io is not None:
            actual += " io=%d lio=%d" % (self.actual_io, self.actual_logical_io or 0)
        if self.qerror is not None:
            actual += " qerr=%.1f" % self.qerror
        if self.eval_errors:
            actual += " eval_errors=%d" % self.eval_errors
        line = "%s%s  (est=%.1f%s)" % ("  " * indent, self.label, self.estimate, actual)
        lines = [line]
        lines += [
            "%s^ hint: %s" % ("  " * (indent + 1), hint) for hint in self.hints
        ]
        lines += [child.render(indent + 1) for child in self.children]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready form (used by ``explain --json``)."""
        node = {"label": self.label, "estimate": self.estimate}
        if self.actual is not None:
            node["actual"] = self.actual
        if self.actual_io is not None:
            node["actual_io"] = self.actual_io
            node["actual_logical_io"] = self.actual_logical_io
        if self.elapsed is not None:
            node["elapsed_s"] = self.elapsed
        if self.eval_errors:
            node["eval_errors"] = self.eval_errors
        if self.qerror is not None:
            node["qerror"] = self.qerror
        if self.hints:
            node["hints"] = list(self.hints)
        node["children"] = [child.as_dict() for child in self.children]
        return node

    def __str__(self) -> str:
        return self.render()


def explain(
    store: DirectoryStore,
    query: Query,
    analyze: bool = False,
    planner: Optional[AccessPlanner] = None,
    reorder: bool = True,
    metrics=None,
) -> ExplainNode:
    """Build the EXPLAIN tree for ``query`` (post-rewrite, post-reorder:
    the tree shows the plan the :class:`PlannedEngine` would execute).
    With ``analyze=True`` the planned query is evaluated **once** through
    a span-traced :class:`PlannedEngine`; each node then carries the
    actual result size, its own (exclusive) page I/O and its Q-error,
    harvested from the span tree -- which mirrors the query tree exactly
    -- so the per-operator actuals sum to the pager's global delta for
    the run, and every per-operator Q-error is observed into the
    ``repro_planner_qerror`` histogram (``metrics`` overrides the
    process-wide registry)."""
    from ..obs.trace import Tracer

    planner = planner or AccessPlanner(store)
    query, applied = rewrite(query)
    if reorder:
        query = reorder_operands(query, planner.estimator, applied)
    root_span = None
    if analyze:
        # Reuse the planner's statistics so the traced window holds the
        # evaluation's I/O and nothing else -- the per-operator actuals
        # then sum exactly to the pager delta of the run.
        tracer = Tracer()
        engine = PlannedEngine(store, stats=planner.estimator.stats, tracer=tracer)
        result_run = engine.evaluate_to_run(query)
        result_run.free()
        root_span = tracer.last_root()

    def build(node: Query, span) -> ExplainNode:
        child_spans = span.children if span is not None else []
        children = [
            build(child, child_spans[i] if i < len(child_spans) else None)
            for i, child in enumerate(node.children())
        ]
        if isinstance(node, AtomicQuery):
            _use_index, label, node_estimate = planner.plan_leaf(node)
            text = "atomic %s via %s" % (node, label)
        else:
            node_estimate = estimate_cardinality(node, planner.estimator)
            if isinstance(node, (And, Or, Diff)):
                text = "boolean %s" % type(node).__name__.lower()
            elif isinstance(node, HierarchySelect):
                text = "hierarchy %s%s" % (node.op, " +agg" if node.agg else "")
            elif isinstance(node, SimpleAggSelect):
                text = "aggregate g [%s]" % node.agg
            else:
                text = "embedded %s(%s)%s" % (
                    node.op, node.attribute, " +agg" if node.agg else "")
        actual = actual_io = actual_logical = elapsed = None
        eval_errors = 0
        if span is not None:
            actual = span.attrs.get("rows")
            actual_io = span.exclusive("io", "total")
            actual_logical = span.exclusive("io", "logical_total")
            elapsed = span.elapsed
            eval_errors = span.attrs.get("eval_errors", 0)
        node_qerror = None
        hints: Tuple[str, ...] = ()
        if actual is not None:
            node_qerror = qerror(node_estimate, actual)
            hints = tuple(route_hints(node, node_estimate, actual))
        return ExplainNode(
            text,
            node_estimate,
            children,
            actual,
            actual_io=actual_io,
            actual_logical_io=actual_logical,
            elapsed=elapsed,
            eval_errors=eval_errors,
            qerror=node_qerror,
            hints=hints,
        )

    root = build(query, root_span)
    if applied:
        root.label += "  [rewrites: %s]" % "; ".join(applied)
    if analyze:
        from ..obs.metrics import get_registry

        histogram = qerror_histogram(metrics if metrics is not None else get_registry())

        def observe(node: ExplainNode) -> None:
            if node.qerror is not None:
                histogram.observe(node.qerror)
            for child in node.children:
                observe(child)

        observe(root)
    return root
