"""Hierarchical selection, plain and aggregate -- the engine's entry point
for ``p``, ``c``, ``a``, ``d``, ``ac`` and ``dc`` (ComputeHSAgg of
Section 6.4, subsuming ComputeHSPC/HSAD/HSADc as the ``count($2) > 0``
case).

The heavy lifting is :func:`repro.engine.stackjoin.hierarchical_annotate`
(one merge-driven stack pass, linear I/O) followed by
:func:`repro.engine.selection.select_annotated` (at most two scans).
"""

from __future__ import annotations

from typing import Optional

from ..query.aggregates import AggSelFilter
from ..storage.pager import Pager
from ..storage.runs import Run
from .common import witness_terms_of
from .selection import select_annotated
from .stackjoin import hierarchical_annotate

__all__ = ["hierarchical_select"]


def hierarchical_select(
    pager: Pager,
    op: str,
    first: Run,
    second: Run,
    third: Optional[Run] = None,
    agg_filter: Optional[AggSelFilter] = None,
) -> Run:
    """Evaluate ``(op first second [third] [agg_filter])`` on sorted runs;
    returns the selected entries of ``first`` as a sorted run."""
    terms = witness_terms_of(agg_filter)
    annotated = hierarchical_annotate(pager, op, first, second, third, terms)
    try:
        return select_annotated(pager, annotated, terms, agg_filter)
    finally:
        annotated.free()
