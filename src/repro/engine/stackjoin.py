"""The generalised stack pass behind Figures 2, 4, 5 and 6.

One algorithm skeleton covers all six hierarchical operators, in both their
plain (L1) and aggregate (L2) forms:

- the operands are merged into a single sorted labelled stream
  (:func:`repro.engine.common.labeled_merge`);
- a stack of frames mirrors the current root-to-leaf chain (observation (2)
  of Section 5.3: when an entry is pushed, exactly its ancestors in the
  merge are on the stack);
- the ``below`` direction (operators ``p``, ``a``, ``ac``, whose witnesses
  are up the chain) is resolved at *push* time from the frame beneath;
- the ``above`` direction (operators ``c``, ``d``, ``dc``, whose witnesses
  are in the subtree) accumulates into the top frame as witnesses are
  pushed and, for ``d``/``dc``, propagates upward on pop exactly as the
  ``above(rb) = above(rb) + above(rt)`` line of Figure 4;
- for the path-constrained operators, entries labelled 3 reset the below
  chain and absorb (rather than propagate) above states -- the
  ``3 not in label`` guards of Figure 5;
- instead of the paper's two-phase "write counts into L1, then rescan",
  resolved entries ride per-frame :class:`~repro.engine.common.SpillList`\\ s
  that concatenate parent-ward on pop, so the annotated output emerges
  already in sorted order with linear I/O (see DESIGN.md).

The paper's ``above``/``below`` integer counters are the special case of a
single ``count($2)`` term; Section 6.4's generalisation to distributive and
algebraic aggregates is the general case (a vector of
:class:`~repro.query.aggregates.AggState`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..model.entry import Entry
from ..query.aggregates import EntryAggregate
from ..storage.pagedstack import PagedStack
from ..storage.pager import Pager
from ..storage.runs import Run, RunWriter
from .common import (
    SpillList,
    add_witness,
    copy_states,
    fresh_states,
    labeled_merge,
    merge_states,
    resolve_terms,
)

__all__ = ["hierarchical_annotate", "BELOW_OPS", "ABOVE_OPS"]

#: Operators whose witness sets lie on the root-ward chain.
BELOW_OPS = ("p", "a", "ac")
#: Operators whose witness sets lie in the subtree.
ABOVE_OPS = ("c", "d", "dc")


class _Frame:
    """One stack frame: an entry, its labels, its witness-aggregate states
    and the deferred list of resolved entries from its subtree."""

    __slots__ = ("entry", "label", "states", "dlist")

    def __init__(self, entry: Entry, label: frozenset, states, dlist: SpillList):
        self.entry = entry
        self.label = label
        self.states = states
        self.dlist = dlist


def hierarchical_annotate(
    pager: Pager,
    op: str,
    first: Run,
    second: Run,
    third: Optional[Run] = None,
    terms: Optional[Sequence[EntryAggregate]] = None,
) -> Run:
    """Run the stack pass; return a run of ``(entry, results)`` pairs --
    every L1 entry, in sorted order, annotated with the resolved value of
    each witness-aggregate term.

    ``op`` is one of the six hierarchical operators; ``third`` is required
    exactly for ``ac``/``dc``.
    """
    if op not in BELOW_OPS and op not in ABOVE_OPS:
        raise ValueError("unknown hierarchical operator %r" % op)
    if (op in ("ac", "dc")) != (third is not None):
        raise ValueError("%s requires exactly %s operands" % (op, 3 if op in ("ac", "dc") else 2))
    terms = list(terms) if terms else [EntryAggregate("count", "$2", None)]
    below_direction = op in BELOW_OPS

    runs = [first, second] + ([third] if third is not None else [])
    writer = RunWriter(pager)
    stack = PagedStack(pager)

    def pop_frame() -> None:
        frame: _Frame = stack.pop()
        out = frame.dlist
        if 1 in frame.label:
            # The frame's own entry sorts before everything in its subtree.
            out.prepend((frame.entry, resolve_terms(frame.states)))
        top: Optional[_Frame] = stack.peek()
        if top is not None:
            if op == "d" or (op == "dc" and 3 not in frame.label):
                merge_states(top.states, frame.states)
            top.dlist.concat(out)
        else:
            out.flush_to(writer)

    for entry, label in labeled_merge(runs):
        # Unwind to the nearest stacked ancestor of the incoming entry.
        while True:
            top: Optional[_Frame] = stack.peek()
            if top is None or top.entry.dn.is_ancestor_of(entry.dn):
                break
            pop_frame()

        top = stack.peek()
        if below_direction:
            states = _below_states(op, terms, entry, top)
        else:
            states = fresh_states(terms)
            _feed_above(op, terms, entry, label, top)
        stack.push(_Frame(entry, label, states, SpillList(pager)))

    while not stack.is_empty():
        pop_frame()
    return writer.close()


def _below_states(op: str, terms, entry: Entry, top: Optional[_Frame]):
    """The push-time resolution of the below direction (Figures 2/4/5)."""
    if top is None:
        return fresh_states(terms)
    if op == "p":
        states = fresh_states(terms)
        if 2 in top.label and top.entry.dn.is_parent_of(entry.dn):
            add_witness(states, terms, top.entry)
        return states
    if op == "a":
        states = copy_states(top.states)
        if 2 in top.label:
            add_witness(states, terms, top.entry)
        return states
    # ac: an intervening Q3 entry cuts the chain (Figure 5); a blocker that
    # is itself a witness still contributes itself.
    states = fresh_states(terms) if 3 in top.label else copy_states(top.states)
    if 2 in top.label:
        add_witness(states, terms, top.entry)
    return states


def _feed_above(op: str, terms, entry: Entry, label: frozenset, top: Optional[_Frame]) -> None:
    """The push-time contribution of a witness to the above direction."""
    if top is None or 2 not in label:
        return
    if op == "c":
        if top.entry.dn.is_parent_of(entry.dn):
            add_witness(top.states, terms, entry)
    else:  # d / dc: any stacked ancestor chain; counts propagate on pop
        add_witness(top.states, terms, entry)
