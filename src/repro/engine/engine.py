"""The query engine: bottom-up, pipelined evaluation of whole query trees
(Section 8.2).

Each query-tree node is evaluated with the operator algorithms of this
package; every operator consumes sorted runs and produces a sorted run, so
"no additional sorting of the result of an intermediate operator is
necessary" -- the property Theorems 8.3/8.4 rest on.  Intermediate runs are
freed as soon as their consumer is done, and all page traffic flows through
one pager, so a query's I/O cost is directly observable as the pager-stats
delta around :meth:`QueryEngine.run`.
"""

from __future__ import annotations

import time
from typing import List, Union

from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..query.ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    QueryError,
    SimpleAggSelect,
)
from ..obs.budget import BudgetExceeded
from ..obs.log import NULL_LOGGER
from ..obs.trace import NULL_TRACER
from ..query.parser import parse_query
from ..storage.pager import IOStats
from ..storage.runs import Run
from ..storage.store import DirectoryStore
from .atomic import evaluate_atomic
from .eragg import embedded_ref_select
from .hsagg import hierarchical_select
from .merge import boolean_merge
from .simpleagg import simple_agg_select

__all__ = ["QueryEngine", "QueryResult"]


class QueryResult:
    """The outcome of one engine run: entries plus observed cost.

    ``cached``/``saved_io`` are filled in by result-cache layers (see
    :mod:`repro.cache`) when a result is served without evaluation; a
    plain engine run always reports ``cached=False``.
    """

    def __init__(
        self,
        entries: List[Entry],
        io: IOStats,
        elapsed: float,
        cached: bool = False,
        saved_io: int = 0,
        eval_errors: int = 0,
    ):
        self.entries = entries
        self.io = io
        self.elapsed = elapsed
        self.cached = cached
        self.saved_io = saved_io
        #: Records skipped by operators because a value could not be
        #: evaluated (e.g. an embedded reference failing dn coercion).
        #: Zero for a clean answer; non-zero means the result silently
        #: excludes that many source records -- surfaced here and in
        #: EXPLAIN ``--analyze`` instead of being swallowed.
        self.eval_errors = eval_errors

    def dns(self) -> List[str]:
        """The result dn strings, in order (convenience for tests/examples)."""
        return [str(entry.dn) for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self) -> str:
        return "QueryResult(%d entries, %r)" % (len(self.entries), self.io)


class QueryEngine:
    """External-memory query evaluation over a :class:`DirectoryStore`."""

    def __init__(
        self,
        store: DirectoryStore,
        use_indices: bool = True,
        memory_pages: int = 4,
        tracer=None,
        pool=None,
        budget=None,
        log=None,
        heatmap=None,
    ):
        self.store = store
        self.pager = store.pager
        #: Optional :class:`~repro.obs.heatmap.SubtreeHeatMap`; when set,
        #: every atomic leaf records one read (plus its logical page cost)
        #: under the leaf's base subtree.  None keeps the hot path at a
        #: single attribute check.
        self.heatmap = heatmap
        self.use_indices = use_indices
        #: Workspace bound for the sorts inside vd/dv (Figure 3).
        self.memory_pages = memory_pages
        #: Engine-level default :class:`~repro.obs.budget.QueryBudget`
        #: applied to every run (a per-call budget overrides it).  None
        #: means unlimited -- the default, and free: no tracker is
        #: created and the per-operator charge check is one attribute
        #: load.
        self.budget = budget
        #: Structured event logger (see :mod:`repro.obs.log`); the no-op
        #: default keeps the hot path free of formatting work.
        self.log = log if log is not None else NULL_LOGGER
        #: Span tracer (see :mod:`repro.obs.trace`).  The default no-op
        #: tracer keeps the hot path allocation-free; pass a live
        #: :class:`~repro.obs.trace.Tracer` to record one span per
        #: operator with wall time and exact page-I/O attribution.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled and "io" not in self.tracer.probes:
            self.tracer.add_probe("io", self.pager.stats)
        #: Optional :class:`~repro.exec.WorkerPool`: when it can run
        #: concurrently, the two operands of a boolean node are evaluated
        #: in parallel (they are independent subtrees; the merge is the
        #: barrier).  None or a single-worker pool keeps evaluation
        #: strictly sequential -- the default.
        self.pool = pool
        #: Per-operator skip counts collected during one run (list of
        #: ints: appends are atomic under the GIL, so parallel subtrees
        #: may report concurrently).
        self._eval_error_counts: List[int] = []
        #: Live :class:`~repro.obs.budget.BudgetTracker` while a budgeted
        #: run is in flight (charged after every operator, also from
        #: pool workers -- reads are lock-protected inside the stats).
        self._budget_tracker = None

    @classmethod
    def from_instance(
        cls,
        instance: DirectoryInstance,
        page_size: int = 16,
        buffer_pages: int = 8,
        int_indices: tuple = (),
        string_indices: tuple = (),
        **engine_options,
    ) -> "QueryEngine":
        """Bulk-load an instance and build the requested secondary indices."""
        store = DirectoryStore.from_instance(
            instance, page_size=page_size, buffer_pages=buffer_pages
        )
        if int_indices or string_indices:
            store.build_indices(tuple(int_indices), tuple(string_indices))
        return cls(store, **engine_options)

    # -- public API ---------------------------------------------------------

    def run(self, query: Union[Query, str], budget=None) -> QueryResult:
        """Evaluate a query (AST or concrete syntax); return entries plus
        the I/O incurred.

        ``budget`` (or the engine-level default) caps the evaluation; on
        breach every intermediate run is freed and the structured
        :class:`~repro.obs.budget.BudgetExceeded` propagates to the
        caller -- the pager's :attr:`~repro.storage.pager.Pager.live_pages`
        is back at its pre-query value when it does."""
        if isinstance(query, str):
            with self.tracer.span("parse"):
                query = parse_query(query)
        self._eval_error_counts = []
        active = budget if budget is not None else self.budget
        self._budget_tracker = (
            active.start(self.pager.stats) if active is not None else None
        )
        before = self.pager.stats.snapshot()
        started = time.perf_counter()
        try:
            with self.tracer.span("execute") as span:
                result_run = self.evaluate_to_run(query)
                entries = result_run.to_list()
                result_run.free()
                span.set(rows=len(entries))
                eval_errors = sum(self._eval_error_counts)
                if eval_errors:
                    span.set(eval_errors=eval_errors)
        finally:
            self._budget_tracker = None
        elapsed = time.perf_counter() - started
        io = self.pager.stats.since(before)
        if self.log.enabled_for("debug"):
            self.log.debug(
                "engine.run",
                rows=len(entries),
                pages=io.logical_total,
                elapsed_s=round(elapsed, 6),
                eval_errors=eval_errors or None,
            )
        return QueryResult(entries, io, elapsed, eval_errors=eval_errors)

    # -- recursive evaluation ---------------------------------------------

    def atomic_run(self, query: AtomicQuery) -> Run:
        """Evaluate one atomic leaf.  Overridden by the distributed
        coordinator (Section 8.3) to route leaves to the owning server."""
        return evaluate_atomic(self.store, query, self.use_indices)

    def evaluate_to_run(self, query: Query) -> Run:
        """Evaluate ``query`` to a sorted run (caller frees it).

        With a live tracer, every query-tree node gets one span (named
        ``op:...``) recording its result size and -- via the ``io`` probe
        -- the page transfers it caused, children included; the span tree
        mirrors the query tree exactly, which is what EXPLAIN
        ``--analyze`` walks for per-operator actuals."""
        if not self.tracer.enabled:
            result = self._evaluate_node(query)
            if result.eval_errors:
                self._eval_error_counts.append(result.eval_errors)
            self._charge(result)
            return result
        with self.tracer.span(_span_name(query)) as span:
            result = self._evaluate_node(query)
            span.set(rows=len(result))
            if result.eval_errors:
                self._eval_error_counts.append(result.eval_errors)
                span.set(eval_errors=result.eval_errors)
            self._charge(result)
            return result

    def _charge(self, result: Run) -> None:
        """Check the run's budget after one operator; on breach free the
        operator's own result before the error propagates (the operand
        runs are already freed by :meth:`_evaluate_node`'s ``finally``
        blocks, and in-flight sibling runs by :meth:`_evaluate_operands`),
        keeping the cancellation leak-free end to end."""
        tracker = self._budget_tracker
        if tracker is None:
            return
        try:
            tracker.charge(result_entries=len(result))
        except BudgetExceeded:
            result.free()
            raise

    def _evaluate_operands(self, children) -> List[Run]:
        """Evaluate independent sibling subtrees, in parallel when the
        engine has a concurrent pool (the caller's merge is the barrier).
        Results come back in child order; on any failure every sibling's
        run is freed before the first error re-raises."""
        pool = self.pool
        if pool is None or not pool.parallel or len(children) <= 1:
            sequential: List[Run] = []
            try:
                for child in children:
                    sequential.append(self.evaluate_to_run(child))
            except BaseException:
                for run in sequential:
                    run.free()
                raise
            return sequential
        context = self.tracer.context()

        def evaluate(child):
            token = self.tracer.adopt(context)
            try:
                return ("ok", self.evaluate_to_run(child))
            except Exception as exc:
                return ("err", exc)
            finally:
                self.tracer.release(token)

        runs: List[Run] = []
        first_error = None
        for status, value in pool.map_ordered(evaluate, list(children)):
            if status == "ok":
                runs.append(value)
            elif first_error is None:
                first_error = value
        if first_error is not None:
            for run in runs:
                run.free()
            raise first_error
        return runs

    def _evaluate_node(self, query: Query) -> Run:
        if isinstance(query, AtomicQuery):
            heatmap = self.heatmap
            if heatmap is None:
                return self.atomic_run(query)
            before = self.pager.stats.snapshot()
            result = self.atomic_run(query)
            heatmap.record_read(
                query.base, pages=self.pager.stats.since(before).logical_total
            )
            return result

        if isinstance(query, (And, Or, Diff)):
            op = {And: "and", Or: "or", Diff: "diff"}[type(query)]
            left, right = self._evaluate_operands((query.left, query.right))
            try:
                return boolean_merge(self.pager, op, left, right)
            finally:
                left.free()
                right.free()

        if isinstance(query, HierarchySelect):
            operands = [query.first, query.second]
            if query.third is not None:
                operands.append(query.third)
            runs = self._evaluate_operands(operands)
            first, second = runs[0], runs[1]
            third = runs[2] if query.third is not None else None
            try:
                return hierarchical_select(
                    self.pager, query.op, first, second, third, query.agg
                )
            finally:
                first.free()
                second.free()
                if third is not None:
                    third.free()

        if isinstance(query, SimpleAggSelect):
            operand = self.evaluate_to_run(query.operand)
            try:
                return simple_agg_select(self.pager, operand, query.agg)
            finally:
                operand.free()

        if isinstance(query, EmbeddedRef):
            first, second = self._evaluate_operands((query.first, query.second))
            try:
                return embedded_ref_select(
                    self.pager,
                    query.op,
                    first,
                    second,
                    query.attribute,
                    query.agg,
                    memory_pages=self.memory_pages,
                )
            finally:
                first.free()
                second.free()

        raise QueryError("unknown query node %r" % (query,))

    def __repr__(self) -> str:
        return "QueryEngine(%r)" % self.store


def _span_name(query: Query) -> str:
    """The span name for one query-tree node (stable operator labels)."""
    if isinstance(query, AtomicQuery):
        return "op:atomic"
    if isinstance(query, (And, Or, Diff)):
        return "op:%s" % {And: "and", Or: "or", Diff: "diff"}[type(query)]
    if isinstance(query, HierarchySelect):
        return "op:hs:%s" % query.op
    if isinstance(query, SimpleAggSelect):
        return "op:agg"
    if isinstance(query, EmbeddedRef):
        return "op:er:%s" % query.op
    return "op:%s" % type(query).__name__.lower()
