"""Directory statistics and cardinality estimation.

The paper assumes atomic queries are evaluated "efficiently ... with the
help of B-tree indices" but leaves *choosing* an access path to the
engine.  This module supplies what a real directory server keeps for that
choice: one-scan statistics over the master run --

- per attribute: how many entries carry it and how many values exist;
- for int attributes: min/max plus an equi-width histogram;
- for string attributes: exact frequencies of the most common values and
  the distinct-value count;
- per depth: entry counts (for scope estimates);

and a :class:`CardinalityEstimator` that turns a filter + base + scope
into an estimated result size.  Estimates only steer access-path choice
and EXPLAIN output; correctness never depends on them.

Statistics do not have to stay a load-time snapshot:
:class:`LiveDirectoryStatistics` subscribes to an
:class:`~repro.storage.maintenance.UpdatableDirectory`'s record and
compaction listeners and keeps the counters current -- incremental
per-attribute deltas for adds/deletes/modifies (the write path attaches
the pre-image it already holds), and a full rebuild folded into the next
compaction when a delta is not locally decidable (subtree deletes,
replayed records without pre-images).
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Optional

from ..filters.ast import (
    Comparison,
    Equality,
    Filter,
    FilterAnd,
    FilterNot,
    FilterOr,
    MatchAll,
    Presence,
    Substring,
)
from ..model.dn import DN
from ..query.ast import AtomicQuery, Scope
from ..storage.store import DirectoryStore

__all__ = [
    "AttributeStats",
    "DirectoryStatistics",
    "LiveDirectoryStatistics",
    "CardinalityEstimator",
]

_HISTOGRAM_BUCKETS = 16
_TOP_VALUES = 32


class AttributeStats:
    """Collected statistics for one attribute."""

    __slots__ = (
        "name",
        "entries_with",
        "value_count",
        "int_min",
        "int_max",
        "histogram",
        "top_values",
        "distinct_estimate",
    )

    def __init__(self, name: str):
        self.name = name
        self.entries_with = 0
        self.value_count = 0
        self.int_min: Optional[int] = None
        self.int_max: Optional[int] = None
        self.histogram = [0] * _HISTOGRAM_BUCKETS
        self.top_values: Dict[str, int] = {}
        self.distinct_estimate = 0

    def bucket_of(self, value: int) -> int:
        if self.int_min is None or self.int_max is None or self.int_max == self.int_min:
            return 0
        span = self.int_max - self.int_min
        index = int((value - self.int_min) * _HISTOGRAM_BUCKETS / (span + 1))
        return max(0, min(_HISTOGRAM_BUCKETS - 1, index))

    def range_fraction(self, low: Optional[float], high: Optional[float]) -> float:
        """Fraction of this attribute's int values inside [low, high]."""
        total = sum(self.histogram)
        if total == 0 or self.int_min is None or self.int_max is None:
            return 0.0
        if low is None:
            low = self.int_min
        if high is None:
            high = self.int_max
        if high < self.int_min or low > self.int_max:
            return 0.0
        width = (self.int_max - self.int_min + 1) / _HISTOGRAM_BUCKETS
        covered = 0.0
        for bucket, count in enumerate(self.histogram):
            bucket_low = self.int_min + bucket * width
            bucket_high = bucket_low + width
            overlap = max(0.0, min(high + 1, bucket_high) - max(low, bucket_low))
            if overlap > 0:
                covered += count * overlap / width
        return min(1.0, covered / total)

    def eq_fraction(self, value: str) -> float:
        """Fraction of entries carrying this exact value."""
        if self.entries_with == 0:
            return 0.0
        if value in self.top_values:
            return self.top_values[value] / max(self.entries_with, 1)
        if self.distinct_estimate:
            # Not among the common values: assume a uniform share of the
            # remaining mass.
            common_mass = sum(self.top_values.values())
            rest = max(self.value_count - common_mass, 0)
            rest_distinct = max(self.distinct_estimate - len(self.top_values), 1)
            return (rest / rest_distinct) / max(self.entries_with, 1)
        return 0.0

    # -- incremental maintenance ---------------------------------------------

    def apply_values(self, values, sign: int) -> None:
        """Fold one entry's values in (``sign=+1``) or out (``-1``).

        Deltas are approximate by design: the histogram's bucket bounds and
        the tracked common-value set stay as collected (a value outside the
        int range clamps to the edge bucket; a new value joins the untracked
        mass), and ``distinct_estimate`` only grows.  The next full rebuild
        re-tightens everything; meanwhile the counters the estimator divides
        by (``entries_with``, ``value_count``, ``total_entries``) are exact.
        """
        self.entries_with = max(self.entries_with + sign, 0)
        self.value_count = max(self.value_count + sign * len(values), 0)
        for value in values:
            if isinstance(value, int) and not isinstance(value, bool):
                if self.int_min is not None:
                    bucket = self.bucket_of(value)
                    self.histogram[bucket] = max(self.histogram[bucket] + sign, 0)
                elif sign > 0:
                    self.int_min = self.int_max = value
                    self.histogram[self.bucket_of(value)] += 1
            text = str(value)
            if text in self.top_values:
                self.top_values[text] = max(self.top_values[text] + sign, 0)


class DirectoryStatistics:
    """Whole-store statistics, collected in one master scan."""

    def __init__(self, total_entries: int, depth_counts: Dict[int, int],
                 attributes: Dict[str, AttributeStats]):
        self.total_entries = total_entries
        self.depth_counts = depth_counts
        self.attributes = attributes

    @classmethod
    def collect(cls, store: DirectoryStore) -> "DirectoryStatistics":
        depth_counts: Dict[int, int] = {}
        attributes: Dict[str, AttributeStats] = {}
        counters: Dict[str, Counter] = {}
        int_values: Dict[str, list] = {}
        total = 0
        for entry in store.scan_all():
            total += 1
            depth = entry.dn.depth()
            depth_counts[depth] = depth_counts.get(depth, 0) + 1
            for attribute in entry.attributes():
                stats = attributes.get(attribute)
                if stats is None:
                    stats = attributes[attribute] = AttributeStats(attribute)
                    counters[attribute] = Counter()
                    int_values[attribute] = []
                values = entry.values(attribute)
                stats.entries_with += 1
                stats.value_count += len(values)
                for value in values:
                    if isinstance(value, int) and not isinstance(value, bool):
                        int_values[attribute].append(value)
                    counters[attribute][str(value)] += 1
        for attribute, stats in attributes.items():
            counter = counters[attribute]
            stats.distinct_estimate = len(counter)
            stats.top_values = dict(counter.most_common(_TOP_VALUES))
            numbers = int_values[attribute]
            if numbers:
                stats.int_min = min(numbers)
                stats.int_max = max(numbers)
                for number in numbers:
                    stats.histogram[stats.bucket_of(number)] += 1
        return cls(total, depth_counts, attributes)

    def attribute(self, name: str) -> Optional[AttributeStats]:
        return self.attributes.get(name)

    def apply_entry(self, entry, sign: int = 1) -> None:
        """Fold one entry into (+1) or out of (-1) the statistics."""
        self.total_entries = max(self.total_entries + sign, 0)
        depth = entry.dn.depth()
        self.depth_counts[depth] = max(self.depth_counts.get(depth, 0) + sign, 0)
        for attribute in entry.attributes():
            stats = self.attributes.get(attribute)
            if stats is None:
                if sign < 0:
                    continue
                stats = self.attributes[attribute] = AttributeStats(attribute)
            stats.apply_values(entry.values(attribute), sign)


class LiveDirectoryStatistics:
    """Statistics that track an
    :class:`~repro.storage.maintenance.UpdatableDirectory` instead of a
    load-time snapshot.

    Attaches to the directory's record and compaction listeners:

    - adds/modifies/deletes apply an incremental per-attribute delta
      (modify and delete use the pre-image the online write path attaches
      to the :class:`~repro.txn.records.ChangeRecord`);
    - a mutation whose delta is not locally decidable -- a subtree delete,
      or a replayed record without a pre-image -- marks the statistics
      *stale*;
    - stale statistics rebuild from the master run at the next compaction
      (the scan piggybacks on maintenance, not on a query), or lazily at
      the next :meth:`current` call if no compaction intervened.

    The first :meth:`current` call performs the initial collection scan.
    Estimator reads and writer deltas may interleave; counter updates are
    individually atomic under the lock, and estimates are advisory
    (correctness never depends on them).
    """

    def __init__(self, directory, metrics=None):
        from ..obs.metrics import get_registry

        self.directory = directory
        self._lock = threading.Lock()
        self._stats: Optional[DirectoryStatistics] = None
        self._stale = True
        self.rebuilds = 0
        self.deltas_applied = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_rebuilds = registry.counter(
            "repro_stats_rebuilds_total",
            "Full statistics rebuilds (initial collection included)",
        )
        self._m_deltas = registry.counter(
            "repro_stats_deltas_total",
            "Incremental statistics deltas applied, by mutation kind",
            labelnames=("kind",),
        )
        directory.add_record_listener(self._on_record)
        directory.add_compaction_listener(self._on_compaction)

    def detach(self) -> None:
        """Unsubscribe from the directory (idempotent)."""
        self.directory.remove_record_listener(self._on_record)
        self.directory.remove_compaction_listener(self._on_compaction)

    @property
    def stale(self) -> bool:
        return self._stale

    def current(self) -> DirectoryStatistics:
        """The up-to-date statistics (rebuilding first if stale)."""
        with self._lock:
            if self._stats is None or self._stale:
                self._rebuild()
            return self._stats

    # -- listeners ----------------------------------------------------------

    def _rebuild(self) -> None:
        """Collect from a pinned view: the master-run scan plus the folded
        overlay, so a rebuild is exact even with mutations still pending."""
        with self.directory.acquire_view() as view:
            stats = DirectoryStatistics.collect(view.store)
            adds, deletes, subtrees = view.snapshot.folded()

            def in_deleted_subtree(dn) -> bool:
                return any(root.is_prefix_of(dn) for root in subtrees)

            for root in subtrees:
                for entry in view.store.scan_subtree(root):
                    stats.apply_entry(entry, -1)
            for dn in deletes:
                if in_deleted_subtree(dn):
                    continue
                pre = _stored_entry(view.store, dn)
                if pre is not None:
                    stats.apply_entry(pre, -1)
            for dn, entry in adds.items():
                pre = _stored_entry(view.store, dn)
                if pre is not None and not in_deleted_subtree(dn):
                    stats.apply_entry(pre, -1)  # overlay modify replaces it
                stats.apply_entry(entry, 1)
        self._stats = stats
        self._stale = False
        self.rebuilds += 1
        self._m_rebuilds.inc()

    def _on_record(self, record) -> None:
        with self._lock:
            if self._stats is None or self._stale:
                return  # nothing maintained yet / rebuild already owed
            if record.kind == "add":
                self._stats.apply_entry(record.entry, 1)
            elif record.kind == "modify":
                pre = getattr(record, "pre_image", None)
                if pre is None:
                    self._stale = True
                    return
                self._stats.apply_entry(pre, -1)
                self._stats.apply_entry(record.entry, 1)
            else:  # delete
                pre = getattr(record, "pre_image", None)
                if record.subtree or pre is None:
                    # The removed region is not known entry-by-entry.
                    self._stale = True
                    return
                self._stats.apply_entry(pre, -1)
            self.deltas_applied += 1
            self._m_deltas.inc(kind=record.kind)

    def _on_compaction(self, store) -> None:
        with self._lock:
            if self._stats is not None and self._stale:
                # Fold the rebuild into maintenance: the compaction just
                # paid one co-scan; the statistics scan rides along instead
                # of surprising a later query.
                self._rebuild()


def _stored_entry(store, dn):
    """The master-run entry at ``dn``, or None (overlay ignored)."""
    for entry in store.scan_subtree(dn):
        if entry.dn == dn:
            return entry
        break
    return None


class CardinalityEstimator:
    """Selectivity and result-size estimates over collected statistics.

    ``stats`` may be a :class:`DirectoryStatistics` snapshot (the seed
    behaviour), a :class:`LiveDirectoryStatistics` -- then every estimate
    reads the current, incrementally maintained state -- or None to
    collect a snapshot from the store now (eagerly, so the scan never
    lands inside a caller's measured evaluation window).
    """

    #: Fallbacks when statistics cannot speak.
    DEFAULT_SUBSTRING = 0.1
    DEFAULT_EQ = 0.05

    def __init__(self, store: DirectoryStore, stats=None):
        self.store = store
        self._source = stats if stats is not None else DirectoryStatistics.collect(store)

    @property
    def stats(self) -> DirectoryStatistics:
        source = self._source
        if isinstance(source, LiveDirectoryStatistics):
            return source.current()
        return source

    # -- filters -------------------------------------------------------------

    def filter_selectivity(self, filter_: Filter) -> float:
        """Estimated fraction of entries satisfying ``filter_``."""
        total = max(self.stats.total_entries, 1)
        if isinstance(filter_, MatchAll):
            return 1.0
        if isinstance(filter_, Presence):
            stats = self.stats.attribute(filter_.attribute)
            return (stats.entries_with / total) if stats else 0.0
        if isinstance(filter_, Equality):
            stats = self.stats.attribute(filter_.attribute)
            if stats is None or stats.entries_with == 0:
                return 0.0
            # eq_fraction is relative to carrying entries; rescale to all.
            return stats.eq_fraction(str(filter_.value)) * stats.entries_with / total
        if isinstance(filter_, Comparison):
            stats = self.stats.attribute(filter_.attribute)
            if stats is None or stats.int_min is None:
                return 0.0
            if filter_.op in ("<", "<="):
                high = filter_.value - (1 if filter_.op == "<" else 0)
                fraction = stats.range_fraction(None, high)
            else:
                low = filter_.value + (1 if filter_.op == ">" else 0)
                fraction = stats.range_fraction(low, None)
            return fraction * stats.entries_with / total
        if isinstance(filter_, Substring):
            stats = self.stats.attribute(filter_.attribute)
            base = (stats.entries_with / total) if stats else 0.0
            return base * self.DEFAULT_SUBSTRING
        if isinstance(filter_, FilterAnd):
            product = 1.0
            for operand in filter_.operands:
                product *= self.filter_selectivity(operand)
            return product
        if isinstance(filter_, FilterOr):
            miss = 1.0
            for operand in filter_.operands:
                miss *= 1.0 - self.filter_selectivity(operand)
            return 1.0 - miss
        if isinstance(filter_, FilterNot):
            return 1.0 - self.filter_selectivity(filter_.operand)
        return self.DEFAULT_EQ

    # -- scopes ----------------------------------------------------------------

    def scope_size(self, base: DN, scope: str) -> int:
        """Estimated entries inside (base, scope), from the sparse index
        (subtrees are contiguous page ranges -- an upper bound with page
        granularity) and depth counts."""
        if scope == Scope.BASE:
            return 1
        start, end = self.store.page_range_for_subtree(base)
        subtree_upper = max(0, end - start) * self.store.pager.page_size
        subtree_upper = min(subtree_upper, self.stats.total_entries)
        if base.is_null():
            subtree_upper = self.stats.total_entries
        if scope == Scope.SUB:
            return max(subtree_upper, 1)
        # one: the base plus its children; approximate children by the
        # average fanout at the base's depth.
        depth = base.depth()
        parents = self.stats.depth_counts.get(depth, 1)
        children_at = self.stats.depth_counts.get(depth + 1, 0)
        fanout = children_at / max(parents, 1)
        return int(min(subtree_upper, 1 + fanout)) or 1

    def atomic_cardinality(self, query: AtomicQuery) -> float:
        """Estimated result size of an atomic query."""
        return self.scope_size(query.base, query.scope) * self.filter_selectivity(
            query.filter
        )
