"""Result size limits and paged retrieval.

Directory servers never hand a client an unbounded result: LDAP has a
server-side size limit and the paged-results control.  This module adds
both on top of the engine, without disturbing the evaluation bounds --
the query is evaluated once to a result run; limits and pages only govern
how much of that run is materialised and shipped.

- :func:`run_limited` -- evaluate with a size limit; the result notes
  whether it was truncated (LDAP's ``sizeLimitExceeded`` condition).
- :class:`PagedSearch` -- iterate a result page by page (each page is a
  list of entries); the underlying run is freed when the cursor is
  exhausted or closed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

from ..model.entry import Entry
from ..query.ast import Query
from ..query.parser import parse_query
from .engine import QueryEngine, QueryResult

__all__ = ["LimitedResult", "run_limited", "PagedSearch"]


class LimitedResult(QueryResult):
    """A query result that may have been cut off by a size limit."""

    def __init__(self, entries, io, elapsed, truncated: bool, total_size: int):
        super().__init__(entries, io, elapsed)
        #: True when the full answer was larger than the limit.
        self.truncated = truncated
        #: The full answer's size (known even when truncated).
        self.total_size = total_size

    def __repr__(self) -> str:
        suffix = " (truncated from %d)" % self.total_size if self.truncated else ""
        return "LimitedResult(%d entries%s)" % (len(self.entries), suffix)


def run_limited(
    engine: QueryEngine,
    query: Union[Query, str],
    size_limit: int,
) -> LimitedResult:
    """Evaluate ``query`` but materialise at most ``size_limit`` entries."""
    if size_limit < 1:
        raise ValueError("size_limit must be positive")
    if isinstance(query, str):
        query = parse_query(query)
    import time

    before = engine.pager.stats.snapshot()
    started = time.perf_counter()
    run = engine.evaluate_to_run(query)
    entries: List[Entry] = []
    reader = run.reader()
    while not reader.exhausted() and len(entries) < size_limit:
        entries.append(reader.next())
    total = len(run)
    run.free()
    elapsed = time.perf_counter() - started
    io = engine.pager.stats.since(before)
    return LimitedResult(entries, io, elapsed, truncated=total > size_limit, total_size=total)


class PagedSearch:
    """A cursor over one query's result, LDAP paged-results style.

    Example::

        cursor = PagedSearch(engine, query, page_entries=100)
        for page in cursor:
            handle(page)          # a list of at most 100 entries
    """

    def __init__(
        self,
        engine: QueryEngine,
        query: Union[Query, str],
        page_entries: int,
    ):
        if page_entries < 1:
            raise ValueError("page_entries must be positive")
        if isinstance(query, str):
            query = parse_query(query)
        self.page_entries = page_entries
        self._run = engine.evaluate_to_run(query)
        #: The full answer's size (known up front; the run is materialised).
        self.total_size = len(self._run)
        self._reader = self._run.reader()
        self._delivered = 0
        self._closed = False

    @property
    def delivered(self) -> int:
        return self._delivered

    def next_page(self) -> Optional[List[Entry]]:
        """The next page, or None when exhausted (which also closes)."""
        if self._closed:
            return None
        page: List[Entry] = []
        while len(page) < self.page_entries and not self._reader.exhausted():
            page.append(self._reader.next())
        if not page:
            self.close()
            return None
        self._delivered += len(page)
        if self._reader.exhausted():
            self.close()
        return page

    def close(self) -> None:
        """Release the result run (idempotent)."""
        if not self._closed:
            self._closed = True
            self._run.free()

    def __iter__(self) -> Iterator[List[Entry]]:
        while True:
            page = self.next_page()
            if page is None:
                return
            yield page

    def __enter__(self) -> "PagedSearch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
