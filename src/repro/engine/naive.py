"""Naive quadratic baselines.

Sections 5.3 and 7.2 both open by dismissing "the straightforward way" --
testing each entry of the first operand against every entry of the second
to find witnesses -- as quadratic.  These baselines implement exactly that
strategy *in the same I/O model* (the inner operand is re-scanned from the
device for every outer entry), so the benchmarks can exhibit the
linear-vs-quadratic separation the paper claims.
"""

from __future__ import annotations

from typing import Optional

from ..model.dn import DN, DNSyntaxError
from ..query.aggregates import AggSelFilter
from ..query.semantics import witness_set
from ..storage.pager import Pager
from ..storage.runs import Run, RunWriter
from .common import add_witness, fresh_states, resolve_terms, witness_terms_of
from .selection import select_annotated

__all__ = ["naive_hierarchical_select", "naive_embedded_ref_select"]


def naive_hierarchical_select(
    pager: Pager,
    op: str,
    first: Run,
    second: Run,
    third: Optional[Run] = None,
    agg_filter: Optional[AggSelFilter] = None,
) -> Run:
    """Nested-loop evaluation of a hierarchical operator: for every entry
    of ``first``, re-scan ``second`` (and ``third``) looking for witnesses."""
    terms = witness_terms_of(agg_filter)
    writer = RunWriter(pager)
    for entry in first:
        witnesses_in_second = list(second)  # full re-scan, counted as I/O
        blockers = list(third) if third is not None else None
        witnesses = witness_set(op, entry, witnesses_in_second, blockers)
        states = fresh_states(terms)
        for witness in witnesses:
            add_witness(states, terms, witness)
        writer.append((entry, resolve_terms(states)))
    annotated = writer.close()
    try:
        return select_annotated(pager, annotated, terms, agg_filter)
    finally:
        annotated.free()


def naive_embedded_ref_select(
    pager: Pager,
    op: str,
    first: Run,
    second: Run,
    attribute: str,
    agg_filter: Optional[AggSelFilter] = None,
) -> Run:
    """Nested-loop evaluation of ``vd``/``dv``."""
    if op not in ("vd", "dv"):
        raise ValueError("unknown embedded-reference operator %r" % op)
    terms = witness_terms_of(agg_filter)
    writer = RunWriter(pager)
    for entry in first:
        states = fresh_states(terms)
        entry_refs = {_key_of(v) for v in entry.values(attribute)}
        for witness in second:  # full re-scan per outer entry
            if op == "vd":
                if witness.dn.key() in entry_refs:
                    add_witness(states, terms, witness)
            else:
                witness_refs = {_key_of(v) for v in witness.values(attribute)}
                if entry.dn.key() in witness_refs:
                    add_witness(states, terms, witness)
        writer.append((entry, resolve_terms(states)))
    annotated = writer.close()
    try:
        return select_annotated(pager, annotated, terms, agg_filter)
    finally:
        annotated.free()


def _key_of(value):
    if isinstance(value, DN):
        return value.key()
    if isinstance(value, str):
        try:
            return DN.parse(value).key()
        except DNSyntaxError:
            # Only a value that genuinely is not a dn is "no reference";
            # anything else propagates instead of vanishing.
            return None
    return None
