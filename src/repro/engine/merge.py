"""Boolean operators on sorted runs (Section 4.2).

Straightforward list merging in the style of Jacobson et al.'s table-driven
algorithm: both operands are sorted by reverse-dn key, so `(&)`, `(|)` and
`(-)` are single co-scans writing a sorted output -- linear I/O, and the
output order is preserved for the operators above in the query tree.
"""

from __future__ import annotations

from ..storage.pager import Pager
from ..storage.runs import Run, RunWriter

__all__ = ["boolean_merge"]

_OPS = ("and", "or", "diff")


def boolean_merge(pager: Pager, op: str, left: Run, right: Run) -> Run:
    """Compute ``left OP right`` on sorted, duplicate-free runs."""
    if op not in _OPS:
        raise ValueError("unknown boolean operator %r" % op)
    writer = RunWriter(pager)
    lreader = left.reader()
    rreader = right.reader()
    while True:
        lhead = lreader.peek()
        rhead = rreader.peek()
        if lhead is None and rhead is None:
            break
        if lhead is None:
            if op == "or":
                writer.append(rreader.next())
            else:
                rreader.next()
            continue
        if rhead is None:
            if op in ("or", "diff"):
                writer.append(lreader.next())
            else:
                lreader.next()
            continue
        lkey = lhead.dn.key()
        rkey = rhead.dn.key()
        if lkey == rkey:
            entry = lreader.next()
            rreader.next()
            if op in ("and", "or"):
                writer.append(entry)
        elif lkey < rkey:
            entry = lreader.next()
            if op in ("or", "diff"):
                writer.append(entry)
        else:
            entry = rreader.next()
            if op == "or":
                writer.append(entry)
    return writer.close()
