"""Literal transcriptions of the paper's algorithm figures.

The engine proper (:mod:`repro.engine.stackjoin`, :mod:`repro.engine.eragg`)
generalises these algorithms to arbitrary aggregates and streams its output
through spill lists.  This module instead transcribes the *published
pseudocode* as closely as Python allows -- same phase structure, same
counter names (``above``, ``below``, ``maxabove``, ``maxnum``), same
push/pop conditions -- over in-memory sorted entry lists:

- :func:`compute_hspc`      -- Figure 2, ``ComputeHSPC`` (parents/children);
- :func:`compute_hsad`      -- Figure 4, ``ComputeHSAD`` (ancestors/descendants);
- :func:`compute_hsadc`     -- Figure 5, ``ComputeHSADc`` (path-constrained);
- :func:`compute_hsagg_ad`  -- Figure 6, ``ComputeHSAggAD`` with the filter
  ``count($2) = max(count($2))``;
- :func:`compute_eragg_dv`  -- Figure 3, ``ComputeERAggDV`` with the same
  filter.

They serve as executable documentation and as independent oracles in the
test suite (three-way agreement: figure transcription == generalised engine
== definitional semantics).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..model.dn import DN
from ..model.entry import Entry

__all__ = [
    "compute_hspc",
    "compute_hsad",
    "compute_hsadc",
    "compute_hsagg_ad",
    "compute_eragg_dv",
]


def _merge_with_labels(
    lists: Sequence[Sequence[Entry]],
) -> List[Tuple[Entry, frozenset]]:
    """The lexicographic merge of the input lists; ``label(rl) = {i | rl in Li}``."""
    by_key: Dict[Tuple[str, ...], Tuple[Entry, set]] = {}
    for index, entries in enumerate(lists, start=1):
        for entry in entries:
            key = entry.dn.key()
            if key in by_key:
                by_key[key][1].add(index)
            else:
                by_key[key] = (entry, {index})
    return [
        (entry, frozenset(label))
        for _key, (entry, label) in sorted(by_key.items())
    ]


class _StackItem:
    __slots__ = ("entry", "label", "above", "below")

    def __init__(self, entry: Entry, label: frozenset):
        self.entry = entry
        self.label = label
        self.above = 0
        self.below = 0


def compute_hspc(op: str, list1: List[Entry], list2: List[Entry]) -> List[Entry]:
    """Figure 2: ``(p L1 L2)`` / ``(c L1 L2)`` by the stack algorithm."""
    if op not in ("p", "c"):
        raise ValueError("ComputeHSPC computes p or c, not %r" % op)
    merged = _merge_with_labels([list1, list2])
    counts: Dict[Tuple[str, ...], Tuple[int, int]] = {}
    stack: List[_StackItem] = []
    position = 0

    # Phase 1: associate each L1 entry with its parent/child counts in L2.
    while position < len(merged) or stack:
        current = merged[position] if position < len(merged) else None
        if stack:
            rt = stack[-1]
            advancing = (
                current is not None
                and rt.entry.dn.is_ancestor_of(current[0].dn)
            )
            if not advancing:
                if 1 in rt.label:
                    counts[rt.entry.dn.key()] = (rt.above, rt.below)
                stack.pop()
                continue
        assert current is not None
        rl = _StackItem(*current)
        if stack:
            rt = stack[-1]
            is_parent = rt.entry.dn.is_parent_of(rl.entry.dn)
            if 2 in rl.label and is_parent:
                rt.above += 1
            if 2 in rt.label and is_parent:
                rl.below = 1
        stack.append(rl)
        position += 1

    # Phase 2: scan L1 in order and output.
    output = []
    for entry in list1:
        above, below = counts[entry.dn.key()]
        if op == "p" and below > 0:
            output.append(entry)
        elif op == "c" and above > 0:
            output.append(entry)
    return output


def _hsad_counts(
    list1: List[Entry],
    list2: List[Entry],
) -> Dict[Tuple[str, ...], Tuple[int, int]]:
    """Phase 1 of Figure 4: ancestor/descendant counts for every L1 entry."""
    merged = _merge_with_labels([list1, list2])
    counts: Dict[Tuple[str, ...], Tuple[int, int]] = {}
    stack: List[_StackItem] = []
    position = 0
    while position < len(merged) or stack:
        current = merged[position] if position < len(merged) else None
        if stack:
            rt = stack[-1]
            advancing = (
                current is not None
                and rt.entry.dn.is_ancestor_of(current[0].dn)
            )
            if not advancing:
                if 1 in rt.label:
                    counts[rt.entry.dn.key()] = (rt.above, rt.below)
                stack.pop()
                if stack:
                    rb = stack[-1]
                    rb.above += rt.above  # the propagation line of Figure 4
                continue
        assert current is not None
        rl = _StackItem(*current)
        if stack:
            rt = stack[-1]
            if 2 in rl.label:
                rt.above += 1
            if 2 in rt.label:
                rl.below = rt.below + 1
            else:
                rl.below = rt.below
        stack.append(rl)
        position += 1
    return counts


def compute_hsad(op: str, list1: List[Entry], list2: List[Entry]) -> List[Entry]:
    """Figure 4: ``(a L1 L2)`` / ``(d L1 L2)``."""
    if op not in ("a", "d"):
        raise ValueError("ComputeHSAD computes a or d, not %r" % op)
    counts = _hsad_counts(list1, list2)
    output = []
    for entry in list1:
        above, below = counts[entry.dn.key()]
        if op == "a" and below > 0:
            output.append(entry)
        elif op == "d" and above > 0:
            output.append(entry)
    return output


def compute_hsadc(
    op: str,
    list1: List[Entry],
    list2: List[Entry],
    list3: List[Entry],
) -> List[Entry]:
    """Figure 5: ``(ac L1 L2 L3)`` / ``(dc L1 L2 L3)`` -- entries of L3 cut
    count propagation in both directions."""
    if op not in ("ac", "dc"):
        raise ValueError("ComputeHSADc computes ac or dc, not %r" % op)
    merged = _merge_with_labels([list1, list2, list3])
    counts: Dict[Tuple[str, ...], Tuple[int, int]] = {}
    stack: List[_StackItem] = []
    position = 0
    while position < len(merged) or stack:
        current = merged[position] if position < len(merged) else None
        if stack:
            rt = stack[-1]
            advancing = (
                current is not None
                and rt.entry.dn.is_ancestor_of(current[0].dn)
            )
            if not advancing:
                if 1 in rt.label:
                    counts[rt.entry.dn.key()] = (rt.above, rt.below)
                stack.pop()
                if stack and 3 not in rt.label:
                    stack[-1].above += rt.above
                continue
        assert current is not None
        rl = _StackItem(*current)
        if stack:
            rt = stack[-1]
            if 2 in rl.label:
                rt.above += 1
            if 2 in rt.label:
                if 3 not in rt.label:
                    rl.below = rt.below + 1
                else:
                    rl.below = 1
            elif 3 not in rt.label:
                rl.below = rt.below
        stack.append(rl)
        position += 1
    output = []
    for entry in list1:
        above, below = counts[entry.dn.key()]
        if op == "ac" and below > 0:
            output.append(entry)
        elif op == "dc" and above > 0:
            output.append(entry)
    return output


def compute_hsagg_ad(
    op: str,
    list1: List[Entry],
    list2: List[Entry],
) -> List[Entry]:
    """Figure 6: ``ComputeHSAggAD`` with the aggregate selection filter
    ``count($2) = max(count($2))`` -- the L1 entries with the *most*
    ancestors (op ``a``) or descendants (op ``d``) in L2."""
    if op not in ("a", "d"):
        raise ValueError("ComputeHSAggAD computes a or d, not %r" % op)
    counts = _hsad_counts(list1, list2)
    maxabove = max((above for above, _below in counts.values()), default=0)
    maxbelow = max((below for _above, below in counts.values()), default=0)
    output = []
    for entry in list1:
        above, below = counts[entry.dn.key()]
        if op == "a" and below == maxbelow:
            output.append(entry)
        elif op == "d" and above == maxabove:
            output.append(entry)
    return output


def compute_eragg_dv(
    list1: List[Entry],
    list2: List[Entry],
    attribute: str,
) -> List[Entry]:
    """Figure 3: ``ComputeERAggDV`` with ``count($2)=max(count($2))`` --
    the L1 entries with the most embedded references from L2 entries.

    Phase 1 explodes L2's dn-valued attribute into a pair list ``LP`` and
    sorts it by the reverse-dn order of the referenced dn; phase 2 co-scans
    ``LP`` with L1 maintaining ``num`` and ``maxnum``; phase 3 outputs the
    maxima."""
    pairs: List[Tuple[Tuple[str, ...], DN]] = []
    for rl in list2:
        for value in rl.values(attribute):
            target = value if isinstance(value, DN) else _try_dn(value)
            if target is not None:
                pairs.append((target.key(), rl.dn))
    pairs.sort(key=lambda pair: pair[0])

    num: Dict[Tuple[str, ...], int] = {}
    maxnum = 0
    pair_index = 0
    for r1 in list1:
        key = r1.dn.key()
        count = 0
        while pair_index < len(pairs) and pairs[pair_index][0] < key:
            pair_index += 1
        while pair_index < len(pairs) and pairs[pair_index][0] == key:
            count += 1
            pair_index += 1
        num[key] = count
        maxnum = max(maxnum, count)

    return [entry for entry in list1 if num[entry.dn.key()] == maxnum]


def _try_dn(value) -> Optional[DN]:
    if isinstance(value, str):
        try:
            return DN.parse(value)
        except Exception:
            return None
    return None
