"""The directory service layer: the LDAP-shaped integration of engine,
updates, access control and result controls."""

from .service import DirectoryService, ResultCode, SearchResult, ServiceError

__all__ = ["DirectoryService", "ResultCode", "SearchResult", "ServiceError"]
