"""The directory service: the integration layer a deployment would run.

Everything the repository builds, behind one LDAP-shaped interface:

- **bind** -- associate a connection with a subject (authentication is a
  lookup of the subject's ``userPassword``-style credential attribute, or
  anonymous);
- **search** -- any L0--L3 query (the paper's syntax, a builder object or
  an AST), honouring access control, a size limit and paged retrieval;
- **compare** -- LDAP's attribute-value assertion on one entry;
- **add / delete / modify** -- mutations through the differential update
  log (compaction is automatic before the next search);
- result codes in the style of LDAP (success, noSuchObject,
  sizeLimitExceeded, insufficientAccessRights, ...).

The service owns an :class:`~repro.storage.maintenance.UpdatableDirectory`
and rebuilds its engine view only when updates intervened, so repeated
searches keep their I/O bounds.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Union

from ..engine.engine import QueryEngine
from ..engine.paging import PagedSearch, run_limited
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..query.ast import Query
from ..query.builder import QueryBuilder
from ..query.parser import parse_query
from ..security import AccessControlList
from ..storage.maintenance import UpdatableDirectory, UpdateError

__all__ = ["DirectoryService", "ResultCode", "SearchResult", "ServiceError"]


class ResultCode:
    """LDAP-style result codes."""

    SUCCESS = "success"
    NO_SUCH_OBJECT = "noSuchObject"
    SIZE_LIMIT_EXCEEDED = "sizeLimitExceeded"
    INSUFFICIENT_ACCESS = "insufficientAccessRights"
    INVALID_CREDENTIALS = "invalidCredentials"
    ENTRY_ALREADY_EXISTS = "entryAlreadyExists"
    UNWILLING_TO_PERFORM = "unwillingToPerform"
    COMPARE_TRUE = "compareTrue"
    COMPARE_FALSE = "compareFalse"
    PROTOCOL_ERROR = "protocolError"


class ServiceError(RuntimeError):
    """Raised for protocol misuse (e.g. operations before bind when the
    service requires authentication)."""


class SearchResult:
    """One search's outcome: entries plus a result code."""

    def __init__(self, code: str, entries: List[Entry], total_size: Optional[int] = None):
        self.code = code
        self.entries = entries
        self.total_size = total_size if total_size is not None else len(entries)

    def dns(self) -> List[str]:
        return [str(entry.dn) for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return "SearchResult(%s, %d entries)" % (self.code, len(self.entries))


class DirectoryService:
    """One logical directory server."""

    def __init__(
        self,
        instance: DirectoryInstance,
        acl: Optional[AccessControlList] = None,
        credential_attribute: str = "userPassword",
        page_size: int = 16,
        buffer_pages: int = 8,
    ):
        self.directory = UpdatableDirectory.from_instance(
            instance, page_size=page_size, buffer_pages=buffer_pages
        )
        #: Default-open when no ACL is supplied.
        self.acl = acl or AccessControlList(default_allow=True)
        self.credential_attribute = credential_attribute
        self._bound_subject: Optional[str] = None
        self._engine: Optional[QueryEngine] = None
        self._engine_generation = -1

    # -- connection state --------------------------------------------------

    def bind(self, subject_dn: Union[DN, str], credential: str) -> str:
        """Simple bind: compare the credential against the subject entry's
        credential attribute.  Returns a result code; on success the
        connection is bound to the subject (its dn string)."""
        if isinstance(subject_dn, str):
            subject_dn = DN.parse(subject_dn)
        entry = self.directory.lookup(subject_dn)
        if entry is None:
            return ResultCode.NO_SUCH_OBJECT
        stored = [str(v) for v in entry.values(self.credential_attribute)]
        if credential not in stored:
            return ResultCode.INVALID_CREDENTIALS
        self._bound_subject = str(subject_dn)
        return ResultCode.SUCCESS

    def bind_anonymous(self) -> str:
        self._bound_subject = None
        return ResultCode.SUCCESS

    @property
    def bound_subject(self) -> Optional[str]:
        return self._bound_subject

    # -- read operations -----------------------------------------------------

    def _engine_now(self) -> QueryEngine:
        generation = self.directory.compactions
        if self.directory.pending():
            self.directory.compact()
            generation = self.directory.compactions
        if self._engine is None or generation != self._engine_generation:
            self._engine = QueryEngine(self.directory.store)
            self._engine_generation = generation
        return self._engine

    def _visible(self, entries: Iterable[Entry]) -> List[Entry]:
        subject = self._bound_subject
        return [e for e in entries if self.acl.readable(subject, e.dn)]

    def search(
        self,
        query: Union[str, Query, QueryBuilder],
        size_limit: Optional[int] = None,
        attributes: Optional[List[str]] = None,
        strict: bool = False,
    ) -> SearchResult:
        """Evaluate a query; results filtered by the bound subject's
        visibility, optionally size-limited and projected to the named
        attributes.  With ``strict`` the query is type-checked against the
        schema first (protocolError on violation)."""
        if isinstance(query, QueryBuilder):
            query = query.build()
        if isinstance(query, str):
            query = parse_query(query)
        if strict:
            from ..query.typecheck import validate_query

            problems = validate_query(query, self.directory.schema)
            if problems:
                return SearchResult(ResultCode.PROTOCOL_ERROR, [], total_size=0)
        engine = self._engine_now()
        if size_limit is None:
            result = engine.run(query)
            visible = self._visible(result.entries)
            code = ResultCode.SUCCESS
            total = len(visible)
        else:
            limited = run_limited(engine, query, size_limit)
            visible = self._visible(limited.entries)
            code = (
                ResultCode.SIZE_LIMIT_EXCEEDED
                if limited.truncated
                else ResultCode.SUCCESS
            )
            total = limited.total_size
        if attributes:
            from ..model.projection import project

            visible = project(visible, attributes)
        return SearchResult(code, visible, total_size=total)

    def search_paged(
        self, query: Union[str, Query, QueryBuilder], page_entries: int
    ) -> Iterable[List[Entry]]:
        """Paged retrieval (each page already visibility-filtered)."""
        if isinstance(query, QueryBuilder):
            query = query.build()
        cursor = PagedSearch(self._engine_now(), query, page_entries)
        for page in cursor:
            yield self._visible(page)

    def compare(self, dn: Union[DN, str], attribute: str, value: Any) -> str:
        """LDAP compare: does the entry hold (attribute, value)?"""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        if not self.acl.readable(self._bound_subject, dn):
            return ResultCode.INSUFFICIENT_ACCESS
        self._engine_now()  # fold in pending updates first
        entry = self.directory.lookup(dn)
        if entry is None:
            return ResultCode.NO_SUCH_OBJECT
        if any(str(v) == str(value) for v in entry.values(attribute)):
            return ResultCode.COMPARE_TRUE
        return ResultCode.COMPARE_FALSE

    # -- write operations -----------------------------------------------------

    def add(self, dn, classes, attributes=None, **kw) -> str:
        try:
            self.directory.add(dn, classes, attributes, **kw)
        except UpdateError:
            return ResultCode.ENTRY_ALREADY_EXISTS
        return ResultCode.SUCCESS

    def delete(self, dn, recursive: bool = False) -> str:
        try:
            self.directory.delete(dn, recursive=recursive)
        except UpdateError as exc:
            if "children" in str(exc):
                return ResultCode.UNWILLING_TO_PERFORM
            return ResultCode.NO_SUCH_OBJECT
        return ResultCode.SUCCESS

    def modify(self, dn, replace=None, add_values=None, remove_values=None) -> str:
        try:
            self.directory.modify(
                dn, replace=replace, add_values=add_values, remove_values=remove_values
            )
        except UpdateError as exc:
            if "protected" in str(exc):
                return ResultCode.UNWILLING_TO_PERFORM
            return ResultCode.NO_SUCH_OBJECT
        return ResultCode.SUCCESS

    def __repr__(self) -> str:
        return "DirectoryService(%r, bound=%r)" % (
            self.directory,
            self._bound_subject,
        )
