"""The directory service: the integration layer a deployment would run.

Everything the repository builds, behind one LDAP-shaped interface:

- **bind** -- associate a connection with a subject (authentication is a
  lookup of the subject's ``userPassword``-style credential attribute, or
  anonymous);
- **search** -- any L0--L3 query (the paper's syntax, a builder object or
  an AST), honouring access control, a size limit and paged retrieval;
- **compare** -- LDAP's attribute-value assertion on one entry;
- **add / delete / modify** -- mutations through the differential update
  log (compaction is automatic before the next search);
- result codes in the style of LDAP (success, noSuchObject,
  sizeLimitExceeded, insufficientAccessRights, ...).

The service owns an :class:`~repro.storage.maintenance.UpdatableDirectory`
and rebuilds its engine view only when updates intervened, so repeated
searches keep their I/O bounds.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple, Union

import threading
import time

from ..cache import (
    IncrementalCacheMaintainer,
    QueryCache,
    UpdateLogInvalidator,
    fingerprint,
    query_footprint,
)
from ..engine.engine import QueryEngine
from ..engine.optimizer import PlannedEngine
from ..engine.stats import LiveDirectoryStatistics
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..obs.alerts import AlertEngine, AlertRule, default_rules
from ..obs.budget import BudgetExceeded
from ..obs.digest import QueryDigestTable
from ..obs.heatmap import SubtreeHeatMap
from ..obs.history import MetricHistory
from ..obs.httpd import AdminServer
from ..obs.log import NULL_LOGGER
from ..obs.metrics import get_registry
from ..obs.slowlog import SlowQueryLog
from ..obs.trace import NULL_TRACER
from ..query.ast import Query
from ..query.builder import QueryBuilder
from ..query.parser import parse_query
from ..security import AccessControlList
from ..storage.maintenance import StoreView, UpdatableDirectory, UpdateError
from ..txn.agent import MaintenanceAgent
from ..txn.durable import DurableDirectory

__all__ = ["DirectoryService", "ResultCode", "SearchResult", "ServiceError"]


class ResultCode:
    """LDAP-style result codes."""

    SUCCESS = "success"
    NO_SUCH_OBJECT = "noSuchObject"
    SIZE_LIMIT_EXCEEDED = "sizeLimitExceeded"
    INSUFFICIENT_ACCESS = "insufficientAccessRights"
    INVALID_CREDENTIALS = "invalidCredentials"
    ENTRY_ALREADY_EXISTS = "entryAlreadyExists"
    UNWILLING_TO_PERFORM = "unwillingToPerform"
    COMPARE_TRUE = "compareTrue"
    COMPARE_FALSE = "compareFalse"
    PROTOCOL_ERROR = "protocolError"
    #: A query cancelled by its resource budget (LDAP's code for a
    #: server-imposed administrative limit).
    ADMIN_LIMIT_EXCEEDED = "adminLimitExceeded"


class ServiceError(RuntimeError):
    """Raised for protocol misuse (e.g. operations before bind when the
    service requires authentication)."""


class SearchResult:
    """One search's outcome: entries plus a result code.

    ``total_size`` counts the entries *visible to the bound subject*
    before any size limit -- the post-ACL semantics, applied uniformly to
    the limited and unlimited paths.  ``cached``/``saved_io`` report
    whether the semantic query cache served the search and how much
    logical page I/O that avoided.  ``warnings`` carries degradation
    notes when the service fronts a federation (stale sublists, replica
    failovers, missing servers); an empty list is a clean answer.
    ``budget_error`` holds the structured
    :class:`~repro.obs.budget.BudgetExceeded` when the search was
    cancelled by its resource budget (code ``adminLimitExceeded``).
    """

    def __init__(
        self,
        code: str,
        entries: List[Entry],
        total_size: Optional[int] = None,
        cached: bool = False,
        saved_io: int = 0,
        warnings: Optional[List[str]] = None,
        budget_error: Optional[BudgetExceeded] = None,
    ):
        self.code = code
        self.entries = entries
        self.total_size = total_size if total_size is not None else len(entries)
        self.cached = cached
        self.saved_io = saved_io
        self.warnings = list(warnings or [])
        self.budget_error = budget_error

    def dns(self) -> List[str]:
        return [str(entry.dn) for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return "SearchResult(%s, %d entries)" % (self.code, len(self.entries))


class _Evaluation:
    """One query's pre-ACL evaluation outcome, as :meth:`_result_entries`
    hands it to :meth:`search`: the entries plus how they were served --
    ``via`` is one of ``engine`` / ``cache`` / ``superset`` /
    ``federation``, and ``key`` the normal-form fingerprint when one was
    computed on the way (the digest table reuses it instead of hashing
    the query a second time)."""

    __slots__ = ("entries", "cached", "cost", "warnings", "retries", "qerror",
                 "via", "key")

    def __init__(self, entries, cached, cost, warnings, retries, qerror,
                 via, key):
        self.entries = entries
        self.cached = cached
        self.cost = cost
        self.warnings = warnings
        self.retries = retries
        self.qerror = qerror
        self.via = via
        self.key = key


class DirectoryService:
    """One logical directory server."""

    def __init__(
        self,
        instance: Optional[DirectoryInstance],
        acl: Optional[AccessControlList] = None,
        credential_attribute: str = "userPassword",
        page_size: int = 16,
        buffer_pages: int = 8,
        cache_bytes: int = 512 * 1024,
        tracer=None,
        metrics=None,
        slow_query_seconds: Optional[float] = None,
        slow_log_capacity: int = 64,
        log=None,
        budget=None,
        trace_sampler=None,
        durable_dir: Optional[str] = None,
        cache_maintenance: str = "evict",
        wal_fsync: bool = False,
        planner: str = "cost",
        digest_capacity: int = 256,
        heatmap_depth: int = 2,
        heatmap_half_life_s: float = 300.0,
    ):
        #: Span tracer for per-search phase timing and I/O attribution
        #: (disabled -- and free -- by default).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: The metrics registry this service reports into (the process-wide
        #: default unless an isolated one is supplied).
        self.metrics = metrics if metrics is not None else get_registry()
        #: Structured event logger (see :mod:`repro.obs.log`); the no-op
        #: default writes nothing and costs one attribute read per guard.
        self.log = log if log is not None else NULL_LOGGER
        #: Service-wide default :class:`~repro.obs.budget.QueryBudget`
        #: applied to every search (per-call budgets override it); None
        #: means unlimited.
        self.budget = budget
        #: Optional :class:`~repro.obs.trace.TraceSampler` retaining the
        #: interesting tail (slow / degraded / budget-breached searches)
        #: for the admin endpoint's ``/traces``.
        self.sampler = trace_sampler
        #: Searches slower than ``slow_query_seconds`` land here (None
        #: disables the log).
        self.slow_queries = SlowQueryLog(slow_query_seconds, slow_log_capacity)
        if durable_dir is not None:
            #: Checkpoint + WAL on disk: every acknowledged mutation
            #: survives a crash; recovery replays on open.
            self.directory: UpdatableDirectory = DurableDirectory.open(
                durable_dir,
                instance,
                page_size=page_size,
                buffer_pages=buffer_pages,
                fsync=wal_fsync,
                metrics=self.metrics,
                log=self.log,
            )
        else:
            if instance is None:
                raise ValueError("instance is required without a durable_dir")
            self.directory = UpdatableDirectory.from_instance(
                instance,
                page_size=page_size,
                buffer_pages=buffer_pages,
                metrics=self.metrics,
                log=self.log,
            )
        self._m_search_seconds = self.metrics.histogram(
            "repro_search_seconds", "Search latency, end to end"
        )
        self._m_result_entries = self.metrics.histogram(
            "repro_search_result_entries",
            "Visible result size per search",
            buckets=(0, 1, 10, 100, 1_000, 10_000, 100_000),
        )
        self._m_searches = self.metrics.counter(
            "repro_searches_total", "Searches served", labelnames=("code",)
        )
        self._m_cache_lookups = self.metrics.counter(
            "repro_cache_lookups_total",
            "Semantic-cache lookups",
            labelnames=("outcome",),
        )
        self._m_slow = self.metrics.counter(
            "repro_slow_queries_total", "Searches over the slow-query threshold"
        )
        self._m_buffer_hit_rate = self.metrics.gauge(
            "repro_buffer_hit_rate",
            "Buffer-pool hit rate of the storage pager (lifetime)",
        )
        self._m_search_io = self.metrics.histogram(
            "repro_search_logical_io",
            "Logical page I/O per uncached search",
            buckets=(1, 10, 100, 1_000, 10_000, 100_000),
        )
        self._m_degraded = self.metrics.counter(
            "repro_degraded_searches_total",
            "Searches answered with degradation warnings",
        )
        self._m_budget_exceeded = self.metrics.counter(
            "repro_budget_exceeded_total",
            "Searches cancelled by a resource budget",
            labelnames=("resource",),
        )
        if planner not in ("cost", "none"):
            raise ValueError("planner must be 'cost' or 'none'")
        #: ``"cost"`` (default) serves searches through the
        #: :class:`~repro.engine.optimizer.PlannedEngine` -- rewrites,
        #: cost-ordered operands, live statistics, per-run Q-error --
        #: while ``"none"`` keeps the paper-literal
        #: :class:`~repro.engine.engine.QueryEngine`.
        self.planner = planner
        #: Statistics that track the directory through its record and
        #: compaction listeners (only maintained when planning).
        self._live_stats: Optional[LiveDirectoryStatistics] = (
            LiveDirectoryStatistics(self.directory, metrics=self.metrics)
            if planner == "cost"
            else None
        )
        #: Default-open when no ACL is supplied.
        self.acl = acl or AccessControlList(default_allow=True)
        self.credential_attribute = credential_attribute
        self._bound_subject: Optional[str] = None
        self._engine: Optional[QueryEngine] = None
        #: The pinned (store, snapshot) view the current engine reads --
        #: compaction cannot free its master run from under it.
        self._engine_view: Optional[StoreView] = None
        self._engine_lock = threading.Lock()
        self._maintenance: Optional[MaintenanceAgent] = None
        #: Semantic query cache over *pre-ACL* results; visibility is
        #: re-filtered per bound subject on every hit.  ``cache_bytes=0``
        #: disables caching.
        self.cache: Optional[QueryCache] = (
            QueryCache(byte_budget=cache_bytes, log=self.log) if cache_bytes else None
        )
        if cache_maintenance not in ("evict", "incremental"):
            raise ValueError(
                "cache_maintenance must be 'evict' or 'incremental'"
            )
        self.cache_maintenance = cache_maintenance
        self._invalidator = None
        if self.cache is not None:
            if cache_maintenance == "incremental":
                self._invalidator = IncrementalCacheMaintainer(
                    self.directory, self.cache, metrics=self.metrics
                )
            else:
                self._invalidator = UpdateLogInvalidator(self.directory, self.cache)
        #: (federation, coordinator name) once :meth:`attach_federation`
        #: makes this service a federation frontend.
        self._federation: Optional[Tuple[Any, str]] = None
        #: (replicated context, lag alert threshold) once
        #: :meth:`attach_replication` puts this service in front of a
        #: replication group.
        self._replication: Optional[Tuple[Any, int]] = None
        #: Per-query-shape workload digest (pg_stat_statements style),
        #: populated by every finished search; ``digest_capacity=0``
        #: disables it.
        self.digest: Optional[QueryDigestTable] = (
            QueryDigestTable(capacity=digest_capacity) if digest_capacity else None
        )
        #: EWMA-decayed load over reversed-DN subtree prefixes, fed from
        #: engine atomic leaves (reads + pages) and committed mutations
        #: (writes); ``heatmap_depth=0`` disables it.  A federation
        #: attached via :meth:`attach_federation` feeds its shipped-entry
        #: counts in as well when constructed with the same map.
        self.heatmap: Optional[SubtreeHeatMap] = (
            SubtreeHeatMap(depth=heatmap_depth, half_life_s=heatmap_half_life_s)
            if heatmap_depth
            else None
        )
        self._heat_listener = None
        if self.heatmap is not None:
            heat = self.heatmap
            self._heat_listener = lambda record: heat.record_write(record.dn)
            self.directory.add_record_listener(self._heat_listener)
        #: Metric history ring (:meth:`enable_workload_history`) and the
        #: alert engine over it (:meth:`attach_alerts`).
        self.history: Optional[MetricHistory] = None
        self.alerts: Optional[AlertEngine] = None
        self._history_interval_s = 1.0

    # -- federation frontend ------------------------------------------------

    def attach_federation(self, federation, at: str) -> None:
        """Serve searches from a federation, issued at server ``at``.

        The service becomes the deployment's frontend: reads evaluate
        distributedly (through the federation's leaf cache, retries and
        degradation ladder) while binds, compares and mutations keep using
        the locally held directory.  Degradation warnings surface on every
        :class:`SearchResult` and in the slow-query log, and degraded
        searches are counted in ``repro_degraded_searches_total``.
        """
        if at not in federation.servers:
            raise KeyError(at)
        self._federation = (federation, at)
        if federation.heatmap is None and self.heatmap is not None:
            # The frontend's heat map doubles as the federation's: remote
            # shipping lands in the same per-subtree cells as local reads.
            federation.heatmap = self.heatmap

    def attach_replication(self, replicated, lag_alert: int = 8) -> None:
        """Surface a :class:`~repro.dist.replication.ReplicatedContext`
        through this service's admin plane: ``/healthz`` carries the
        group's epoch and per-replica acked lsn / lag, and the service
        reports ``status: degraded`` while any replica lags more than
        ``lag_alert`` records behind the primary (or needs a resync)."""
        if lag_alert < 0:
            raise ValueError("lag_alert must be non-negative")
        self._replication = (replicated, lag_alert)

    # -- connection state --------------------------------------------------

    def bind(self, subject_dn: Union[DN, str], credential: str) -> str:
        """Simple bind: compare the credential against the subject entry's
        credential attribute.  Returns a result code; on success the
        connection is bound to the subject (its dn string)."""
        if isinstance(subject_dn, str):
            subject_dn = DN.parse(subject_dn)
        entry = self.directory.lookup(subject_dn)
        if entry is None:
            return ResultCode.NO_SUCH_OBJECT
        stored = [str(v) for v in entry.values(self.credential_attribute)]
        if credential not in stored:
            return ResultCode.INVALID_CREDENTIALS
        self._bound_subject = str(subject_dn)
        return ResultCode.SUCCESS

    def bind_anonymous(self) -> str:
        self._bound_subject = None
        return ResultCode.SUCCESS

    @property
    def bound_subject(self) -> Optional[str]:
        return self._bound_subject

    # -- read operations -----------------------------------------------------

    def _engine_now(self) -> QueryEngine:
        engine, guard = self._pinned_engine()
        guard.close()
        return engine

    def _pinned_engine(self) -> Tuple[QueryEngine, StoreView]:
        """The current engine plus a *caller-owned* pin on its store.
        The shared ``self._engine_view`` pin is not enough for a reader:
        a concurrent writer can compact, swap the engine and close that
        view mid-evaluation, freeing the run's pages under the scan.
        Close the returned guard when the evaluation is done."""
        pending = self.directory.pending()
        if pending:
            with self.tracer.span("compact", pending=pending):
                self.directory.compact()
        with self._engine_lock:
            view = self.directory.acquire_view()
            if (
                self._engine is not None
                and self._engine_view is not None
                and self._engine_view.store is view.store
            ):
                # `view` already pins the engine's store: hand it to the
                # caller as its guard.
                return self._engine, view
            stale = self._engine_view
            self._engine_view = view
            if self.planner == "cost":
                self._engine = PlannedEngine(
                    view.store,
                    stats=self._live_stats,
                    tracer=self.tracer,
                    log=self.log,
                    metrics=self.metrics,
                    heatmap=self.heatmap,
                )
            else:
                self._engine = QueryEngine(
                    view.store, tracer=self.tracer, log=self.log,
                    heatmap=self.heatmap,
                )
            if stale is not None:
                stale.close()
            return self._engine, view.clone()

    @property
    def cache_stats(self):
        """Hit/miss/eviction/invalidation counters and saved I/O of the
        semantic cache (None when caching is disabled)."""
        return self.cache.stats if self.cache is not None else None

    def _visible(self, entries: Iterable[Entry]) -> List[Entry]:
        subject = self._bound_subject
        return [e for e in entries if self.acl.readable(subject, e.dn)]

    def _as_query(self, query: Union[str, Query, QueryBuilder]) -> Query:
        if isinstance(query, QueryBuilder):
            query = query.build()
        if isinstance(query, str):
            query = parse_query(query)
        return query

    def _result_entries(self, query: Query, budget=None) -> _Evaluation:
        """The query's full pre-ACL result, served from the semantic cache
        when possible.  Returns an :class:`_Evaluation`: the entries, was
        it a cache hit, the logical page I/O the evaluation cost / a hit
        saved, degradation warnings, remote retries, the planner Q-error,
        plus how the result was served (``via``) and the normal-form
        fingerprint when one was computed (``key``).  The Q-error is None
        whenever no plan executed (cache hits, federation,
        ``planner="none"``).  ``budget`` caps the evaluation; a breach
        propagates as :class:`~repro.obs.budget.BudgetExceeded` (cache
        hits are never charged -- a served result costs no page I/O)."""
        if self._federation is not None:
            # Federation frontend: the distributed evaluation brings its
            # own leaf cache, retries and degradation ladder; the local
            # semantic cache is bypassed (its invalidation only sees local
            # updates, not remote ones).
            federation, at = self._federation
            fed_result = federation.query(at, query, budget=budget)
            cost = fed_result.io.logical_reads + fed_result.io.logical_writes
            self._m_search_io.observe(cost)
            return _Evaluation(
                fed_result.entries,
                False,
                cost,
                list(fed_result.warnings),
                fed_result.retries,
                None,
                "federation",
                None,
            )
        key = None
        if self.cache is not None:
            # As-written lookup first: a hit skips compaction and planning
            # entirely (a served result costs nothing).
            with self.tracer.span("cache-lookup") as span:
                key = fingerprint(query)
                hit = self.cache.get(key)
                span.set(hit=hit is not None)
            if hit is not None:
                self._m_cache_lookups.inc(outcome="hit")
                return _Evaluation(
                    list(hit.entries), True, hit.cost_io, [], 0, None,
                    "cache", key,
                )
            self._m_cache_lookups.inc(outcome="miss")
        # Captured before the engine's snapshot is pinned: a write that
        # lands after this point bumps the epoch, and the put below is
        # rejected rather than admitting a result that may predate it.
        epoch = self.cache.invalidation_epoch if self.cache is not None else None
        engine, guard = self._pinned_engine()
        try:
            if isinstance(engine, PlannedEngine):
                with self.tracer.span("plan") as span:
                    planned, rewrites = engine.plan(query)
                    span.set(rewrites=len(rewrites))
                if self.cache is not None:
                    if rewrites:
                        # The plan may have a different fingerprint than the
                        # as-written form (rewrites change shape; pure
                        # reorderings don't -- fingerprints normalise operand
                        # order), so a second resident can answer.
                        planned_key = fingerprint(planned)
                        if planned_key != key:
                            key = planned_key
                            hit = self.cache.get(key)
                            if hit is not None:
                                self._m_cache_lookups.inc(outcome="hit")
                                return _Evaluation(
                                    list(hit.entries), True, hit.cost_io,
                                    [], 0, None, "cache", key,
                                )
                            self._m_cache_lookups.inc(outcome="miss")
                    superset = self._from_superset(planned)
                    if superset is not None:
                        entries, saved = superset
                        return _Evaluation(
                            entries, True, saved, [], 0, None, "superset", key
                        )
                engine.last_rewrites = rewrites
                result = engine.run_planned(planned, budget=budget)
                qerror = engine.last_qerror
                query = planned
            else:
                result = engine.run(query, budget=budget)
                qerror = None
        finally:
            guard.close()
        cost = result.io.logical_reads + result.io.logical_writes
        self._m_search_io.observe(cost)
        if self.cache is not None:
            self.cache.put(
                key, str(query), result.entries, query_footprint(query), cost,
                query=query, if_epoch=epoch,
            )
        return _Evaluation(
            result.entries, False, cost, [], 0, qerror, "engine", key
        )

    def _from_superset(self, planned: Query) -> Optional[Tuple[List[Entry], int]]:
        """Cache-aware planning: serve an atomic sub-scoped plan from a
        resident whose subtree provably contains it, by restricting the
        resident's entries to the narrower base -- no page I/O at all.
        Returns (entries, saved logical I/O) or None."""
        from ..query.ast import AtomicQuery, Scope

        if not (isinstance(planned, AtomicQuery) and planned.scope == Scope.SUB):
            return None
        superset = self.cache.find_superset(planned.base, str(planned.filter))
        if superset is None:
            return None
        self._m_cache_lookups.inc(outcome="superset")
        entries = [
            entry for entry in superset.entries
            if planned.base.is_prefix_of(entry.dn)
        ]
        return entries, superset.cost_io

    def search(
        self,
        query: Union[str, Query, QueryBuilder],
        size_limit: Optional[int] = None,
        attributes: Optional[List[str]] = None,
        strict: bool = False,
        budget=None,
    ) -> SearchResult:
        """Evaluate a query; results filtered by the bound subject's
        visibility, optionally size-limited and projected to the named
        attributes.  With ``strict`` the query is type-checked against the
        schema first (protocolError on violation).

        ``total_size`` and the size-limit condition both use the *visible*
        (post-ACL) result: the limit truncates what the subject could see,
        and a denied entry never counts toward the total.

        ``budget`` (or the service-wide default) caps the evaluation's
        resources; a breached search comes back empty with code
        ``adminLimitExceeded`` and the structured error on
        :attr:`SearchResult.budget_error` -- it never raises."""
        if size_limit is not None and size_limit < 1:
            raise ValueError("size_limit must be positive")
        active_budget = budget if budget is not None else self.budget
        started = time.perf_counter()
        io_before = self.directory.store.pager.stats.snapshot()
        with self.tracer.span("search") as search_span:
            with self.tracer.span("parse"):
                query = self._as_query(query)
            if strict:
                from ..query.typecheck import validate_query

                with self.tracer.span("typecheck"):
                    problems = validate_query(query, self.directory.schema)
                if problems:
                    result = SearchResult(ResultCode.PROTOCOL_ERROR, [], total_size=0)
                    self._observe_search(
                        query, result, started, io_before, search_span=search_span
                    )
                    return result
            try:
                evaluation = self._result_entries(query, budget=active_budget)
                entries, cached, cost = (
                    evaluation.entries, evaluation.cached, evaluation.cost
                )
                warnings, retries, qerror = (
                    evaluation.warnings, evaluation.retries, evaluation.qerror
                )
            except BudgetExceeded as exc:
                exc.query_text = str(query)
                exc.trace_id = getattr(search_span, "trace_id", None)
                search_span.set(code=ResultCode.ADMIN_LIMIT_EXCEEDED)
                result = SearchResult(
                    ResultCode.ADMIN_LIMIT_EXCEEDED,
                    [],
                    total_size=0,
                    budget_error=exc,
                    warnings=["query cancelled: %s" % exc],
                )
                self._observe_search(
                    query, result, started, io_before, search_span=search_span
                )
                return result
            with self.tracer.span("acl-filter"):
                visible = self._visible(entries)
            total = len(visible)
            if size_limit is not None and total > size_limit:
                visible = visible[:size_limit]
                code = ResultCode.SIZE_LIMIT_EXCEEDED
            else:
                code = ResultCode.SUCCESS
            if attributes:
                from ..model.projection import project

                visible = project(visible, attributes)
            search_span.set(code=code, rows=total, cached=cached)
            result = SearchResult(
                code,
                visible,
                total_size=total,
                cached=cached,
                saved_io=cost if cached else 0,
                warnings=warnings,
            )
        self._observe_search(
            query, result, started, io_before, retries=retries,
            search_span=search_span, qerror=qerror, evaluation=evaluation,
        )
        return result

    def _observe_search(self, query, result: SearchResult, started: float,
                        io_before, retries: int = 0, search_span=None,
                        qerror: Optional[float] = None,
                        evaluation: Optional[_Evaluation] = None) -> None:
        """Fold one finished search into metrics, the slow-query log, the
        event log, the tail sampler, the workload digest and the metric
        history.  ``search_span`` (when tracing) supplies the trace id
        that joins them; ``evaluation`` (absent for protocol errors and
        budget breaches, which evaluated nothing) feeds the digest."""
        elapsed = time.perf_counter() - started
        pager_stats = self.directory.store.pager.stats
        io_delta = pager_stats.since(io_before)
        trace_id = getattr(search_span, "trace_id", None)
        budget_breach = result.budget_error is not None
        self._m_search_seconds.observe(elapsed)
        self._m_result_entries.observe(result.total_size)
        self._m_searches.inc(code=result.code)
        if result.warnings and not budget_breach:
            self._m_degraded.inc()
        if budget_breach:
            self._m_budget_exceeded.inc(resource=result.budget_error.resource)
        self._m_buffer_hit_rate.set(pager_stats.buffer_hit_rate)
        if self.digest is not None and evaluation is not None:
            digest_key = evaluation.key
            if digest_key is None:
                digest_key = fingerprint(query)
            self.digest.observe(
                digest_key,
                str(query),
                elapsed,
                pages=0 if evaluation.cached else evaluation.cost,
                entries=result.total_size,
                via=evaluation.via,
                qerror=qerror,
            )
        slow = self.slow_queries.record(
            str(query),
            elapsed,
            io_total=io_delta.logical_total,
            cached=result.cached,
            result_size=result.total_size,
            retries=retries,
            warnings=tuple(result.warnings),
            trace_id=trace_id,
            qerror=qerror,
        )
        if slow is not None:
            self._m_slow.inc()
        if self.log.enabled:
            self.log.info(
                "search",
                code=result.code,
                rows=result.total_size,
                elapsed_s=round(elapsed, 6),
                pages=io_delta.logical_total,
                cached=result.cached or None,
                retries=retries or None,
                warnings=len(result.warnings) or None,
                trace_id=trace_id,
            )
            if slow is not None:
                self.log.warning(
                    "slow_query",
                    query=str(query),
                    elapsed_s=round(elapsed, 6),
                    pages=io_delta.logical_total,
                    trace_id=trace_id,
                )
            if budget_breach:
                error = result.budget_error
                self.log.warning(
                    "budget_exceeded",
                    query=str(query),
                    trace_id=trace_id,
                    resource=error.resource,
                    limit=error.limit,
                    used=error.used,
                )
        if self.sampler is not None:
            reasons = []
            if slow is not None:
                reasons.append("slow")
            if result.warnings and not budget_breach:
                reasons.append("degraded")
            if budget_breach:
                reasons.append("budget")
            root = search_span if getattr(search_span, "trace_id", None) else None
            self.sampler.offer(
                root,
                elapsed,
                query_text=str(query),
                trace_id=trace_id,
                reasons=reasons,
            )
        if self.history is not None:
            # Opportunistic, rate-limited: history accrues on the search
            # path with no background thread; each new point re-evaluates
            # the alert rules so transitions track the workload.
            sample = self.history.maybe_sample(self._history_interval_s)
            if sample is not None and self.alerts is not None:
                self.alerts.evaluate()

    # -- workload observability ----------------------------------------------

    def enable_workload_history(
        self,
        capacity: int = 128,
        min_interval_s: float = 1.0,
        clock=None,
    ) -> MetricHistory:
        """Start (or return) the metric history ring.  Samples are taken
        opportunistically on the search path, at most one per
        ``min_interval_s``; ``clock`` injects a deterministic time source
        (tests, the ``repro alerts`` demo)."""
        if self.history is None:
            self.history = (
                MetricHistory(self.metrics, capacity=capacity, clock=clock)
                if clock is not None
                else MetricHistory(self.metrics, capacity=capacity)
            )
            self._history_interval_s = min_interval_s
        return self.history

    def attach_alerts(
        self, rules: Optional[List[AlertRule]] = None
    ) -> AlertEngine:
        """Put an alert engine over the metric history (started with
        defaults when absent).  ``rules`` defaults to
        :func:`~repro.obs.alerts.default_rules`; firing rules degrade
        ``/healthz`` and are logged as ``alert.firing`` /
        ``alert.resolved`` events."""
        if self.alerts is None:
            history = self.enable_workload_history()
            self.alerts = AlertEngine(
                history,
                rules if rules is not None else default_rules(),
                log=self.log,
                metrics=self.metrics,
            )
        return self.alerts

    def slow_query_summary(self) -> dict:
        """The slow-query log plus the latency quantiles that contextualise
        it (p50/p95/p99 interpolated from ``repro_search_seconds``) --
        what the CLI's ``metrics --slow-ms`` and ``/slowlog`` both show."""
        return {
            "threshold_s": self.slow_queries.threshold_seconds,
            "total": self.slow_queries.total,
            "retained": len(self.slow_queries),
            "latency_quantiles": self._m_search_seconds.quantiles(),
            "records": self.slow_queries.as_dicts(),
        }

    def serve_admin(self, host: str = "127.0.0.1", port: int = 0) -> AdminServer:
        """Start the HTTP admin endpoint for this service (daemon thread;
        ``port=0`` picks a free port).  Returns the started
        :class:`~repro.obs.httpd.AdminServer`; the caller stops it.

        The workload endpoints (``/digest``, ``/heatmap``, ``/history``,
        ``/alerts``) expose whatever is attached *at start time* -- call
        :meth:`enable_workload_history` / :meth:`attach_alerts` first if
        those panes should be live."""

        def health() -> dict:
            status = {
                "status": "ok",
                "entries": len(self.directory.store),
                "compactions": self.directory.compactions,
                "pending_updates": self.directory.pending(),
                "head_lsn": self.directory.head_lsn,
                "federated": self._federation is not None,
                "maintenance_agent": (
                    self._maintenance is not None and self._maintenance.running
                ),
            }
            if isinstance(self.directory, DurableDirectory):
                status["durability"] = self.directory.durability_status()
            if self._replication is not None:
                replicated, lag_alert = self._replication
                replication = replicated.replication_status()
                replication["lag_alert"] = lag_alert
                status["replication"] = replication
                if any(
                    r["lag"] > lag_alert or r["needs_resync"]
                    for r in replication["replicas"].values()
                ):
                    status["status"] = "degraded"
            if self.alerts is not None:
                firing = self.alerts.firing()
                status["alerts"] = {
                    "rules": len(self.alerts.rules),
                    "firing": [f["name"] for f in firing],
                }
                if firing:
                    status["status"] = "degraded"
            return status

        server = AdminServer(
            registry=self.metrics,
            slow_queries=self.slow_queries,
            sampler=self.sampler,
            health=health,
            host=host,
            port=port,
            log=self.log,
            digest=self.digest,
            heatmap=self.heatmap,
            history=self.history,
            alerts=self.alerts,
        )
        return server.start()

    def search_paged(
        self, query: Union[str, Query, QueryBuilder], page_entries: int
    ) -> Iterable[List[Entry]]:
        """Paged retrieval.  Accepts the same query forms as :meth:`search`
        (string, builder or AST); pages chunk the visibility-filtered
        result, so every page but the last is full."""
        if page_entries < 1:
            raise ValueError("page_entries must be positive")
        query = self._as_query(query)
        visible = self._visible(self._result_entries(query).entries)
        return (
            visible[start : start + page_entries]
            for start in range(0, len(visible), page_entries)
        )

    def compare(self, dn: Union[DN, str], attribute: str, value: Any) -> str:
        """LDAP compare: does the entry hold (attribute, value)?"""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        if not self.acl.readable(self._bound_subject, dn):
            return ResultCode.INSUFFICIENT_ACCESS
        self._engine_now()  # fold in pending updates first
        entry = self.directory.lookup(dn)
        if entry is None:
            return ResultCode.NO_SUCH_OBJECT
        if any(str(v) == str(value) for v in entry.values(attribute)):
            return ResultCode.COMPARE_TRUE
        return ResultCode.COMPARE_FALSE

    # -- write operations -----------------------------------------------------

    #: Structured :class:`UpdateError` codes -> protocol result codes.
    _UPDATE_CODES = {
        UpdateError.ALREADY_EXISTS: ResultCode.ENTRY_ALREADY_EXISTS,
        UpdateError.NO_SUCH_ENTRY: ResultCode.NO_SUCH_OBJECT,
        UpdateError.HAS_CHILDREN: ResultCode.UNWILLING_TO_PERFORM,
        UpdateError.PROTECTED_ATTRIBUTE: ResultCode.UNWILLING_TO_PERFORM,
    }

    def add(self, dn, classes, attributes=None, **kw) -> str:
        try:
            self.directory.add(dn, classes, attributes, **kw)
        except UpdateError as exc:
            return self._UPDATE_CODES.get(exc.code, ResultCode.UNWILLING_TO_PERFORM)
        return ResultCode.SUCCESS

    def delete(self, dn, recursive: bool = False) -> str:
        try:
            self.directory.delete(dn, recursive=recursive)
        except UpdateError as exc:
            return self._UPDATE_CODES.get(exc.code, ResultCode.UNWILLING_TO_PERFORM)
        return ResultCode.SUCCESS

    def modify(self, dn, replace=None, add_values=None, remove_values=None) -> str:
        try:
            self.directory.modify(
                dn, replace=replace, add_values=add_values, remove_values=remove_values
            )
        except UpdateError as exc:
            return self._UPDATE_CODES.get(exc.code, ResultCode.UNWILLING_TO_PERFORM)
        return ResultCode.SUCCESS

    # -- maintenance and lifecycle --------------------------------------------

    def start_maintenance(self) -> MaintenanceAgent:
        """Move compaction off the write path: start (or return) the
        background maintenance agent and route the directory's
        auto-compaction through it."""
        if self._maintenance is None:
            self._maintenance = MaintenanceAgent(
                metrics=self.metrics, log=self.log, tracer=self.tracer
            ).start()
            self.directory.attach_maintenance(self._maintenance)
        return self._maintenance

    def stop_maintenance(self, drain: bool = True) -> None:
        """Detach and stop the maintenance agent (compaction reverts to
        the synchronous fallback)."""
        if self._maintenance is not None:
            self.directory.detach_maintenance()
            self._maintenance.stop(drain=drain)
            self._maintenance = None

    def checkpoint(self) -> Optional[int]:
        """Checkpoint a durable directory (fold + LDIF dump + WAL
        truncation); returns the checkpoint lsn, or None when the service
        is not durable."""
        if isinstance(self.directory, DurableDirectory):
            return self.directory.checkpoint()
        return None

    def close(self) -> None:
        """Release the engine's pinned view, stop maintenance, and close
        the WAL (for a durable directory)."""
        self.stop_maintenance()
        if self._heat_listener is not None:
            self.directory.remove_record_listener(self._heat_listener)
            self._heat_listener = None
        if self._live_stats is not None:
            self._live_stats.detach()
            self._live_stats = None
        with self._engine_lock:
            if self._engine_view is not None:
                self._engine_view.close()
                self._engine_view = None
            self._engine = None
        if isinstance(self.directory, DurableDirectory):
            self.directory.close()

    def __repr__(self) -> str:
        return "DirectoryService(%r, bound=%r)" % (
            self.directory,
            self._bound_subject,
        )
