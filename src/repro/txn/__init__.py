"""The transaction/durability subsystem: WAL, MVCC overlay, maintenance.

Three cooperating layers behind the directory's write path:

- :mod:`repro.txn.wal` -- an append-only, checksummed change log with
  group commit and seeded crash points; recovery replays it
  deterministically;
- :mod:`repro.txn.mvcc` -- copy-on-write versioning of the pending-update
  overlay, so readers hold immutable snapshots at their start lsn while
  writers land new versions;
- :mod:`repro.txn.agent` -- the background maintenance agent that retires
  superseded versions (compaction) off the writers' critical path.

:class:`~repro.txn.durable.DurableDirectory` ties them together:
checkpoint + WAL on disk, version chain in memory, every acknowledged
commit recoverable after a crash.
"""

from .agent import MaintenanceAgent
from .mvcc import Snapshot, Version, VersionChain
from .records import ChangeRecord, RecordError
from .wal import (
    CrashPlan,
    SimulatedCrash,
    WalError,
    WalScanReport,
    WriteAheadLog,
    scan_wal,
    scan_wal_report,
)


def __getattr__(name):
    # DurableDirectory sits above storage.maintenance, which itself builds
    # on txn.mvcc/txn.records -- resolve it lazily so importing either
    # package first works.
    if name == "DurableDirectory":
        from .durable import DurableDirectory

        return DurableDirectory
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "ChangeRecord",
    "CrashPlan",
    "DurableDirectory",
    "MaintenanceAgent",
    "RecordError",
    "SimulatedCrash",
    "Snapshot",
    "Version",
    "VersionChain",
    "WalError",
    "WalScanReport",
    "WriteAheadLog",
    "scan_wal",
    "scan_wal_report",
]
