"""The background maintenance agent: a request queue with one worker.

Compaction folds the pending overlay into a fresh master run -- useful
work, but the seed ran it *synchronously inside the unlucky writer's
update*, so one add in a thousand paid the whole merge.  Here maintenance
is requested, not performed: callers :meth:`~MaintenanceAgent.submit`
named requests onto a queue and a single daemon thread drains it, in the
request-queue style of agent frameworks (one agent, one queue, one
execution loop; requests are idempotent descriptions of work, not
closures over caller state).

Properties the write path relies on:

- **dedup**: a request kind marked ``dedupe`` is dropped while an equal
  kind is already queued or executing -- a burst of writers asks for one
  compaction, not a hundred;
- **isolation**: a failing request is counted and logged, never re-raised
  into the writer that happened to submit it;
- **drainability**: :meth:`drain` blocks until the queue is empty and the
  worker is idle, so tests (and checkpoints) can force quiescence.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional

from ..obs.log import NULL_LOGGER
from ..obs.metrics import get_registry
from ..obs.trace import NULL_TRACER

__all__ = ["MaintenanceAgent"]


class _Request:
    __slots__ = ("kind", "action", "context")

    def __init__(self, kind: str, action: Callable[[], None], context=None):
        self.kind = kind
        self.action = action
        #: The submitter's trace context (:meth:`Tracer.context`), adopted
        #: by the worker so background spans join the foreground trace.
        self.context = context


class MaintenanceAgent:
    """One worker thread executing named maintenance requests in order."""

    def __init__(self, metrics=None, log=None, tracer=None):
        #: Span tracer.  Each executed request runs under a
        #: ``maintenance.<kind>`` span that adopts the *submitter's* trace
        #: context, so an agent-triggered compaction carries the same
        #: trace id as the write that requested it.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._queue: "queue.Queue[Optional[_Request]]" = queue.Queue()
        self._lock = threading.Lock()
        #: Kinds queued-or-running with dedupe, to absorb request bursts.
        self._inflight: set = set()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self.log = log if log is not None else NULL_LOGGER
        #: Requests whose action raised (counted, logged, not re-raised).
        self.failures = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_requests = registry.counter(
            "repro_maintenance_requests_total",
            "Maintenance requests accepted by the agent",
            labelnames=("kind",),
        )
        self._m_deduped = registry.counter(
            "repro_maintenance_deduped_total",
            "Maintenance requests dropped because an equal one was pending",
            labelnames=("kind",),
        )
        self._m_failures = registry.counter(
            "repro_maintenance_failures_total",
            "Maintenance requests whose action raised",
            labelnames=("kind",),
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MaintenanceAgent":
        with self._lock:
            if self._running:
                return self
            self._running = True
        self._thread = threading.Thread(
            target=self._run, name="repro-maintenance", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) finish queued work
        first, otherwise abandon it."""
        with self._lock:
            if not self._running:
                return
            self._running = False
        if drain:
            self._queue.join()
        self._queue.put(None)  # wake the worker so it sees _running=False
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def running(self) -> bool:
        return self._running

    # -- the request queue ---------------------------------------------------

    def submit(
        self, kind: str, action: Callable[[], None], dedupe: bool = False
    ) -> bool:
        """Queue one request; returns False if it was deduplicated away or
        the agent is stopped (callers then fall back to doing the work
        synchronously)."""
        with self._lock:
            if not self._running:
                return False
            if dedupe:
                if kind in self._inflight:
                    self._m_deduped.inc(kind=kind)
                    return False
                self._inflight.add(kind)
        self._m_requests.inc(kind=kind)
        self._queue.put(_Request(kind, action, context=self.tracer.context()))
        return True

    def drain(self) -> None:
        """Block until every accepted request has finished executing."""
        self._queue.join()

    def _run(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                self._queue.task_done()
                if not self._running:
                    return
                continue
            token = self.tracer.adopt(request.context)
            try:
                with self.tracer.span("maintenance.%s" % request.kind,
                                      kind=request.kind):
                    request.action()
            except Exception as exc:  # noqa: BLE001 - isolation by design
                self.failures += 1
                self._m_failures.inc(kind=request.kind)
                self.log.warning(
                    "maintenance.failed", kind=request.kind, error=str(exc)
                )
            finally:
                self.tracer.release(token)
                with self._lock:
                    self._inflight.discard(request.kind)
                self._queue.task_done()

    def __repr__(self) -> str:
        return "MaintenanceAgent(running=%r, failures=%d)" % (
            self._running,
            self.failures,
        )
