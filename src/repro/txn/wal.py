"""The write-ahead log: append-only, checksummed, group-committed.

Frame format, per record::

    [4-byte big-endian payload length][4-byte CRC32 of payload][payload]

The payload is the JSON encoding of a
:class:`~repro.txn.records.ChangeRecord` (which carries its own lsn, so
the log is self-describing and lsn numbering survives checkpoints).

**Group commit.**  :meth:`WriteAheadLog.append` only buffers the encoded
record in memory (under the log lock, so buffer order equals lsn order);
:meth:`WriteAheadLog.sync` makes everything up to an lsn durable.  The
first syncing thread becomes the *flush leader*: it takes the whole
buffer, writes and fsyncs it as one batch, then wakes the waiters.
Writers that append while a flush is in flight pile up behind the barrier
and are flushed together by the next leader -- n concurrent committers
cost far fewer than n fsyncs, which is the entire point.

**Crash points.**  A seeded :class:`CrashPlan` -- in the spirit of
:class:`~repro.dist.faults.FaultPlan` -- kills the process mid-flush:
at the scheduled flush the leader writes only a prefix of the batch
(``torn_bytes``) and raises :class:`SimulatedCrash`; every thread waiting
on that flush barrier gets the same crash (their commit was never
acknowledged).  The log object is dead afterwards, exactly like the
process it simulates.

**Recovery.**  :func:`scan_wal` replays the frames sequentially and stops
at the first incomplete or corrupt one -- a torn tail is *expected* after
a crash (the batch was cut mid-record) and is physically truncated on
:meth:`WriteAheadLog.open_existing`, so the next append cannot splice
onto garbage.  Every record before the tear is intact (CRC-checked), so
recovery is deterministic: same file, same records, same state.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from typing import List, Optional, Tuple

from ..obs.metrics import get_registry
from .records import ChangeRecord, RecordError

__all__ = [
    "CrashPlan",
    "SimulatedCrash",
    "WalError",
    "WalScanReport",
    "WriteAheadLog",
    "scan_wal",
    "scan_wal_report",
]

_HEADER = struct.Struct(">II")


class WalScanReport:
    """What a full scan of one log file found.

    ``records`` are the intact, CRC-checked records before the first bad
    frame; ``valid_bytes`` is where the intact prefix ends.  When ``torn``
    is True, ``garbage_bytes`` counts the bytes past the prefix and
    ``lost_records`` is a structural estimate of the whole frames among
    them (walking the length headers without trusting their payloads) --
    a torn *tail* loses at most the crashed batch, while mid-file
    corruption can orphan every record behind the bad frame.
    """

    __slots__ = ("records", "valid_bytes", "torn", "garbage_bytes", "lost_records")

    def __init__(self, records, valid_bytes, torn, garbage_bytes, lost_records):
        self.records = records
        self.valid_bytes = valid_bytes
        self.torn = torn
        self.garbage_bytes = garbage_bytes
        self.lost_records = lost_records

    def __repr__(self) -> str:
        return (
            "WalScanReport(records=%d, valid_bytes=%d, torn=%r, "
            "garbage_bytes=%d, lost_records=%d)"
            % (
                len(self.records),
                self.valid_bytes,
                self.torn,
                self.garbage_bytes,
                self.lost_records,
            )
        )


class WalError(RuntimeError):
    """Raised for invalid WAL usage (append after crash, bad lsn order)."""


class SimulatedCrash(RuntimeError):
    """The scheduled crash point fired: the 'process' died mid-flush.

    Raised from every commit waiting on the crashed flush barrier -- none
    of those commits was acknowledged, so recovery owes them nothing.
    """


class CrashPlan:
    """A deterministic crash schedule for the WAL.

    ``crash_at_flush`` kills the k-th physical flush (0-based, counted
    over the log's lifetime); ``torn_bytes`` is how many bytes of that
    batch reach the file before the crash -- sweeping it across a batch
    produces every torn-record shape recovery must survive (nothing,
    a cut header, a cut payload, whole records plus a stub).
    """

    def __init__(self, crash_at_flush: Optional[int] = None, torn_bytes: int = 0):
        if torn_bytes < 0:
            raise ValueError("torn_bytes must be non-negative")
        self.crash_at_flush = crash_at_flush
        self.torn_bytes = torn_bytes

    def fires_at(self, flush_index: int) -> bool:
        return self.crash_at_flush is not None and flush_index == self.crash_at_flush

    def __repr__(self) -> str:
        return "CrashPlan(crash_at_flush=%r, torn_bytes=%d)" % (
            self.crash_at_flush,
            self.torn_bytes,
        )


def encode_record(record: ChangeRecord) -> bytes:
    payload = json.dumps(
        record.to_payload(), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_wal_report(path: str) -> WalScanReport:
    """Read every intact record of the log at ``path``.

    The scan stops at the *first* bad frame -- a cut header, a cut
    payload, a CRC mismatch or an undecodable record -- whether that frame
    is the torn tail of a crashed flush or corruption in the middle of the
    file.  Everything before it is trustworthy (CRC-checked); everything
    after it is reported, not replayed: ``garbage_bytes`` and the
    structurally-estimated ``lost_records`` quantify what recovery gave
    up, so operators can tell a routine torn tail (0-1 lost frames) from
    media damage that orphaned a suffix.
    """
    records: List[ChangeRecord] = []
    valid_bytes = 0
    torn = False
    if not os.path.exists(path):
        return WalScanReport(records, valid_bytes, torn, 0, 0)
    with open(path, "rb") as stream:
        data = stream.read()
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            torn = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            torn = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            record = ChangeRecord.from_payload(json.loads(payload.decode("utf-8")))
        except (ValueError, RecordError):
            torn = True
            break
        records.append(record)
        valid_bytes = end
        offset = end
    garbage_bytes = total - valid_bytes
    lost_records = 0
    if torn:
        # Structural walk past the bad frame: skip it, then count whole
        # frames by their length headers alone.  The payloads are not
        # trusted (never replayed) -- this only sizes the damage.
        cursor = offset
        if cursor + _HEADER.size <= total:
            length, _crc = _HEADER.unpack_from(data, cursor)
            bad_end = cursor + _HEADER.size + length
            if bad_end <= total:
                lost_records += 1  # the bad frame itself was whole-sized
                cursor = bad_end
                while cursor + _HEADER.size <= total:
                    length, _crc = _HEADER.unpack_from(data, cursor)
                    next_end = cursor + _HEADER.size + length
                    if next_end > total:
                        break
                    lost_records += 1
                    cursor = next_end
    return WalScanReport(records, valid_bytes, torn, garbage_bytes, lost_records)


def scan_wal(path: str) -> Tuple[List[ChangeRecord], int, bool]:
    """The classic scan result: ``(records, valid_bytes, torn)`` (see
    :func:`scan_wal_report` for the damage accounting)."""
    report = scan_wal_report(path)
    return report.records, report.valid_bytes, report.torn


class WriteAheadLog:
    """An append-only change log with group commit.

    :param path: the log file (created if absent).
    :param fsync: call ``os.fsync`` per flush (tests disable it for
        speed; the flush/crash accounting is identical either way).
    :param crash_plan: optional :class:`CrashPlan` applied to flushes.
    :param flush_delay_s: test hook -- sleep this long inside each flush
        (widens the group-commit window so batching is observable).
    """

    def __init__(
        self,
        path: str,
        fsync: bool = True,
        crash_plan: Optional[CrashPlan] = None,
        flush_delay_s: float = 0.0,
        metrics=None,
        log=None,
    ):
        self.path = path
        self.fsync = fsync
        self.crash_plan = crash_plan
        self.flush_delay_s = flush_delay_s
        self.log = log
        self._file = open(path, "ab")
        self._cond = threading.Condition()
        self._buffer = bytearray()
        self._buffer_records = 0
        self._buffered_lsn = -1
        self._flushing = False
        self._crashed = False
        #: Highest lsn guaranteed on stable storage.
        self.durable_lsn = -1
        #: Physical flush batches written (each is >= 1 record).
        self.flushes = 0
        #: Records appended over the log's lifetime.
        self.appends = 0
        #: Torn/corrupt tails physically truncated by :meth:`open_existing`
        #: over this object's lifetime, and the bytes the last one cut.
        self.torn_truncations = 0
        self.torn_bytes_truncated = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_appends = registry.counter(
            "repro_wal_appends_total", "Records appended to the WAL"
        )
        self._m_flushes = registry.counter(
            "repro_wal_flushes_total", "Physical WAL flush batches (one fsync each)"
        )
        self._m_bytes = registry.counter(
            "repro_wal_bytes_total", "Bytes written to the WAL"
        )
        self._m_group = registry.histogram(
            "repro_wal_group_size",
            "Records per group-commit flush batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._m_fsync = registry.histogram(
            "repro_wal_fsync_seconds", "Wall time of one WAL flush+fsync"
        )
        #: The write-path batching metric by its conventional name; kept
        #: alongside the original ``repro_wal_group_size`` series (same
        #: observations) so existing dashboards and tests stay valid.
        self._m_group_commit = registry.histogram(
            "repro_wal_group_commit_batch",
            "Records folded into one group-commit flush",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        self._m_torn = registry.counter(
            "repro_wal_torn_truncations_total",
            "Torn/corrupt WAL tails physically truncated on reopen",
        )

    # -- the write path ------------------------------------------------------

    def append(self, record: ChangeRecord) -> int:
        """Buffer one encoded record; returns its lsn.  Not yet durable --
        call :meth:`sync` (or :meth:`commit`) to reach stable storage."""
        if record.lsn is None:
            raise WalError("records must carry an lsn before logging")
        frame = encode_record(record)
        with self._cond:
            if self._crashed:
                raise SimulatedCrash("WAL crashed; reopen to recover")
            if record.lsn <= self._buffered_lsn and self._buffered_lsn >= 0:
                raise WalError(
                    "non-monotone lsn %d after %d" % (record.lsn, self._buffered_lsn)
                )
            self._buffer += frame
            self._buffer_records += 1
            self._buffered_lsn = record.lsn
            self.appends += 1
            self._m_appends.inc()
        return record.lsn

    def sync(self, lsn: Optional[int] = None) -> None:
        """Block until everything up to ``lsn`` (default: everything
        appended so far) is durable.  Concurrent callers share flushes:
        one leader writes the whole buffered batch, the rest wait on the
        barrier."""
        with self._cond:
            if lsn is None:
                lsn = self._buffered_lsn
            while self.durable_lsn < lsn:
                if self._crashed:
                    raise SimulatedCrash("WAL crashed during group commit")
                if self._flushing:
                    # A leader is writing; our record is either in its
                    # batch or in the buffer the *next* leader takes.
                    self._cond.wait()
                    continue
                if not self._buffer:
                    # Nothing buffered and not durable: lsn from the
                    # future (caller bug) -- fail loudly, don't hang.
                    raise WalError("sync(%d) past buffered lsn" % lsn)
                batch = bytes(self._buffer)
                batch_records = self._buffer_records
                batch_lsn = self._buffered_lsn
                self._buffer = bytearray()
                self._buffer_records = 0
                self._flushing = True
                try:
                    self._cond.release()
                    try:
                        self._write_batch(batch, batch_records, batch_lsn)
                    finally:
                        self._cond.acquire()
                except BaseException:
                    self._crashed = True
                    self._flushing = False
                    self._cond.notify_all()
                    raise
                self._flushing = False
                self.durable_lsn = batch_lsn
                self._cond.notify_all()

    def commit(self, record: ChangeRecord) -> int:
        """append + sync in one call."""
        lsn = self.append(record)
        self.sync(lsn)
        return lsn

    def _write_batch(self, batch: bytes, batch_records: int, batch_lsn: int) -> None:
        flush_index = self.flushes
        plan = self.crash_plan
        started = time.perf_counter()
        if plan is not None and plan.fires_at(flush_index):
            torn = batch[: min(plan.torn_bytes, len(batch))]
            if torn:
                self._file.write(torn)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            raise SimulatedCrash(
                "crash point at flush %d (%d of %d bytes written)"
                % (flush_index, len(torn), len(batch))
            )
        if self.flush_delay_s:
            time.sleep(self.flush_delay_s)
        self._file.write(batch)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.flushes += 1
        self._m_flushes.inc()
        self._m_bytes.inc(len(batch))
        self._m_group.observe(batch_records)
        self._m_group_commit.observe(batch_records)
        self._m_fsync.observe(time.perf_counter() - started)
        if self.log is not None and self.log.enabled_for("debug"):
            self.log.debug(
                "wal.flush", records=batch_records, bytes=len(batch),
                lsn=batch_lsn,
            )

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open_existing(cls, path: str, **options) -> Tuple["WriteAheadLog", List[ChangeRecord], bool]:
        """Open (or create) the log at ``path`` for appending.

        Scans the existing records and *physically truncates* any torn
        tail a crash left behind -- observably: the truncation counts in
        ``repro_wal_torn_truncations_total``, logs a structured warning
        with the byte and estimated record loss, and is reported on the
        returned log (:attr:`torn_truncations`,
        :attr:`torn_bytes_truncated`).  Returns ``(wal, records, torn)``
        with ``wal.durable_lsn`` set to the last recovered record's lsn."""
        report = scan_wal_report(path)
        records, torn = report.records, report.torn
        if torn:
            with open(path, "r+b") as stream:
                stream.truncate(report.valid_bytes)
        wal = cls(path, **options)
        if records:
            with wal._cond:
                wal.durable_lsn = records[-1].lsn
                wal._buffered_lsn = records[-1].lsn
        if torn:
            wal.torn_truncations += 1
            wal.torn_bytes_truncated = report.garbage_bytes
            wal._m_torn.inc()
            if wal.log is not None and wal.log.enabled:
                wal.log.warning(
                    "wal.torn_truncated",
                    path=path,
                    truncated_bytes=report.garbage_bytes,
                    lost_records=report.lost_records,
                    recovered_records=len(records),
                    durable_lsn=wal.durable_lsn,
                )
        return wal, records, torn

    def records_since(self, lsn: int) -> List[ChangeRecord]:
        """The durable log suffix: every record with ``record.lsn > lsn``,
        in lsn order.  This is the shipping/catch-up read -- replication
        resyncs a lagging replica from a checkpoint plus exactly this
        suffix.  Only *flushed* records are visible (the group-commit
        buffer holds unacknowledged commits, which owe nobody anything);
        asking below the checkpoint a :meth:`truncate` folded away returns
        only what the log still holds.
        """
        with self._cond:
            if self._crashed:
                raise SimulatedCrash("WAL crashed; reopen to recover")
        records, _valid, _torn = scan_wal(self.path)
        return [record for record in records if record.lsn > lsn]

    def truncate(self, next_durable_lsn: int) -> None:
        """Drop every logged record (they are folded into a checkpoint
        whose lsn is ``next_durable_lsn``); the file restarts empty."""
        with self._cond:
            if self._flushing:
                raise WalError("cannot truncate during a flush")
            self._file.truncate(0)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._buffer = bytearray()
            self._buffer_records = 0
            self._buffered_lsn = next_durable_lsn
            self.durable_lsn = next_durable_lsn

    def close(self) -> None:
        with self._cond:
            if not self._file.closed:
                self._file.close()

    def __repr__(self) -> str:
        return "WriteAheadLog(%r, durable_lsn=%d, flushes=%d)" % (
            self.path,
            self.durable_lsn,
            self.flushes,
        )
