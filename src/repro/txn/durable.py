"""The durable directory: checkpoint + WAL ahead of the update overlay.

On disk a :class:`DurableDirectory` is three files in one data directory::

    base.ldif       the last checkpoint (canonical reverse-dn order)
    MANIFEST.json   {"checkpoint_lsn": k, "schema": {...}}
    wal.log         every commit after the checkpoint, in lsn order

**Commit protocol.**  A mutation validates and advances the in-memory
version chain under the write lock, *buffering* its change record into
the WAL in the same critical section (so WAL order equals lsn order);
the fsync happens after the lock is released, via
:meth:`~repro.txn.wal.WriteAheadLog.sync` -- concurrent committers pile
up behind the flush barrier and share one fsync (group commit).  The
mutation call returns only once its record is on stable storage: the
return *is* the acknowledgement.

**Recovery.**  :meth:`DurableDirectory.open` loads the checkpoint, scans
the WAL (physically truncating any torn tail a crash left mid-batch),
and replays every intact record through the same delta application the
online path uses -- no re-validation, records are post-images.  Replay
asserts lsn continuity, so recovery is deterministic: same files, same
records, same state, same next lsn.

**Checkpointing.**  :meth:`DurableDirectory.checkpoint` quiesces writers,
folds the overlay into the master run, dumps it as LDIF (tmp + atomic
rename, manifest second), then truncates the WAL.  A crash between the
manifest rename and the WAL truncate is harmless: replay skips records
at or below the manifest's ``checkpoint_lsn``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from ..model.instance import DirectoryInstance
from ..model.ldif import dumps_ldif, loads_ldif
from ..model.schema import DirectorySchema
from ..storage.maintenance import UpdatableDirectory
from ..storage.store import DirectoryStore
from .records import ChangeRecord
from .wal import WalError, WriteAheadLog

__all__ = ["DurableDirectory"]

BASE_FILE = "base.ldif"
MANIFEST_FILE = "MANIFEST.json"
WAL_FILE = "wal.log"


def _schema_to_payload(schema: DirectorySchema) -> Dict[str, Any]:
    return {
        "attributes": {
            name: schema.type_name_of(name) for name in sorted(schema.attributes)
        },
        "classes": {
            name: sorted(schema.allowed_attributes(name))
            for name in sorted(schema.classes)
        },
    }


def _schema_from_payload(payload: Dict[str, Any]) -> DirectorySchema:
    schema = DirectorySchema()
    for name, type_name in payload.get("attributes", {}).items():
        schema.add_attribute(name, type_name)
    for name, allowed in payload.get("classes", {}).items():
        schema.add_class(name, allowed)
    return schema


def _entries_ldif(entries) -> str:
    """LDIF text for already-validated entries (``dumps_ldif`` only
    iterates, so a plain entry list works as well as an instance)."""
    return dumps_ldif(entries)


def _atomic_write(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as stream:
        stream.write(text)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)


class DurableDirectory(UpdatableDirectory):
    """An :class:`UpdatableDirectory` whose commits survive crashes."""

    def __init__(
        self,
        store: DirectoryStore,
        wal: WriteAheadLog,
        data_dir: Optional[str] = None,
        checkpoint_lsn: int = 0,
        **options,
    ):
        # The chain is anchored at the checkpoint lsn: the master run *is*
        # the fold of everything up to checkpoint_lsn.
        super().__init__(store, start_lsn=checkpoint_lsn, **options)
        self.wal = wal
        self.data_dir = data_dir
        self.checkpoint_lsn = checkpoint_lsn
        #: Records replayed (and torn tail seen) by the last open().
        self.recovered_records = 0
        self.recovered_torn = False
        self._m_checkpoints = self.metrics.counter(
            "repro_checkpoints_total",
            "Checkpoints written (LDIF dump + WAL truncation)",
        )
        self._m_recovered = self.metrics.counter(
            "repro_recovered_records_total",
            "WAL records replayed during recovery",
        )

    # -- durability hooks (called by the commit pipeline) --------------------

    def _log_record(self, record: ChangeRecord) -> None:
        self.wal.append(record)

    def _after_commit(self, record: ChangeRecord) -> None:
        # Outside the write lock: concurrent committers group-commit.
        self.wal.sync(record.lsn)

    # -- opening and recovery ------------------------------------------------

    @classmethod
    def open(
        cls,
        data_dir: str,
        instance: Optional[DirectoryInstance] = None,
        page_size: int = 16,
        buffer_pages: int = 8,
        fsync: bool = False,
        crash_plan=None,
        flush_delay_s: float = 0.0,
        metrics=None,
        log=None,
        **options,
    ) -> "DurableDirectory":
        """Open (or create) the durable directory at ``data_dir``.

        A fresh directory needs ``instance`` as its initial state (it
        becomes checkpoint 0); reopening ignores ``instance`` and rebuilds
        from ``base.ldif`` + ``wal.log``.  ``fsync`` defaults to False
        because the simulated deployments (and tests) care about the
        *protocol*, not the platter.
        """
        os.makedirs(data_dir, exist_ok=True)
        base_path = os.path.join(data_dir, BASE_FILE)
        manifest_path = os.path.join(data_dir, MANIFEST_FILE)
        wal_path = os.path.join(data_dir, WAL_FILE)

        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
            checkpoint_lsn = int(manifest["checkpoint_lsn"])
            schema = _schema_from_payload(manifest["schema"])
            with open(base_path, "r", encoding="utf-8") as stream:
                checkpoint = loads_ldif(stream.read(), schema)
        else:
            if instance is None:
                raise ValueError(
                    "fresh data dir %r needs an initial instance" % data_dir
                )
            checkpoint_lsn = 0
            schema = instance.schema
            checkpoint = instance
            _atomic_write(base_path, _entries_ldif(checkpoint))
            _atomic_write(
                manifest_path,
                json.dumps(
                    {
                        "checkpoint_lsn": 0,
                        "schema": _schema_to_payload(schema),
                    },
                    indent=2,
                    sort_keys=True,
                ),
            )

        store = DirectoryStore.from_instance(
            checkpoint, page_size=page_size, buffer_pages=buffer_pages
        )
        wal, records, torn = WriteAheadLog.open_existing(
            wal_path,
            fsync=fsync,
            crash_plan=crash_plan,
            flush_delay_s=flush_delay_s,
            metrics=metrics,
            log=log,
        )
        if wal.durable_lsn < checkpoint_lsn:
            # Everything up to the checkpoint is durable in base.ldif even
            # though the (truncated) log no longer holds those records.
            with wal._cond:
                wal.durable_lsn = checkpoint_lsn
                wal._buffered_lsn = max(wal._buffered_lsn, checkpoint_lsn)
        directory = cls(
            store,
            wal,
            data_dir=data_dir,
            checkpoint_lsn=checkpoint_lsn,
            metrics=metrics,
            log=log,
            **options,
        )
        directory._replay(records)
        directory.recovered_torn = torn
        if records or torn:
            directory.log.info(
                "txn.recovered",
                records=directory.recovered_records,
                torn_tail=torn,
                checkpoint_lsn=checkpoint_lsn,
                head_lsn=directory.head_lsn,
            )
        return directory

    def _replay(self, records: List[ChangeRecord]) -> None:
        """Apply recovered records through :meth:`~repro.storage.
        maintenance.UpdatableDirectory.apply_records` -- the same replay
        path replication uses -- without re-validation or re-logging (they
        are committed post-images).  Records at or below the checkpoint
        lsn are skipped as duplicates (the chain is anchored there), which
        covers a crash between the manifest rename and the WAL truncate."""
        applied = self.apply_records(records)
        self.recovered_records += len(applied)
        if applied:
            self._m_recovered.inc(len(applied))

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> int:
        """Fold everything into a fresh checkpoint and truncate the WAL;
        returns the checkpoint lsn.  Quiesces writers for the duration."""
        if self.data_dir is None:
            raise WalError("directory was not opened from a data dir")
        with self._write_lock:
            self.compact()
            lsn = self._chain.floor_lsn
            entries = list(self.store.scan_all())
            _atomic_write(
                os.path.join(self.data_dir, BASE_FILE), _entries_ldif(entries)
            )
            _atomic_write(
                os.path.join(self.data_dir, MANIFEST_FILE),
                json.dumps(
                    {
                        "checkpoint_lsn": lsn,
                        "schema": _schema_to_payload(self.schema),
                    },
                    indent=2,
                    sort_keys=True,
                ),
            )
            self.wal.truncate(lsn)
            self.checkpoint_lsn = lsn
        self._m_checkpoints.inc()
        self.log.info("txn.checkpoint", lsn=lsn, entries=len(entries))
        return lsn

    # -- status and lifecycle ------------------------------------------------

    def durability_status(self) -> Dict[str, Any]:
        """The admin-endpoint view of the write path."""
        return {
            "data_dir": self.data_dir,
            "checkpoint_lsn": self.checkpoint_lsn,
            "durable_lsn": self.wal.durable_lsn,
            "head_lsn": self.head_lsn,
            "floor_lsn": self.floor_lsn,
            "wal_appends": self.wal.appends,
            "wal_flushes": self.wal.flushes,
            "recovered_records": self.recovered_records,
            "recovered_torn_tail": self.recovered_torn,
            "torn_truncations": self.wal.torn_truncations,
            "torn_bytes_truncated": self.wal.torn_bytes_truncated,
        }

    def close(self) -> None:
        self.wal.close()

    def __repr__(self) -> str:
        return "DurableDirectory(%d stored, head_lsn=%d, durable_lsn=%d)" % (
            len(self.store),
            self.head_lsn,
            self.wal.durable_lsn,
        )
