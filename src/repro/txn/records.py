"""Change records: the unit of logging, replay and cache maintenance.

Every validated mutation of an :class:`~repro.storage.maintenance.
UpdatableDirectory` is described by one :class:`ChangeRecord`:

- ``kind`` -- ``"add"`` / ``"delete"`` / ``"modify"``;
- ``dn`` -- the updated entry's dn;
- ``subtree`` -- True only for recursive deletes (the updated region is
  the dn's whole subtree);
- ``entry`` -- the *resulting* entry for adds and modifies (a modify is
  logged as the full post-image, so replay never needs the pre-image);
- ``lsn`` -- the log sequence number, assigned when the record enters the
  version chain (and, for a durable directory, the WAL).

Records are what the WAL serialises, what recovery replays, and what the
incremental cache maintainer consumes -- one shape for all three, so the
replay path and the online path cannot drift apart.

Serialisation is JSON (schema validation already happened before a record
exists, so replay applies records verbatim): attribute values survive as
the ``int``/``str`` values the schema coerced them to.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..model.dn import DN
from ..model.entry import Entry

__all__ = ["ChangeRecord", "RecordError"]

KINDS = ("add", "delete", "modify")


class RecordError(ValueError):
    """Raised for malformed serialised change records."""


class ChangeRecord:
    """One validated mutation, replayable without re-validation."""

    __slots__ = ("kind", "dn", "subtree", "entry", "lsn", "pre_image")

    def __init__(
        self,
        kind: str,
        dn: DN,
        subtree: bool = False,
        entry: Optional[Entry] = None,
        lsn: Optional[int] = None,
    ):
        if kind not in KINDS:
            raise RecordError("unknown record kind %r" % kind)
        if kind in ("add", "modify") and entry is None:
            raise RecordError("%s records carry the resulting entry" % kind)
        if subtree and kind != "delete":
            raise RecordError("only deletes can be subtree-wide")
        self.kind = kind
        self.dn = dn
        self.subtree = subtree
        self.entry = entry
        self.lsn = lsn
        #: The replaced/removed entry for deletes and modifies, attached by
        #: the online write path (which already holds it for validation).
        #: Transient: never serialised, so replayed records carry None and
        #: consumers needing it (incremental statistics) must fall back to
        #: a rebuild.
        self.pre_image: Optional[Entry] = None

    # -- serialisation -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-serialisable dict (the WAL's record payload)."""
        payload: Dict[str, Any] = {
            "lsn": self.lsn,
            "kind": self.kind,
            "dn": str(self.dn),
        }
        if self.subtree:
            payload["subtree"] = True
        if self.entry is not None:
            payload["classes"] = sorted(self.entry.classes)
            payload["attributes"] = {
                attr: list(self.entry.values(attr))
                for attr in self.entry.attributes()
            }
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ChangeRecord":
        try:
            kind = payload["kind"]
            dn = DN.parse(payload["dn"])
            lsn = payload["lsn"]
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordError("malformed change record: %s" % exc) from exc
        entry = None
        if kind in ("add", "modify"):
            try:
                entry = Entry(dn, payload["classes"], payload.get("attributes", {}))
            except (KeyError, TypeError, ValueError) as exc:
                raise RecordError("malformed %s payload: %s" % (kind, exc)) from exc
        return cls(
            kind,
            dn,
            subtree=bool(payload.get("subtree", False)),
            entry=entry,
            lsn=lsn,
        )

    def __repr__(self) -> str:
        extra = "/subtree" if self.subtree else ""
        return "ChangeRecord(lsn=%s, %s%s %s)" % (self.lsn, self.kind, extra, self.dn)
