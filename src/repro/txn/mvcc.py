"""MVCC for the pending-update overlay: a copy-on-write version chain.

The differential update scheme keeps mutations in an overlay ahead of the
read-optimised master run.  The seed kept that overlay in three mutable
structures, so a reader racing a writer could observe half an update.
Here the overlay is an immutable chain instead:

- every committed mutation appends one :class:`Version` holding only its
  *delta* (one added/modified entry, one deleted dn, or one deleted
  subtree root) and a parent pointer -- copy-on-write at the granularity
  of whole versions, so committing is O(1) and never disturbs a reader;
- a :class:`Snapshot` captures the list of versions above the floor *at
  creation* (under the chain lock), so it answers exactly as of its lsn
  forever -- neither later commits nor later truncations can reach into
  it;
- compaction *promotes* a prefix of the chain into a fresh master run and
  raises the floor; :meth:`VersionChain.truncate` then cuts the parent
  link at the new floor, so retired versions become garbage as soon as
  the last snapshot holding them dies.  Retirement is driven by the
  maintenance agent (or the synchronous compaction fallback), never by a
  reader.

Chain lookups cost O(pending); :meth:`Snapshot.folded` materialises the
cumulative overlay (memoised per head version per floor) for compaction
and scans.  Folding applies deltas oldest-to-newest with the same
precedence the seed's mutable overlay had: a later add resurrects a dn
deleted earlier, a later subtree delete clears earlier adds beneath it.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..model.dn import DN
from ..model.entry import Entry

__all__ = ["Snapshot", "Version", "VersionChain"]

#: The cumulative overlay: (adds, point deletes, subtree-delete roots).
FoldedState = Tuple[Dict[DN, Entry], Set[DN], Set[DN]]


class Version:
    """One committed mutation's delta, linked to its predecessor."""

    __slots__ = ("lsn", "parent", "adds", "deletes", "delete_subtrees", "_folded")

    def __init__(
        self,
        lsn: int,
        parent: Optional["Version"],
        adds: Optional[Dict[DN, Entry]] = None,
        deletes: Iterable[DN] = (),
        delete_subtrees: Iterable[DN] = (),
    ):
        self.lsn = lsn
        self.parent = parent
        self.adds = dict(adds or {})
        self.deletes = frozenset(deletes)
        self.delete_subtrees = frozenset(delete_subtrees)
        #: Memoised cumulative state: (floor_lsn, FoldedState).
        self._folded: Optional[Tuple[int, FoldedState]] = None

    def __repr__(self) -> str:
        return "Version(lsn=%d, +%d, -%d, -%d subtrees)" % (
            self.lsn,
            len(self.adds),
            len(self.deletes),
            len(self.delete_subtrees),
        )


class Snapshot:
    """An immutable view of the overlay at one lsn.

    ``versions`` is the newest-first list of deltas above the floor,
    captured when the snapshot was taken; ``floor_lsn`` is the lsn the
    paired master run already contains.  Because the list is captured
    eagerly, a snapshot keeps answering correctly after any number of
    commits, compactions and chain truncations.
    """

    __slots__ = ("versions", "floor_lsn")

    def __init__(self, versions: Tuple[Version, ...], floor_lsn: int):
        self.versions = versions
        self.floor_lsn = floor_lsn

    @property
    def lsn(self) -> int:
        """The snapshot's position in the commit order."""
        return self.versions[0].lsn if self.versions else self.floor_lsn

    def overlay_lookup(self, dn: DN) -> Optional[Tuple[str, Optional[Entry]]]:
        """The overlay's verdict on ``dn``: ``("add", entry)`` if an
        add/modify supplies its current image, ``("delete", None)`` if a
        delete removed it, None if the overlay is silent (fall through to
        the master run)."""
        for version in self.versions:
            entry = version.adds.get(dn)
            if entry is not None:
                return ("add", entry)
            if dn in version.deletes:
                return ("delete", None)
            for root in version.delete_subtrees:
                if root.is_prefix_of(dn):
                    return ("delete", None)
        return None

    def is_deleted(self, dn: DN) -> bool:
        verdict = self.overlay_lookup(dn)
        return verdict is not None and verdict[0] == "delete"

    def folded(self) -> FoldedState:
        """The cumulative overlay at this snapshot (memoised on the head
        version; safe to race -- the computation is deterministic and the
        memo is only ever replaced by an identical value)."""
        if not self.versions:
            return ({}, set(), set())
        head = self.versions[0]
        memo = head._folded
        if memo is not None and memo[0] == self.floor_lsn:
            adds, deletes, subtrees = memo[1]
            return (dict(adds), set(deletes), set(subtrees))
        adds: Dict[DN, Entry] = {}
        deletes: Set[DN] = set()
        subtrees: Set[DN] = set()
        for delta in reversed(self.versions):  # oldest first
            for dn, entry in delta.adds.items():
                adds[dn] = entry
                deletes.discard(dn)
            for dn in delta.deletes:
                deletes.add(dn)
                adds.pop(dn, None)
            for root in delta.delete_subtrees:
                subtrees.add(root)
                for dn in [d for d in adds if root.is_prefix_of(d)]:
                    del adds[dn]
        head._folded = (self.floor_lsn, (dict(adds), set(deletes), set(subtrees)))
        return (adds, deletes, subtrees)

    def pending(self) -> int:
        """How many distinct overlay actions the snapshot carries."""
        if not self.versions:
            return 0
        adds, deletes, subtrees = self.folded()
        return len(adds) + len(deletes) + len(subtrees)

    def __repr__(self) -> str:
        return "Snapshot(lsn=%d, floor=%d, versions=%d)" % (
            self.lsn,
            self.floor_lsn,
            len(self.versions),
        )


class VersionChain:
    """The writer-side chain: head pointer, floor, lsn allocation.

    ``advance`` is the only mutation and runs under the chain lock, so
    lsns are allocated densely in commit order; snapshots taken at any
    moment see a consistent (head, floor) pair.
    """

    def __init__(self, start_lsn: int = 0):
        self._lock = threading.Lock()
        self._head: Optional[Version] = None
        self._floor_lsn = start_lsn
        self._next_lsn = start_lsn + 1

    @property
    def head_lsn(self) -> int:
        with self._lock:
            return self._head.lsn if self._head is not None else self._floor_lsn

    @property
    def floor_lsn(self) -> int:
        with self._lock:
            return self._floor_lsn

    def advance(
        self,
        adds: Optional[Dict[DN, Entry]] = None,
        deletes: Iterable[DN] = (),
        delete_subtrees: Iterable[DN] = (),
    ) -> Version:
        """Commit one delta; returns the new head version (its ``lsn`` is
        the commit's sequence number)."""
        with self._lock:
            version = Version(
                self._next_lsn, self._head, adds, deletes, delete_subtrees
            )
            self._next_lsn += 1
            self._head = version
            return version

    def snapshot(self) -> Snapshot:
        with self._lock:
            versions: List[Version] = []
            version = self._head
            while version is not None and version.lsn > self._floor_lsn:
                versions.append(version)
                version = version.parent
            return Snapshot(tuple(versions), self._floor_lsn)

    def truncate(self, upto_lsn: int) -> int:
        """Raise the floor to ``upto_lsn`` (a compaction folded everything
        at or below it into the master) and cut the parent link there so
        retired versions can be collected.  Existing snapshots are
        unaffected: they captured their version lists eagerly.  Returns
        the new floor."""
        with self._lock:
            if upto_lsn <= self._floor_lsn:
                return self._floor_lsn
            self._floor_lsn = upto_lsn
            version = self._head
            while version is not None:
                if version.parent is not None and version.parent.lsn <= upto_lsn:
                    version.parent = None
                    break
                version = version.parent
            if self._head is not None and self._head.lsn <= upto_lsn:
                self._head = None
            return self._floor_lsn

    def __repr__(self) -> str:
        with self._lock:
            head = self._head.lsn if self._head is not None else None
            return "VersionChain(head=%s, floor=%d)" % (head, self._floor_lsn)
