"""Synthetic workloads: directory generators, random query factories, and
scalable DEN application workloads."""

from .den import call_workload, packet_workload, qos_workload, tops_workload
from .generator import (
    RandomQueries,
    ZipfQueryStream,
    balanced_instance,
    random_instance,
    skewed_instance,
    synthetic_schema,
)

__all__ = [
    "call_workload",
    "packet_workload",
    "qos_workload",
    "tops_workload",
    "RandomQueries",
    "ZipfQueryStream",
    "balanced_instance",
    "random_instance",
    "skewed_instance",
    "synthetic_schema",
]
