"""Synthetic directory and query generators.

The paper's algorithms are sensitive only to list sizes and forest shape,
so the generators are parameterised by exactly those: entry count, fanout
(children per node), attribute-value selectivities and the density of
dn-valued references.  They provide:

- the data for the differential tests (random instance + random query at
  every language level, engine vs. definitional semantics);
- the scalable workloads the benchmark sweeps measure I/O on.
"""

from __future__ import annotations

import random
from typing import List

from ..filters.ast import Comparison, Equality, MatchAll, Presence, Substring
from ..model.dn import DN, ROOT_DN
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..query.aggregates import (
    AggSelFilter,
    Constant,
    EntryAggregate,
    EntrySetAggregate,
)
from ..query.ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    Scope,
    SimpleAggSelect,
)

__all__ = [
    "synthetic_schema",
    "random_instance",
    "RandomQueries",
    "ZipfQueryStream",
    "balanced_instance",
    "skewed_instance",
]

_KINDS = ("alpha", "beta", "gamma", "delta")
_TAGS = ("red", "green", "blue", "redish", "dark-red")


def synthetic_schema() -> DirectorySchema:
    """A small schema with the shapes the languages exercise: string, int
    and dn-valued attributes, shared across overlapping classes."""
    schema = DirectorySchema()
    schema.add_attribute("name", "string")
    schema.add_attribute("kind", "string")
    schema.add_attribute("tag", "string")
    schema.add_attribute("level", "int")
    schema.add_attribute("weight", "int")
    schema.add_attribute("ref", "distinguishedName")
    schema.add_class("node", {"name", "kind", "tag", "level", "weight", "ref"})
    schema.add_class("container", {"name", "kind", "tag"})
    schema.add_class("item", {"name", "weight", "ref"})
    return schema


def random_instance(
    seed: int,
    size: int,
    max_children: int = 4,
    ref_density: float = 0.3,
    forest_roots: int = 2,
) -> DirectoryInstance:
    """A random forest of ``size`` entries with heterogeneous attributes.

    ``ref_density`` is the probability that an entry carries one or more
    dn-valued ``ref`` attributes pointing at earlier entries (the L3 fuel).
    """
    rng = random.Random(seed)
    schema = synthetic_schema()
    instance = DirectoryInstance(schema)
    dns: List[DN] = []
    child_counts = {}
    for index in range(size):
        name = "e%d" % index
        if index < forest_roots or not dns:
            parent = ROOT_DN
        else:
            parent = rng.choice(dns)
            while child_counts.get(parent, 0) >= max_children:
                parent = rng.choice(dns)
        dn = parent.child("name=%s" % name)
        child_counts[parent] = child_counts.get(parent, 0) + 1

        classes = rng.choice(
            [["node"], ["container"], ["node", "item"], ["container", "node"]]
        )
        attrs = {"name": [name]}
        if any(c in ("node", "container") for c in classes):
            attrs["kind"] = [rng.choice(_KINDS)]
            if rng.random() < 0.6:
                attrs["tag"] = rng.sample(_TAGS, rng.randint(1, 2))
        if "node" in classes:
            attrs["level"] = [rng.randint(0, 9)]
        if "node" in classes or "item" in classes:
            if rng.random() < 0.8:
                attrs["weight"] = [rng.randint(0, 100)]
            if dns and rng.random() < ref_density:
                attrs["ref"] = [
                    rng.choice(dns) for _ in range(rng.randint(1, 3))
                ]
        instance.add(dn, classes, attrs)
        dns.append(dn)
    return instance


def balanced_instance(
    size: int,
    fanout: int = 4,
    seed: int = 7,
    ref_density: float = 0.3,
) -> DirectoryInstance:
    """A near-balanced tree of exactly ``size`` entries (benchmark shape):
    entry ``i``'s parent is entry ``(i - 1) // fanout``."""
    rng = random.Random(seed)
    schema = synthetic_schema()
    instance = DirectoryInstance(schema)
    dns: List[DN] = []
    for index in range(size):
        name = "e%d" % index
        parent = ROOT_DN if index == 0 else dns[(index - 1) // fanout]
        dn = parent.child("name=%s" % name)
        attrs = {
            "name": [name],
            "kind": [rng.choice(_KINDS)],
            "level": [rng.randint(0, 9)],
            "weight": [rng.randint(0, 100)],
        }
        if dns and rng.random() < ref_density:
            attrs["ref"] = [rng.choice(dns)]
        instance.add(dn, ["node"], attrs)
        dns.append(dn)
    return instance


def skewed_instance(
    size: int,
    fanout: int = 4,
    seed: int = 23,
    hot: float = 0.9,
) -> DirectoryInstance:
    """The balanced benchmark shape with heavily skewed value frequencies
    (the plan-quality workload): a ``hot`` fraction of entries carries
    ``kind=alpha``, the rest spread over the remaining kinds, and
    ``weight`` concentrates near zero -- so equal-looking operands have
    wildly different selectivities and operand order matters.  ``omega``
    never occurs: a guaranteed-empty equality for short-circuit plans.
    """
    rng = random.Random(seed)
    schema = synthetic_schema()
    instance = DirectoryInstance(schema)
    dns: List[DN] = []
    cold_kinds = [kind for kind in _KINDS if kind != "alpha"]
    for index in range(size):
        name = "e%d" % index
        parent = ROOT_DN if index == 0 else dns[(index - 1) // fanout]
        dn = parent.child("name=%s" % name)
        kind = "alpha" if rng.random() < hot else rng.choice(cold_kinds)
        weight = rng.randint(0, 9) if rng.random() < hot else rng.randint(10, 100)
        attrs = {
            "name": [name],
            "kind": [kind],
            "level": [rng.randint(0, 9)],
            "weight": [weight],
        }
        instance.add(dn, ["node"], attrs)
        dns.append(dn)
    return instance


class RandomQueries:
    """Random query factory over a given instance, one method per level."""

    def __init__(self, instance: DirectoryInstance, seed: int = 0):
        self.rng = random.Random(seed)
        self.dns: List[DN] = [entry.dn for entry in instance]

    # -- leaves --------------------------------------------------------------

    def random_filter(self):
        rng = self.rng
        choice = rng.randrange(7)
        if choice == 0:
            return Equality("kind", rng.choice(_KINDS))
        if choice == 1:
            return Comparison("weight", rng.choice(["<", "<=", ">", ">="]), rng.randint(0, 100))
        if choice == 2:
            return Presence("tag")
        if choice == 3:
            return Substring("tag", rng.choice(["*red*", "re*", "*ish"]))
        if choice == 4:
            return Comparison("level", "<", rng.randint(1, 9))
        if choice == 5:
            return Equality("objectClass", rng.choice(["node", "container", "item"]))
        return MatchAll()

    def random_base(self) -> DN:
        if self.rng.random() < 0.25 or not self.dns:
            return ROOT_DN
        return self.rng.choice(self.dns)

    def atomic(self) -> AtomicQuery:
        scope = self.rng.choice([Scope.BASE, Scope.ONE, Scope.SUB, Scope.SUB])
        return AtomicQuery(self.random_base(), scope, self.random_filter())

    # -- languages --------------------------------------------------------

    def l0(self, depth: int = 2) -> Query:
        if depth <= 0 or self.rng.random() < 0.4:
            return self.atomic()
        ctor = self.rng.choice([And, Or, Diff])
        return ctor(self.l0(depth - 1), self.l0(depth - 1))

    def l1(self, depth: int = 1) -> Query:
        op = self.rng.choice(["p", "c", "a", "d", "ac", "dc"])
        third = self.l0(depth) if op in ("ac", "dc") else None
        return HierarchySelect(op, self.l0(depth), self.l0(depth), third)

    def agg_filter(self, structural: bool) -> AggSelFilter:
        rng = self.rng
        if structural:
            candidates = [
                EntryAggregate("count", "$2", None),
                EntryAggregate(rng.choice(["min", "max", "sum"]), "$2", "weight"),
                EntryAggregate(rng.choice(["min", "max"]), "$1", "weight"),
            ]
        else:
            candidates = [
                EntryAggregate(rng.choice(["min", "max", "count", "sum"]), "$1", "weight"),
                EntryAggregate("count", "$1", "tag"),
            ]
        left = rng.choice(candidates)
        if rng.random() < 0.3:
            right = EntrySetAggregate(rng.choice(["min", "max"]), rng.choice(candidates))
        elif rng.random() < 0.2:
            right = EntrySetAggregate("count", None)
        else:
            right = Constant(rng.randint(0, 5))
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        return AggSelFilter(left, op, right)

    def l2(self, depth: int = 1) -> Query:
        if self.rng.random() < 0.5:
            return SimpleAggSelect(self.l0(depth), self.agg_filter(structural=False))
        op = self.rng.choice(["p", "c", "a", "d", "ac", "dc"])
        third = self.l0(depth) if op in ("ac", "dc") else None
        return HierarchySelect(
            op, self.l0(depth), self.l0(depth), third, self.agg_filter(structural=True)
        )

    def l3(self, depth: int = 1) -> Query:
        op = self.rng.choice(["vd", "dv"])
        agg = self.agg_filter(structural=True) if self.rng.random() < 0.5 else None
        return EmbeddedRef(op, self.l0(depth), self.l0(depth), "ref", agg)

    def any_level(self, depth: int = 1) -> Query:
        pick = self.rng.randrange(4)
        if pick == 0:
            return self.l0(depth)
        if pick == 1:
            return self.l1(depth)
        if pick == 2:
            return self.l2(depth)
        return self.l3(depth)


class ZipfQueryStream:
    """A repeated-query workload with Zipf-skewed popularity.

    A fixed pool of ``distinct`` queries is drawn from :class:`RandomQueries`
    once; the stream then emits pool members with probability proportional
    to ``1 / rank**skew`` (rank 1 = hottest).  ``skew=0`` degenerates to a
    uniform stream, ``skew=1.0`` is the classic web-trace distribution --
    the regime where a semantic query cache pays off.  ``levels`` restricts
    the pool to particular language levels (default: L0 only, so the stream
    is cheap enough to replay against an uncached baseline).
    """

    def __init__(
        self,
        instance: DirectoryInstance,
        distinct: int = 32,
        skew: float = 1.0,
        seed: int = 0,
        levels: tuple = ("l0",),
        depth: int = 1,
    ):
        if distinct < 1:
            raise ValueError("distinct must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.rng = random.Random(seed)
        factory = RandomQueries(instance, seed=seed)
        self.pool: List[Query] = [
            getattr(factory, self.rng.choice(list(levels)))(depth)
            for _ in range(distinct)
        ]
        weights = [1.0 / (rank ** skew) for rank in range(1, distinct + 1)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def next(self) -> Query:
        """Draw the next query from the skewed distribution."""
        u = self.rng.random()
        for index, threshold in enumerate(self._cdf):
            if u <= threshold:
                return self.pool[index]
        return self.pool[-1]

    def take(self, n: int) -> List[Query]:
        return [self.next() for _ in range(n)]

    def __iter__(self):
        while True:
            yield self.next()
