"""Scalable DEN workloads: the paper's two applications at any size.

Section 3.4 contrasts the two partitioning styles -- the QoS directory is
partitioned *by functionality* (all policies under one
``ou=networkPolicies``), the TOPS directory *by subscriber* (each
subscriber owns a personal subtree).  These generators scale both shapes
so the benchmarks can show what each buys:

- :func:`qos_workload` -- ``n`` policies with proportional profile /
  validity-period / action pools and a realistic reference fan-out;
- :func:`tops_workload` -- ``n`` subscribers with a few QHPs each and a
  few call appearances per QHP;
- :func:`packet_workload` / :func:`call_workload` -- request streams for
  the two decision paths.
"""

from __future__ import annotations

import random
from typing import List

from ..apps.qos import PacketProfile, QoSDirectory
from ..apps.tops import CallRequest, TOPSDirectory

__all__ = ["qos_workload", "tops_workload", "packet_workload", "call_workload"]

_SUBNETS = ["10.%d" % i for i in range(8)] + ["204.178.%d" % i for i in range(8)]


def qos_workload(n_policies: int, seed: int = 0) -> QoSDirectory:
    """A policy directory with ``n_policies`` rules over shared pools of
    profiles (~n/2), validity periods (~n/4) and actions (~n/8)."""
    rng = random.Random(seed)
    qos = QoSDirectory("dc=research, dc=att, dc=com")

    n_profiles = max(2, n_policies // 2)
    n_periods = max(2, n_policies // 4)
    n_actions = max(2, n_policies // 8)
    for index in range(n_profiles):
        subnet = rng.choice(_SUBNETS)
        qos.add_traffic_profile(
            "tp%04d" % index,
            source_address="%s.%d.*" % (subnet, rng.randrange(256)),
            source_port=rng.choice([None, 21, 25, 80, 443]),
            protocol=rng.choice([None, "tcp", "udp"]),
        )
    for index in range(n_periods):
        start_day = rng.randrange(1, 28)
        qos.add_validity_period(
            "pvp%04d" % index,
            start=19980100000000 + start_day * 1000000,
            end=19981231235959,
            days_of_week=rng.sample(range(1, 8), rng.randint(0, 3)),
        )
    for index in range(n_actions):
        qos.add_action(
            "act%04d" % index,
            rng.choice(["Permit", "Deny"]),
            peak_rate=rng.randrange(1, 100),
        )
    policy_names: List[str] = []
    for index in range(n_policies):
        name = "pol%05d" % index
        exceptions = (
            rng.sample(policy_names, min(len(policy_names), rng.randint(0, 2)))
            if policy_names and rng.random() < 0.2
            else ()
        )
        qos.add_policy(
            name,
            priority=rng.randint(1, 8),
            action="act%04d" % rng.randrange(n_actions),
            profiles=["tp%04d" % rng.randrange(n_profiles)
                      for _ in range(rng.randint(1, 3))],
            periods=["pvp%04d" % rng.randrange(n_periods)
                     for _ in range(rng.randint(0, 2))],
            exceptions=exceptions,
        )
        policy_names.append(name)
    return qos


def tops_workload(n_subscribers: int, seed: int = 0) -> TOPSDirectory:
    """A subscriber-partitioned TOPS directory: 2--4 QHPs each, 1--3 call
    appearances per QHP."""
    rng = random.Random(seed)
    tops = TOPSDirectory("dc=research, dc=att, dc=com")
    for index in range(n_subscribers):
        uid = "sub%05d" % index
        tops.add_subscriber(uid, "subscriber %d" % index, "name%05d" % index)
        for qhp_index in range(rng.randint(2, 4)):
            qhp = "qhp%d" % qhp_index
            if qhp_index == 0:
                tops.add_qhp(uid, qhp, priority=1, days_of_week=(6, 7))
            else:
                start = rng.choice([700, 800, 900])
                tops.add_qhp(
                    uid, qhp, priority=qhp_index + 1,
                    start_time=start, end_time=start + 900,
                )
            for ca_index in range(rng.randint(1, 3)):
                tops.add_call_appearance(
                    uid, qhp, "973%07d" % rng.randrange(10 ** 7),
                    priority=ca_index + 1, time_out=rng.choice([20, 30]),
                )
    return tops


def packet_workload(count: int, seed: int = 1) -> List[PacketProfile]:
    rng = random.Random(seed)
    packets = []
    for _ in range(count):
        subnet = rng.choice(_SUBNETS)
        packets.append(
            PacketProfile(
                source_address="%s.%d.%d" % (subnet, rng.randrange(256), rng.randrange(256)),
                source_port=rng.choice([None, 21, 25, 80, 443]),
                protocol=rng.choice(["tcp", "udp"]),
                timestamp=19980601120000 + rng.randrange(10 ** 6),
                day_of_week=rng.randint(1, 7),
            )
        )
    return packets


def call_workload(count: int, n_subscribers: int, seed: int = 2) -> List[CallRequest]:
    rng = random.Random(seed)
    return [
        CallRequest(
            "sub%05d" % rng.randrange(n_subscribers),
            time_of_day=rng.choice([730, 930, 1200, 1500, 2300]),
            day_of_week=rng.randint(1, 7),
        )
        for _ in range(count)
    ]
