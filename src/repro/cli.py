"""Command-line interface: query LDIF directories from the shell.

Usage (also via ``python -m repro``)::

    python -m repro dump-example qos > policies.ldif
    python -m repro query policies.ldif --schema qos \\
        "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) count(SLAPVPRef) > 1)"
    python -m repro explain policies.ldif --schema qos --analyze --json "( ? sub ? objectClass=*)"
    python -m repro stats policies.ldif --schema qos --json
    python -m repro metrics policies.ldif --schema qos --query "( ? sub ? objectClass=*)"
    python -m repro bench-check benchmarks/results/BENCH_e13_boolean.json
    python -m repro chaos policies.ldif --schema qos --drop-rate 0.1 --queries 200
    python -m repro ldapurl "ldap://host/dc=att,dc=com?cn?sub?(surName=jagadish)"
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from .model.ldif import dumps_ldif, loads_ldif
from .model.schema import DirectorySchema
from .model.standard import standard_schema
from .workload.generator import synthetic_schema

__all__ = ["main", "build_parser"]


def _schema_factories() -> Dict[str, Callable[[], DirectorySchema]]:
    from .apps.qos import qos_schema
    from .apps.tops import tops_schema

    return {
        "standard": standard_schema,
        "synthetic": synthetic_schema,
        "qos": qos_schema,
        "tops": tops_schema,
    }


def _load(path: str, schema_name: str):
    factories = _schema_factories()
    if schema_name not in factories:
        raise SystemExit(
            "unknown schema %r (choose from %s)" % (schema_name, ", ".join(factories))
        )
    with open(path, "r", encoding="utf-8") as stream:
        return loads_ldif(stream.read(), factories[schema_name]())


def _engine_for(instance, args):
    from .engine.engine import QueryEngine

    return QueryEngine.from_instance(
        instance,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        int_indices=tuple(args.int_index or ()),
        string_indices=tuple(args.string_index or ()),
    )


def _budget_from(args):
    """A QueryBudget from the ``--max-*`` flags (None when unbounded)."""
    max_pages = getattr(args, "max_pages", None)
    max_wall_ms = getattr(args, "max_wall_ms", None)
    max_entries = getattr(args, "max_entries", None)
    if max_pages is None and max_wall_ms is None and max_entries is None:
        return None
    from .obs.budget import QueryBudget

    return QueryBudget(
        max_pages=max_pages,
        max_wall_s=max_wall_ms / 1e3 if max_wall_ms is not None else None,
        max_entries=max_entries,
    )


def _cmd_query(args) -> int:
    from .obs.budget import BudgetExceeded

    instance = _load(args.file, args.schema)
    engine = _engine_for(instance, args)
    if args.trace:
        from .obs.trace import Tracer

        engine.tracer = Tracer(probes={"io": engine.pager.stats})
    try:
        result = engine.run(args.query, budget=_budget_from(args))
    except BudgetExceeded as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    for dn in result.dns():
        print(dn)
    if args.trace:
        root = engine.tracer.last_root()
        if root is not None:
            print(root.render(), file=sys.stderr)
    if args.io:
        print(
            "-- %d entries, %d physical page I/Os (%d logical reads), %.2f ms"
            % (
                len(result),
                result.io.total,
                result.io.logical_reads,
                result.elapsed * 1e3,
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_explain(args) -> int:
    from .engine.optimizer import explain
    from .query.parser import parse_query
    from .storage.store import DirectoryStore

    instance = _load(args.file, args.schema)
    store = DirectoryStore.from_instance(
        instance, page_size=args.page_size, buffer_pages=args.buffer_pages
    )
    if args.int_index or args.string_index:
        store.build_indices(
            tuple(args.int_index or ()), tuple(args.string_index or ())
        )
    node = explain(store, parse_query(args.query), analyze=args.analyze)
    if args.json:
        payload = node.as_dict()
        if args.analyze:
            payload["total_io"] = node.total_io()
            payload["total_logical_io"] = node.total_logical_io()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(node.render())
    return 0


def _cmd_plan(args) -> int:
    from .engine.optimizer import AccessPlanner, explain, reorder_operands, rewrite
    from .query.parser import parse_query
    from .storage.store import DirectoryStore

    instance = _load(args.file, args.schema)
    store = DirectoryStore.from_instance(
        instance, page_size=args.page_size, buffer_pages=args.buffer_pages
    )
    if args.int_index or args.string_index:
        store.build_indices(
            tuple(args.int_index or ()), tuple(args.string_index or ())
        )
    planner = AccessPlanner(store)
    planned, rules = rewrite(parse_query(args.query))
    planned = reorder_operands(planned, planner.estimator, rules)
    # The same (deterministic) pipeline explain applies -- the rendered
    # tree is exactly the plan a PlannedEngine would execute.
    node = explain(store, parse_query(args.query), planner=planner)
    if args.json:
        payload = {
            "query": args.query,
            "planned": str(planned),
            "rules": rules,
            "plan": node.as_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("planned: %s" % planned)
        for rule in rules:
            print("  - %s" % rule)
        print(node.render())
    return 0


def _depth_quantiles(depth_counts):
    """p50/p95/p99 of the entry-depth distribution, interpolated through
    a fixed-bucket histogram (the same estimator the latency metrics
    use)."""
    if not depth_counts:
        return None
    from .obs.metrics import Histogram

    histogram = Histogram(
        "depth", "entry depth", buckets=sorted(depth_counts)
    )
    for depth, count in depth_counts.items():
        for _ in range(count):
            histogram.observe(depth)
    return histogram.quantiles()


def _cmd_stats(args) -> int:
    from .engine.stats import DirectoryStatistics
    from .storage.store import DirectoryStore

    instance = _load(args.file, args.schema)
    store = DirectoryStore.from_instance(instance, page_size=args.page_size)
    stats = DirectoryStatistics.collect(store)
    if args.json:
        payload = {
            "entries": stats.total_entries,
            "pages": store.page_count,
            "page_size": store.pager.page_size,
            "depths": {str(d): c for d, c in sorted(stats.depth_counts.items())},
            "depth_quantiles": _depth_quantiles(stats.depth_counts),
            "io": store.pager.stats.as_dict(),
            "attributes": {
                name: {
                    "entries_with": attr.entries_with,
                    "value_count": attr.value_count,
                    "distinct_estimate": attr.distinct_estimate,
                    "int_min": attr.int_min,
                    "int_max": attr.int_max,
                }
                for name, attr in sorted(stats.attributes.items())
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("entries: %d   pages: %d (B=%d)" % (
        stats.total_entries, store.page_count, store.pager.page_size))
    print("depths:  %s" % ", ".join(
        "%d:%d" % (depth, count) for depth, count in sorted(stats.depth_counts.items())))
    print("%-24s %8s %8s %9s %s" % ("attribute", "entries", "values", "distinct", "int range"))
    for name in sorted(stats.attributes):
        attr = stats.attributes[name]
        int_range = (
            "%d..%d" % (attr.int_min, attr.int_max) if attr.int_min is not None else "-"
        )
        print(
            "%-24s %8d %8d %9d %s"
            % (name, attr.entries_with, attr.value_count, attr.distinct_estimate, int_range)
        )
    return 0


def _cmd_metrics(args) -> int:
    """Run searches through a full DirectoryService and dump the populated
    metrics registry (Prometheus text by default, --json for JSON)."""
    from .obs.metrics import MetricsRegistry
    from .server.service import DirectoryService

    instance = _load(args.file, args.schema)
    registry = MetricsRegistry()
    service = DirectoryService(
        instance,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        metrics=registry,
        slow_query_seconds=(
            args.slow_ms / 1e3 if args.slow_ms is not None else None
        ),
    )
    service.bind_anonymous()
    for query in args.query or ():
        service.search(query)
    if args.json:
        print(registry.to_json(indent=2))
    else:
        sys.stdout.write(registry.to_prometheus())
    if args.slow_ms is not None:
        summary = service.slow_query_summary()
        quantiles = summary["latency_quantiles"]
        if quantiles:
            print("-- search latency: %s" % "  ".join(
                "%s=%.2fms" % (name, value * 1e3)
                for name, value in sorted(quantiles.items())
            ), file=sys.stderr)
        if len(service.slow_queries):
            print("-- %d slow queries (>= %gms):" % (
                len(service.slow_queries), args.slow_ms), file=sys.stderr)
            for record in service.slow_queries:
                trace = (
                    " trace=%s" % record.trace_id
                    if record.trace_id is not None else ""
                )
                print("--   %.2fms io=%d%s %s" % (
                    record.elapsed * 1e3, record.io_total, trace,
                    record.query_text),
                    file=sys.stderr)
    return 0


def _cmd_top(args) -> int:
    """Drive a Zipf-skewed workload through a DirectoryService and print
    its query digest table plus the hottest subtrees -- the CLI face of
    the workload observability plane."""
    import json

    from .obs.metrics import MetricsRegistry
    from .server.service import DirectoryService
    from .workload.generator import ZipfQueryStream

    instance = _load(args.file, args.schema)
    registry = MetricsRegistry()
    service = DirectoryService(
        instance,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        metrics=registry,
        heatmap_depth=args.depth,
    )
    service.bind_anonymous()
    stream = ZipfQueryStream(
        instance, distinct=args.distinct, skew=args.skew, seed=args.seed
    )
    for query in stream.take(args.queries):
        service.search(query)

    digest = service.digest.snapshot(args.top, by=args.by)
    heat = service.heatmap.snapshot(args.top)
    if args.json:
        print(json.dumps({"digest": digest, "heatmap": heat}, indent=2))
        return 0

    print("-- %d searches over %d distinct shapes (skew=%g seed=%d); "
          "digest: %d rows, by=%s" % (
              args.queries, args.distinct, args.skew, args.seed,
              digest["rows"], digest["by"]))
    header = "%4s %6s %6s %9s %8s %8s  %s" % (
        "rank", "calls", "hit%", "mean ms", "pages", "qerror", "query")
    print(header)
    for rank, row in enumerate(digest["top"], start=1):
        qerror = row["qerror_max"]
        print("%4d %6d %5.1f%% %9.3f %8d %8s  %s" % (
            rank, row["calls"], 100.0 * row["hit_rate"],
            row["elapsed_mean_s"] * 1e3, row["pages_total"],
            "%.2f" % qerror if qerror is not None else "-",
            row["query"]))
    print("-- hottest subtrees (depth %d, EWMA half-life %gs):" % (
        heat["depth"], heat["half_life_s"]))
    for rank, cell in enumerate(heat["hottest"], start=1):
        print("%4d %-28s heat=%8.1f reads=%d writes=%d pages=%d" % (
            rank, cell["subtree"], cell["heat"], cell["reads_total"],
            cell["writes_total"], cell["pages_total"]))
    return 0


def _cmd_alerts(args) -> int:
    """Deterministic alert demo: a burst phase drives the search rate over
    a rule's threshold (firing), then an idle phase under an injected
    clock lets it resolve.  Exercises the same history -> rule -> engine
    path the admin endpoint serves."""
    import json

    from .obs.alerts import parse_rule
    from .obs.metrics import MetricsRegistry
    from .server.service import DirectoryService
    from .workload.generator import ZipfQueryStream

    instance = _load(args.file, args.schema)
    registry = MetricsRegistry()
    service = DirectoryService(
        instance,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        metrics=registry,
    )
    service.bind_anonymous()
    clock = {"now": 0.0}
    history = service.enable_workload_history(
        min_interval_s=0.0, clock=lambda: clock["now"]
    )
    texts = args.rule or [
        "rate(repro_searches_total, %g) > %g" % (args.window, args.threshold)
    ]
    rules = [parse_rule(text) for text in texts]
    engine = service.attach_alerts(rules)

    # Burst: args.queries searches squeezed into args.burst seconds of
    # injected time -- the windowed rate crosses the threshold and fires.
    stream = ZipfQueryStream(instance, distinct=8, seed=args.seed)
    step = args.burst / max(args.queries, 1)
    for query in stream.take(args.queries):
        service.search(query)
        clock["now"] += step
    # Idle: the clock advances with no searches; once the burst ages out
    # of the rate window the rule resolves.
    idle_steps = max(2, int(2 * args.window / args.burst) + 1)
    for _ in range(idle_steps):
        clock["now"] += args.burst
        history.sample()
        engine.evaluate()

    status = engine.status()
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        print("-- %d rules, %d evaluations, %d firing" % (
            len(engine.rules), status["evaluations"], len(status["firing"])))
        for rule in engine.rules:
            print("--   rule %s: %s [%s]" % (
                rule.name, rule.condition(), rule.severity))
        for event in status["transitions"]:
            print("t=%+8.1fs  [%-8s] %-24s value=%s" % (
                event["ts"], event["to"], event["rule"],
                "%.2f" % event["value"] if event["value"] is not None
                else "-"))
    fired = {e["rule"] for e in status["transitions"] if e["to"] == "firing"}
    resolved = {e["rule"] for e in status["transitions"]
                if e["to"] == "resolved"}
    if not (fired & resolved):
        print("-- expected at least one firing->resolved cycle",
              file=sys.stderr)
        return 1
    return 0


def _expand_bench_paths(paths) -> List[str]:
    """Expand directories to the BENCH_*.json files inside them (a
    directory with none is an error -- an empty artifact set must not
    pass CI silently)."""
    import glob
    import os

    expanded: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
            if not found:
                raise SystemExit("%s: no BENCH_*.json artifacts inside" % path)
            expanded.extend(found)
        else:
            expanded.append(path)
    return expanded


def _cmd_bench_check(args) -> int:
    """Validate BENCH_*.json telemetry artifacts (CI's benchmark-smoke).
    Accepts files or directories; every invalid artifact is listed and
    any failure exits non-zero."""
    from .obs.telemetry import load_bench, validate_bench

    failures = 0
    for path in _expand_bench_paths(args.files):
        try:
            payload = load_bench(path)
        except (OSError, ValueError) as exc:
            print("%s: unreadable (%s)" % (path, exc))
            failures += 1
            continue
        problems = validate_bench(payload)
        if problems:
            failures += 1
            print("%s: INVALID" % path)
            for problem in problems:
                print("  - %s" % problem)
        else:
            tables = payload.get("tables", {})
            rows = sum(len(r) for r in tables.values())
            print("%s: ok (%d tables, %d rows)" % (path, len(tables), rows))
    return 1 if failures else 0


def _cmd_bench_diff(args) -> int:
    """Compare fresh benchmark artifacts against committed baselines (the
    CI perf-gate).  Exits 1 when anything regressed beyond tolerance."""
    import os

    from .obs.telemetry import compare_bench, diff_bench_dirs, load_bench

    if os.path.isdir(args.old) != os.path.isdir(args.new) and not os.path.isdir(
        args.old
    ):
        raise SystemExit("old and new must both be files or both directories")
    if os.path.isdir(args.old):
        report = diff_bench_dirs(
            args.old, args.new,
            tolerance=args.tolerance,
            timing_tolerance=args.timing_tolerance,
        )
        artifacts = report["artifacts"]
    else:
        single = compare_bench(
            load_bench(args.old), load_bench(args.new),
            tolerance=args.tolerance,
            timing_tolerance=args.timing_tolerance,
        )
        single["artifact"] = os.path.basename(args.new)
        artifacts = [single]
        report = {
            "old_dir": args.old,
            "new_dir": args.new,
            "tolerance": args.tolerance,
            "timing_tolerance": args.timing_tolerance,
            "artifacts": artifacts,
            "regressions_total": len(single["regressions"]),
        }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
    for artifact in artifacts:
        name = artifact.get("artifact", artifact.get("experiment", "?"))
        regressions = artifact.get("regressions", [])
        improvements = artifact.get("improvements", [])
        if regressions:
            print("%s: %d REGRESSION(S)" % (name, len(regressions)))
            for entry in regressions:
                print("  - %s" % _render_diff_entry(entry))
        else:
            print("%s: ok (%d fields compared, %d timing skipped%s)" % (
                name,
                artifact.get("compared_fields", 0),
                artifact.get("skipped_timing_fields", 0),
                ", %d improved" % len(improvements) if improvements else "",
            ))
    total = report["regressions_total"]
    if total:
        print("bench-diff: %d regression(s) beyond tolerance %g" % (
            total, args.tolerance))
        return 1
    return 0


def _render_diff_entry(entry) -> str:
    where = entry.get("table", "")
    if "row" in entry:
        where += "[%d]" % entry["row"]
    if "field" in entry:
        where += ".%s" % entry["field"]
    if "problem" in entry and "old" not in entry:
        return "%s: %s" % (where or "artifact", entry["problem"])
    if "change" in entry:
        return "%s: %s -> %s (%+g%%)" % (
            where, entry.get("old"), entry.get("new"),
            entry["change"] * 100 if entry["change"] != "inf" else float("inf"),
        )
    return "%s: %s (%r -> %r)" % (
        where, entry.get("problem", "changed"), entry.get("old"), entry.get("new"),
    )


def _cmd_serve_admin(args) -> int:
    """Run a directory service with its HTTP admin endpoint up."""
    import time as _time

    from .obs.log import EventLogger
    from .obs.trace import TraceSampler, Tracer
    from .server.service import DirectoryService

    instance = _load(args.file, args.schema)
    log = EventLogger(min_level=args.log_level) if args.log else None
    service = DirectoryService(
        instance,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        tracer=Tracer(),
        slow_query_seconds=(
            args.slow_ms / 1e3 if args.slow_ms is not None else None
        ),
        log=log,
        budget=_budget_from(args),
        trace_sampler=TraceSampler(sample_rate=args.sample_rate),
    )
    service.bind_anonymous()
    for query in args.query or ():
        service.search(query)
    server = service.serve_admin(host=args.host, port=args.port)
    print("admin endpoint at %s (/metrics /healthz /slowlog /traces)"
          % server.url, file=sys.stderr)
    try:
        if args.duration is not None:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _parse_window(text: str, what: str, parts: int):
    """Parse ``name[:name]:start[:end]`` chaos window specs."""
    fields = text.split(":")
    if len(fields) < parts or len(fields) > parts + 1:
        raise SystemExit(
            "bad %s spec %r (expected %s)" % (what, text, (
                "server:start[:end]" if parts == 2 else "a:b:start[:end]"
            ))
        )
    names, times = fields[: parts - 1], fields[parts - 1 :]
    try:
        start = float(times[0])
        end = float(times[1]) if len(times) > 1 else float("inf")
    except ValueError:
        raise SystemExit("bad %s window in %r (numbers expected)" % (what, text))
    return names, start, end


def _cmd_chaos(args) -> int:
    """Replay a seeded fault schedule against a federated workload and
    print an availability report."""
    from .dist import (
        DistError,
        FaultInjector,
        FaultPlan,
        FederatedDirectory,
        ResiliencePolicy,
        RetryPolicy,
    )
    from .engine.engine import QueryEngine
    from .workload.generator import RandomQueries

    instance = _load(args.file, args.schema)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    if not roots:
        raise SystemExit("directory is empty")
    # server0 owns the root contexts; depth-2 subtrees are delegated
    # round-robin to the remaining servers (DNS-style subdomains), so even
    # a single-root directory produces remote traffic to disrupt.
    server_count = max(1, args.servers)
    assignments: Dict[str, list] = {"server0": list(roots)}
    if server_count > 1:
        subtrees = sorted(
            {e.dn for e in instance if e.dn.depth() == 2},
            key=lambda dn: dn.key(),
        )
        for index, subtree in enumerate(subtrees):
            name = "server%d" % (1 + index % (server_count - 1))
            assignments.setdefault(name, []).append(subtree)
    server_count = len(assignments)

    plan = FaultPlan(
        seed=args.seed,
        drop_rate=args.drop_rate,
        latency_s=args.latency_ms / 1e3,
        jitter_s=args.jitter_ms / 1e3,
        timeout_s=args.timeout_ms / 1e3 if args.timeout_ms is not None else None,
    )
    for spec in args.crash or ():
        (server,), start, end = _parse_window(spec, "crash", 2)
        plan.crash(server, start, end)
    for spec in args.partition or ():
        (a, b), start, end = _parse_window(spec, "partition", 3)
        plan.partition(a, b, start, end)
    network = FaultInjector(plan)
    federation = FederatedDirectory.partition(
        instance,
        assignments,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        network=network,
        leaf_cache_bytes=0 if args.no_cache else 256 * 1024,
    )
    federation.enable_resilience(
        ResiliencePolicy(
            retry=RetryPolicy(
                max_attempts=args.retries,
                backoff_s=args.backoff_ms / 1e3,
                seed=args.seed,
            ),
            breaker_failure_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset_ms / 1e3,
            mode=args.mode,
        )
    )
    baseline = _engine_for(instance, args)
    queries = RandomQueries(instance, seed=args.seed)
    at = "server0"
    totals = {"exact": 0, "partial": 0, "degraded": 0, "failed": 0, "mismatch": 0}
    retries = 0
    for _ in range(args.queries):
        query = queries.l0()
        expected = baseline.run(query).dns()
        try:
            result = federation.query(at, query)
        except DistError:
            totals["failed"] += 1
            continue
        retries += result.retries
        if result.partial:
            totals["partial"] += 1
        elif result.warnings:
            totals["degraded"] += 1
        elif result.dns() == expected:
            totals["exact"] += 1
        else:
            totals["mismatch"] += 1
    answered = args.queries - totals["failed"]
    breaker_opens = sum(b.open_count() for b in federation.breakers.values())
    report = {
        "queries": args.queries,
        "servers": server_count,
        "mode": args.mode,
        "seed": args.seed,
        "answered": answered,
        "availability": answered / args.queries if args.queries else 1.0,
        "exact": totals["exact"],
        "partial": totals["partial"],
        "degraded": totals["degraded"],
        "mismatch": totals["mismatch"],
        "failed": totals["failed"],
        "retries": retries,
        "messages_delivered": network.messages,
        "send_attempts": network.attempts,
        "faults": dict(sorted(network.faults.items())),
        "breaker_opens": breaker_opens,
        "simulated_seconds": round(network.now, 6),
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print("== chaos report (seed=%d, drop=%.0f%%, %d servers, mode=%s) ==" % (
        args.seed, args.drop_rate * 100, server_count, args.mode))
    print("queries:    %d answered %d (%.1f%% availability)" % (
        args.queries, answered, 100.0 * report["availability"]))
    print("            %(exact)d exact, %(partial)d partial, "
          "%(degraded)d degraded, %(mismatch)d mismatched, %(failed)d failed"
          % totals)
    print("network:    %d delivered of %d attempts; faults: %s" % (
        network.messages, network.attempts,
        ", ".join("%s=%d" % kv for kv in sorted(network.faults.items())) or "none"))
    print("resilience: %d retries, %d breaker opens" % (retries, breaker_opens))
    print("sim clock:  %.3f s" % network.now)
    return 0


def _cmd_replication_status(args) -> int:
    """Stand up a replication group over an LDIF file, drive it through
    writes / shipping / an optional failover, and print the group status
    (the same dict the admin endpoint's /healthz carries)."""
    from .dist import FaultInjector, FaultPlan, ReplicatedContext
    from .obs.metrics import MetricsRegistry

    instance = _load(args.file, args.schema)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    if not roots:
        raise SystemExit("directory is empty")
    root = roots[0]
    network = FaultInjector(FaultPlan(seed=args.seed), metrics=MetricsRegistry())
    replicated = ReplicatedContext(
        root,
        instance.schema,
        secondaries=args.secondaries,
        network=network,
        ack=args.ack,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        metrics=MetricsRegistry(),
    )
    for entry in instance:
        if root.is_prefix_of(entry.dn):
            replicated.add_entry(entry)
    replicated.sync()
    if args.failover:
        deposed = replicated.primary_name
        replicated.promote()
        # The new lineage keeps shipping; the deposed primary rejoins as a
        # secondary on the next rounds.
        replicated.sync()
        replicated.sync()
        print("failed over: %s deposed, %s now primary (epoch %d)"
              % (deposed, replicated.primary_name, replicated.epoch),
              file=sys.stderr)
    status = replicated.replication_status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print("== replication status (%s) ==" % status["context"])
    print("epoch:     %d    primary: %s    ack: %s" % (
        status["epoch"], status["primary"], status["ack"]))
    print("head lsn:  %d    changelog: %d record(s) above lsn %d" % (
        status["head_lsn"], status["changelog_records"],
        status["changelog_floor_lsn"]))
    print("history:   %d failover(s), %d resync(s)" % (
        status["failovers"], status["resyncs"]))
    print("%-12s %-10s %-6s %-10s %-12s %-6s %s" % (
        "REPLICA", "ROLE", "EPOCH", "ACKED", "APPLIED", "LAG", "RESYNC"))
    for name in sorted(status["replicas"]):
        replica = status["replicas"][name]
        print("%-12s %-10s %-6d %-10d %-12d %-6d %s" % (
            name, replica["role"], replica["epoch"], replica["acked_lsn"],
            replica["applied_lsn"], replica["lag"],
            "needed" if replica["needs_resync"] else "-"))
    return 0


def _cmd_consistency(args) -> int:
    """Run the deterministic replication consistency harness over a seed
    matrix; exit non-zero if any schedule violates an invariant."""
    import tempfile

    from .dist.consistency import run_matrix

    seeds = range(args.seed, args.seed + args.seeds)
    if args.durable:
        with tempfile.TemporaryDirectory() as tmp:
            reports = run_matrix(
                seeds, secondaries=args.secondaries, steps=args.steps,
                ack=args.ack, durable_root=tmp,
            )
    else:
        reports = run_matrix(
            seeds, secondaries=args.secondaries, steps=args.steps, ack=args.ack
        )
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
        return 0 if all(r.ok for r in reports) else 1
    print("== consistency harness (ack=%s, %d steps, %d secondaries%s) ==" % (
        args.ack, args.steps, args.secondaries,
        ", durable primary" if args.durable else ""))
    print("%-6s %-4s %-7s %-9s %-9s %-7s %-7s %-8s %s" % (
        "SEED", "OK", "EPOCHS", "ACKED", "FAILOVER", "FENCED", "RESYNC",
        "CRASHES", "LOST(acked/unacked)"))
    for r in reports:
        print("%-6d %-4s %-7d %-9d %-9d %-7d %-7d %-8d %d/%d" % (
            r.seed, "yes" if r.ok else "NO", r.final_epoch, r.writes_acked,
            r.failovers, r.fenced_rejections, r.resyncs, r.process_crashes,
            r.writes_lost_acked, r.writes_lost_unacked))
    violations = [v for r in reports for v in r.violations]
    if violations:
        print("\n%d violation(s):" % len(violations), file=sys.stderr)
        for violation in violations:
            print("  " + violation, file=sys.stderr)
        return 1
    print("-- all %d schedules held every invariant" % len(reports))
    return 0


def _cmd_dump_example(args) -> int:
    if args.which == "qos":
        from .apps.qos import build_paper_fragment

        instance = build_paper_fragment().instance
    elif args.which == "tops":
        from .apps.tops import build_paper_fragment

        instance = build_paper_fragment().instance
    else:
        from .apps.whitepages import WhitePages

        pages = WhitePages("dc=att, dc=com")
        boss = pages.add_person(["research"], "jag", "h jagadish", "jagadish",
                                telephone="9733608776", title="head")
        pages.add_person(["research", "db"], "divesh", "divesh srivastava",
                         "srivastava", manager=boss)
        pages.add_person(["sales"], "milo", "tova milo", "milo")
        instance = pages.instance
    sys.stdout.write(dumps_ldif(instance))
    return 0


def _cmd_wal_dump(args) -> int:
    import os

    from .txn.wal import scan_wal

    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, "wal.log")
    if not os.path.exists(path):
        print("wal-dump: no such log: %s" % path, file=sys.stderr)
        return 1
    records, valid_bytes, torn = scan_wal(path)
    print("%-6s %-8s %-8s %s" % ("LSN", "KIND", "SUBTREE", "DN"))
    for record in records:
        print(
            "%-6s %-8s %-8s %s"
            % (record.lsn, record.kind, "yes" if record.subtree else "-", record.dn)
        )
    print(
        "-- %d record(s), %d valid byte(s)%s"
        % (len(records), valid_bytes, ", TORN TAIL after last record" if torn else "")
    )
    return 0


def _cmd_ldapurl(args) -> int:
    from .ldapx.url import parse_ldap_url

    parsed = parse_ldap_url(args.url)
    print("scheme:     %s" % parsed.scheme)
    print("host:       %s" % (parsed.host or "(default)"))
    print("port:       %s" % (parsed.port or "(default)"))
    print("base dn:    %s" % (parsed.base or "(root)"))
    print("attributes: %s" % (", ".join(parsed.attributes) or "(all)"))
    print("scope:      %s" % parsed.scope)
    print("filter:     %s" % parsed.filter_text)
    print("query:      %s" % parsed.to_query())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query network directories (SIGMOD 1999 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--schema", default="standard",
                       help="schema preset: standard, synthetic, qos, tops")
        p.add_argument("--page-size", type=int, default=16,
                       help="blocking factor B (entries per page)")
        p.add_argument("--buffer-pages", type=int, default=8,
                       help="buffer pool capacity in pages")
        p.add_argument("--int-index", action="append", metavar="ATTR",
                       help="build a B+tree index on this int attribute")
        p.add_argument("--string-index", action="append", metavar="ATTR",
                       help="build a string index on this attribute")

    def budget_flags(p):
        p.add_argument("--max-pages", type=int, default=None, metavar="N",
                       help="budget: cancel past N logical page transfers")
        p.add_argument("--max-wall-ms", type=float, default=None, metavar="MS",
                       help="budget: cancel past MS of wall clock")
        p.add_argument("--max-entries", type=int, default=None, metavar="N",
                       help="budget: cancel when an intermediate result "
                            "exceeds N entries")

    query = sub.add_parser("query", help="run a query against an LDIF file")
    query.add_argument("file")
    query.add_argument("query", help="query in the paper's syntax")
    query.add_argument("--io", action="store_true", help="print cost to stderr")
    query.add_argument("--trace", action="store_true",
                       help="print the span trace (per-operator time and I/O) to stderr")
    budget_flags(query)
    common(query)
    query.set_defaults(handler=_cmd_query)

    explain_cmd = sub.add_parser("explain", help="show the query plan")
    explain_cmd.add_argument("file")
    explain_cmd.add_argument("query")
    explain_cmd.add_argument("--analyze", action="store_true",
                             help="also run the query once and report actual "
                                  "sizes and per-operator page I/O")
    explain_cmd.add_argument("--json", action="store_true",
                             help="emit the plan as JSON")
    common(explain_cmd)
    explain_cmd.set_defaults(handler=_cmd_explain)

    plan_cmd = sub.add_parser(
        "plan",
        help="print the chosen plan (rewrites, operand order, access paths, "
             "estimates) without running the query",
    )
    plan_cmd.add_argument("file")
    plan_cmd.add_argument("query")
    plan_cmd.add_argument("--json", action="store_true",
                          help="emit the plan as JSON (greppable in CI)")
    common(plan_cmd)
    plan_cmd.set_defaults(handler=_cmd_plan)

    stats_cmd = sub.add_parser("stats", help="print directory statistics")
    stats_cmd.add_argument("file")
    stats_cmd.add_argument("--json", action="store_true",
                           help="emit the statistics as JSON")
    common(stats_cmd)
    stats_cmd.set_defaults(handler=_cmd_stats)

    metrics_cmd = sub.add_parser(
        "metrics",
        help="run queries through a directory service and dump its metrics "
             "registry (Prometheus text format)")
    metrics_cmd.add_argument("file")
    metrics_cmd.add_argument("--query", action="append", metavar="QUERY",
                             help="search to run before dumping (repeatable)")
    metrics_cmd.add_argument("--json", action="store_true",
                             help="emit JSON instead of Prometheus text")
    metrics_cmd.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                             help="slow-query log threshold in milliseconds "
                                  "(log printed to stderr)")
    common(metrics_cmd)
    metrics_cmd.set_defaults(handler=_cmd_metrics)

    top_cmd = sub.add_parser(
        "top",
        help="run a Zipf-skewed workload and print the query digest table "
             "and hottest subtrees (pg_stat_statements for the directory)")
    top_cmd.add_argument("file")
    top_cmd.add_argument("--queries", type=int, default=300,
                         help="searches to run (default 300)")
    top_cmd.add_argument("--distinct", type=int, default=16,
                         help="distinct query shapes in the Zipf pool")
    top_cmd.add_argument("--skew", type=float, default=1.0,
                         help="Zipf exponent (0 = uniform)")
    top_cmd.add_argument("--seed", type=int, default=0,
                         help="workload seed")
    top_cmd.add_argument("-n", "--top", type=int, default=10,
                         help="rows / subtrees to print")
    top_cmd.add_argument("--by", default="calls",
                         choices=("calls", "time", "mean_time", "pages",
                                  "qerror"),
                         help="digest ordering (default calls)")
    top_cmd.add_argument("--depth", type=int, default=2,
                         help="heat-map subtree prefix depth")
    top_cmd.add_argument("--json", action="store_true",
                         help="emit digest + heatmap snapshots as JSON")
    common(top_cmd)
    top_cmd.set_defaults(handler=_cmd_top)

    alerts_cmd = sub.add_parser(
        "alerts",
        help="deterministic alert demo: a query burst fires a rate rule, "
             "an idle phase resolves it (injected clock)")
    alerts_cmd.add_argument("file")
    alerts_cmd.add_argument("--rule", action="append", metavar="RULE",
                            help="alert rule, e.g. "
                                 "'rate(repro_searches_total, 30) > 5' "
                                 "(repeatable; default: one rate rule)")
    alerts_cmd.add_argument("--queries", type=int, default=200,
                            help="searches in the burst phase")
    alerts_cmd.add_argument("--burst", type=float, default=10.0,
                            help="injected seconds the burst spans")
    alerts_cmd.add_argument("--window", type=float, default=30.0,
                            help="rate window for the default rule")
    alerts_cmd.add_argument("--threshold", type=float, default=5.0,
                            help="searches/s threshold for the default rule")
    alerts_cmd.add_argument("--seed", type=int, default=0,
                            help="workload seed")
    alerts_cmd.add_argument("--json", action="store_true",
                            help="emit the engine status as JSON")
    common(alerts_cmd)
    alerts_cmd.set_defaults(handler=_cmd_alerts)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="replay a seeded fault schedule against a federated workload "
             "and print an availability report")
    chaos_cmd.add_argument("file")
    chaos_cmd.add_argument("--servers", type=int, default=3,
                           help="servers to partition the directory across")
    chaos_cmd.add_argument("--queries", type=int, default=100,
                           help="random L0 queries to replay")
    chaos_cmd.add_argument("--seed", type=int, default=7,
                           help="seed for the fault schedule and the workload")
    chaos_cmd.add_argument("--drop-rate", type=float, default=0.1,
                           help="iid message drop probability")
    chaos_cmd.add_argument("--latency-ms", type=float, default=1.0,
                           help="base per-message latency (simulated clock)")
    chaos_cmd.add_argument("--jitter-ms", type=float, default=1.0,
                           help="uniform extra latency per message")
    chaos_cmd.add_argument("--timeout-ms", type=float, default=None,
                           help="delivery timeout; slower messages fault")
    chaos_cmd.add_argument("--crash", action="append", metavar="SERVER:START[:END]",
                           help="crash window on the simulated clock (repeatable)")
    chaos_cmd.add_argument("--partition", action="append", metavar="A:B:START[:END]",
                           help="pairwise partition window (repeatable)")
    chaos_cmd.add_argument("--retries", type=int, default=4,
                           help="max attempts per remote atomic call")
    chaos_cmd.add_argument("--backoff-ms", type=float, default=5.0,
                           help="base retry backoff (exponential, jittered)")
    chaos_cmd.add_argument("--breaker-threshold", type=int, default=5,
                           help="consecutive failures before a breaker opens")
    chaos_cmd.add_argument("--breaker-reset-ms", type=float, default=250.0,
                           help="open-breaker reset timeout")
    chaos_cmd.add_argument("--mode", choices=("partial", "strict"),
                           default="partial",
                           help="degradation mode past retries")
    chaos_cmd.add_argument("--no-cache", action="store_true",
                           help="disable the remote-sublist cache")
    chaos_cmd.add_argument("--json", action="store_true",
                           help="emit the report as JSON")
    common(chaos_cmd)
    chaos_cmd.set_defaults(handler=_cmd_chaos)

    bench_cmd = sub.add_parser(
        "bench-check",
        help="validate BENCH_*.json benchmark telemetry files or directories")
    bench_cmd.add_argument("files", nargs="+",
                           help="BENCH_*.json files and/or directories of them")
    bench_cmd.set_defaults(handler=_cmd_bench_check)

    diff_cmd = sub.add_parser(
        "bench-diff",
        help="compare benchmark artifacts against baselines and fail on "
             "regressions (the CI perf-gate)")
    diff_cmd.add_argument("old", help="baseline BENCH_*.json file or directory")
    diff_cmd.add_argument("new", help="fresh BENCH_*.json file or directory")
    diff_cmd.add_argument("--tolerance", type=float, default=0.1,
                          help="allowed relative drift for deterministic "
                               "fields (default 0.1)")
    diff_cmd.add_argument("--timing-tolerance", type=float, default=None,
                          metavar="T",
                          help="also gate wall-clock fields, at this relative "
                               "tolerance (skipped by default: timings are "
                               "noisy on shared runners)")
    diff_cmd.add_argument("--report", metavar="PATH",
                          help="write the full diff report as JSON")
    diff_cmd.set_defaults(handler=_cmd_bench_diff)

    admin_cmd = sub.add_parser(
        "serve-admin",
        help="run a directory service with its HTTP admin endpoint "
             "(/metrics /healthz /slowlog /traces)")
    admin_cmd.add_argument("file")
    admin_cmd.add_argument("--host", default="127.0.0.1")
    admin_cmd.add_argument("--port", type=int, default=8389,
                           help="port to bind (0 picks a free one)")
    admin_cmd.add_argument("--duration", type=float, default=None,
                           metavar="SECONDS",
                           help="serve for this long then exit (default: "
                                "until interrupted)")
    admin_cmd.add_argument("--query", action="append", metavar="QUERY",
                           help="search to run at startup so the endpoint "
                                "has data (repeatable)")
    admin_cmd.add_argument("--slow-ms", type=float, default=100.0, metavar="MS",
                           help="slow-query log threshold (default 100ms)")
    admin_cmd.add_argument("--sample-rate", type=float, default=0.0,
                           help="tail-sample this fraction of clean queries "
                                "into /traces (slow/degraded/budget-breached "
                                "ones are always kept)")
    admin_cmd.add_argument("--log", action="store_true",
                           help="emit JSON-lines events to stderr")
    admin_cmd.add_argument("--log-level", default="info",
                           choices=("debug", "info", "warning", "error"))
    budget_flags(admin_cmd)
    common(admin_cmd)
    admin_cmd.set_defaults(handler=_cmd_serve_admin)

    repl_cmd = sub.add_parser(
        "replication-status",
        help="stand up a replication group over an LDIF file and print "
             "epoch + per-replica acked lsn / lag")
    repl_cmd.add_argument("file")
    repl_cmd.add_argument("--secondaries", type=int, default=2,
                          help="secondary replicas in the group")
    repl_cmd.add_argument("--ack", choices=("primary", "quorum", "all"),
                          default="primary",
                          help="write acknowledgment level")
    repl_cmd.add_argument("--seed", type=int, default=7,
                          help="seed for the (fault-free) injected network")
    repl_cmd.add_argument("--failover", action="store_true",
                          help="also promote a secondary (epoch fence demo)")
    repl_cmd.add_argument("--json", action="store_true",
                          help="emit the status dict as JSON")
    common(repl_cmd)
    repl_cmd.set_defaults(handler=_cmd_replication_status)

    consistency_cmd = sub.add_parser(
        "consistency",
        help="run the seeded replication consistency harness (crashes, "
             "partitions, failovers) and check its invariants")
    consistency_cmd.add_argument("--seeds", type=int, default=20,
                                 help="number of schedules to run")
    consistency_cmd.add_argument("--seed", type=int, default=0,
                                 help="first seed of the matrix")
    consistency_cmd.add_argument("--steps", type=int, default=48,
                                 help="schedule length per seed")
    consistency_cmd.add_argument("--secondaries", type=int, default=2,
                                 help="secondary replicas per group")
    consistency_cmd.add_argument("--ack", choices=("primary", "quorum", "all"),
                                 default="quorum",
                                 help="write acknowledgment level under test")
    consistency_cmd.add_argument("--durable", action="store_true",
                                 help="put a real WAL under the primary and "
                                      "add mid-commit process crashes")
    consistency_cmd.add_argument("--json", action="store_true",
                                 help="emit the reports as JSON")
    consistency_cmd.set_defaults(handler=_cmd_consistency)

    dump = sub.add_parser("dump-example", help="write a sample directory as LDIF")
    dump.add_argument("which", choices=("qos", "tops", "whitepages"))
    dump.set_defaults(handler=_cmd_dump_example)

    url = sub.add_parser("ldapurl", help="parse an RFC 2255 LDAP URL")
    url.add_argument("url")
    url.set_defaults(handler=_cmd_ldapurl)

    wal = sub.add_parser(
        "wal-dump",
        help="print the records of a write-ahead log (file or data dir)",
    )
    wal.add_argument("path", help="wal.log file, or a durable data directory")
    wal.set_defaults(handler=_cmd_wal_dump)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
