"""Command-line interface: query LDIF directories from the shell.

Usage (also via ``python -m repro``)::

    python -m repro dump-example qos > policies.ldif
    python -m repro query policies.ldif --schema qos \\
        "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) count(SLAPVPRef) > 1)"
    python -m repro explain policies.ldif --schema qos --analyze "( ? sub ? objectClass=*)"
    python -m repro stats policies.ldif --schema qos
    python -m repro ldapurl "ldap://host/dc=att,dc=com?cn?sub?(surName=jagadish)"
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .model.ldif import dumps_ldif, loads_ldif
from .model.schema import DirectorySchema
from .model.standard import standard_schema
from .workload.generator import synthetic_schema

__all__ = ["main", "build_parser"]


def _schema_factories() -> Dict[str, Callable[[], DirectorySchema]]:
    from .apps.qos import qos_schema
    from .apps.tops import tops_schema

    return {
        "standard": standard_schema,
        "synthetic": synthetic_schema,
        "qos": qos_schema,
        "tops": tops_schema,
    }


def _load(path: str, schema_name: str):
    factories = _schema_factories()
    if schema_name not in factories:
        raise SystemExit(
            "unknown schema %r (choose from %s)" % (schema_name, ", ".join(factories))
        )
    with open(path, "r", encoding="utf-8") as stream:
        return loads_ldif(stream.read(), factories[schema_name]())


def _engine_for(instance, args):
    from .engine.engine import QueryEngine

    return QueryEngine.from_instance(
        instance,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        int_indices=tuple(args.int_index or ()),
        string_indices=tuple(args.string_index or ()),
    )


def _cmd_query(args) -> int:
    instance = _load(args.file, args.schema)
    engine = _engine_for(instance, args)
    result = engine.run(args.query)
    for dn in result.dns():
        print(dn)
    if args.io:
        print(
            "-- %d entries, %d physical page I/Os (%d logical reads), %.2f ms"
            % (
                len(result),
                result.io.total,
                result.io.logical_reads,
                result.elapsed * 1e3,
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_explain(args) -> int:
    from .engine.optimizer import explain
    from .query.parser import parse_query
    from .storage.store import DirectoryStore

    instance = _load(args.file, args.schema)
    store = DirectoryStore.from_instance(
        instance, page_size=args.page_size, buffer_pages=args.buffer_pages
    )
    if args.int_index or args.string_index:
        store.build_indices(
            tuple(args.int_index or ()), tuple(args.string_index or ())
        )
    node = explain(store, parse_query(args.query), analyze=args.analyze)
    print(node.render())
    return 0


def _cmd_stats(args) -> int:
    from .engine.stats import DirectoryStatistics
    from .storage.store import DirectoryStore

    instance = _load(args.file, args.schema)
    store = DirectoryStore.from_instance(instance, page_size=args.page_size)
    stats = DirectoryStatistics.collect(store)
    print("entries: %d   pages: %d (B=%d)" % (
        stats.total_entries, store.page_count, store.pager.page_size))
    print("depths:  %s" % ", ".join(
        "%d:%d" % (depth, count) for depth, count in sorted(stats.depth_counts.items())))
    print("%-24s %8s %8s %9s %s" % ("attribute", "entries", "values", "distinct", "int range"))
    for name in sorted(stats.attributes):
        attr = stats.attributes[name]
        int_range = (
            "%d..%d" % (attr.int_min, attr.int_max) if attr.int_min is not None else "-"
        )
        print(
            "%-24s %8d %8d %9d %s"
            % (name, attr.entries_with, attr.value_count, attr.distinct_estimate, int_range)
        )
    return 0


def _cmd_dump_example(args) -> int:
    if args.which == "qos":
        from .apps.qos import build_paper_fragment

        instance = build_paper_fragment().instance
    elif args.which == "tops":
        from .apps.tops import build_paper_fragment

        instance = build_paper_fragment().instance
    else:
        from .apps.whitepages import WhitePages

        pages = WhitePages("dc=att, dc=com")
        boss = pages.add_person(["research"], "jag", "h jagadish", "jagadish",
                                telephone="9733608776", title="head")
        pages.add_person(["research", "db"], "divesh", "divesh srivastava",
                         "srivastava", manager=boss)
        pages.add_person(["sales"], "milo", "tova milo", "milo")
        instance = pages.instance
    sys.stdout.write(dumps_ldif(instance))
    return 0


def _cmd_ldapurl(args) -> int:
    from .ldapx.url import parse_ldap_url

    parsed = parse_ldap_url(args.url)
    print("scheme:     %s" % parsed.scheme)
    print("host:       %s" % (parsed.host or "(default)"))
    print("port:       %s" % (parsed.port or "(default)"))
    print("base dn:    %s" % (parsed.base or "(root)"))
    print("attributes: %s" % (", ".join(parsed.attributes) or "(all)"))
    print("scope:      %s" % parsed.scope)
    print("filter:     %s" % parsed.filter_text)
    print("query:      %s" % parsed.to_query())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query network directories (SIGMOD 1999 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--schema", default="standard",
                       help="schema preset: standard, synthetic, qos, tops")
        p.add_argument("--page-size", type=int, default=16,
                       help="blocking factor B (entries per page)")
        p.add_argument("--buffer-pages", type=int, default=8,
                       help="buffer pool capacity in pages")
        p.add_argument("--int-index", action="append", metavar="ATTR",
                       help="build a B+tree index on this int attribute")
        p.add_argument("--string-index", action="append", metavar="ATTR",
                       help="build a string index on this attribute")

    query = sub.add_parser("query", help="run a query against an LDIF file")
    query.add_argument("file")
    query.add_argument("query", help="query in the paper's syntax")
    query.add_argument("--io", action="store_true", help="print cost to stderr")
    common(query)
    query.set_defaults(handler=_cmd_query)

    explain_cmd = sub.add_parser("explain", help="show the query plan")
    explain_cmd.add_argument("file")
    explain_cmd.add_argument("query")
    explain_cmd.add_argument("--analyze", action="store_true",
                             help="also run each node and report actual sizes")
    common(explain_cmd)
    explain_cmd.set_defaults(handler=_cmd_explain)

    stats_cmd = sub.add_parser("stats", help="print directory statistics")
    stats_cmd.add_argument("file")
    common(stats_cmd)
    stats_cmd.set_defaults(handler=_cmd_stats)

    dump = sub.add_parser("dump-example", help="write a sample directory as LDIF")
    dump.add_argument("which", choices=("qos", "tops", "whitepages"))
    dump.set_defaults(handler=_cmd_dump_example)

    url = sub.add_parser("ldapurl", help="parse an RFC 2255 LDAP URL")
    url.add_argument("url")
    url.set_defaults(handler=_cmd_ldapurl)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
