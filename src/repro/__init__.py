"""repro -- a reproduction of "Querying Network Directories" (SIGMOD 1999).

The package implements the paper's network directory data model, the query
language family L0--L3, the external-memory evaluation algorithms with exact
I/O accounting on a simulated block device, an LDAP baseline, a simulated
distributed deployment, and the two motivating DEN applications (QoS/SLA
policies and TOPS telephony).

Quickstart::

    from repro import DirectorySchema, DirectoryInstance, parse_query
    from repro.engine import QueryEngine

    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_class("dcObject", {"dc"})
    inst = DirectoryInstance(schema)
    inst.add("dc=com", ["dcObject"], dc="com")
    inst.add("dc=att, dc=com", ["dcObject"], dc="att")

    engine = QueryEngine.from_instance(inst)
    result = engine.run(parse_query("(dc=com ? sub ? dc=att)"))
    print([str(e.dn) for e in result.entries])
"""

from .model import (
    DN,
    ROOT_DN,
    RDN,
    DirectoryInstance,
    DirectorySchema,
    Entry,
    InstanceError,
    SchemaError,
)
from .query import (
    Q,
    QueryBuilder,
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    Scope,
    SimpleAggSelect,
    evaluate,
    language_level,
    parse_query,
)

__version__ = "1.0.0"

__all__ = [
    "DN",
    "ROOT_DN",
    "RDN",
    "DirectoryInstance",
    "DirectorySchema",
    "Entry",
    "InstanceError",
    "SchemaError",
    "Q",
    "QueryBuilder",
    "And",
    "AtomicQuery",
    "Diff",
    "EmbeddedRef",
    "HierarchySelect",
    "Or",
    "Query",
    "Scope",
    "SimpleAggSelect",
    "evaluate",
    "language_level",
    "parse_query",
    "__version__",
]
