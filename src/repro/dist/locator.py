"""DNS-style server location for the hierarchical namespace (Section 3.3).

Domains register (primary and optionally secondary) servers for the
subtree rooted at the domain entry; subdomains may be delegated to other
servers.  Locating the owner of a dn walks up the dn's ancestors looking
for the most specific registration -- "these directory servers can be
located efficiently using mechanisms similar to those used in DNS"
(Section 8.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..model.dn import DN, ROOT_DN
from .errors import LocatorError

__all__ = ["ServerLocator", "LocatorError"]


class ServerLocator:
    """The registry mapping namespace subtrees to server names."""

    def __init__(self) -> None:
        self._primary: Dict[DN, str] = {}
        self._secondaries: Dict[DN, List[str]] = {}
        self.lookups = 0

    def register(
        self,
        context: Union[DN, str],
        primary: str,
        secondaries: Optional[List[str]] = None,
    ) -> None:
        """Register the owners of the subtree rooted at ``context``.  A more
        specific registration (a subdomain) shadows its ancestors."""
        if isinstance(context, str):
            context = DN.parse(context)
        self._primary[context] = primary
        self._secondaries[context] = list(secondaries or [])

    def locate(self, dn: Union[DN, str], prefer_secondary: bool = False) -> str:
        """The server owning ``dn``: the registration of the most specific
        registered ancestor (or the dn itself)."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        self.lookups += 1
        probe = dn
        while True:
            if probe in self._primary:
                if prefer_secondary and self._secondaries[probe]:
                    return self._secondaries[probe][0]
                return self._primary[probe]
            if probe.is_null():
                raise LocatorError(
                    "no server owns %s" % dn, code=LocatorError.NO_OWNER
                )
            probe = probe.parent if probe.depth() > 1 else ROOT_DN

    def contexts_of(self, server: str) -> List[DN]:
        """The naming contexts registered to a server (primary role)."""
        return sorted(
            (context for context, owner in self._primary.items() if owner == server),
            key=lambda context: context.key(),
        )

    def __repr__(self) -> str:
        return "ServerLocator(%d contexts)" % len(self._primary)
