"""Distributed query evaluation (Section 8.3).

The paper's strategy, verbatim: "each atomic query, whose base dn is
managed by a directory server different from the queried server, is issued
to the directory server that manages the base dn of the atomic query ...
The results of those atomic queries are shipped to the original queried
directory server, which then computes the query result using the
algorithms described previously."

:class:`FederatedDirectory` implements exactly that:

- a :class:`~repro.dist.locator.ServerLocator` (DNS-style) maps dns to
  owning servers;
- :meth:`FederatedDirectory.query` is issued *at* some server (the
  "closest" one); atomic leaves are routed to their owners -- including
  every server owning a delegated subdomain inside the leaf's scope -- and
  results are shipped back over the counted network;
- the queried server combines the shipped sorted lists with its local
  operator algorithms (it reuses the ordinary
  :class:`~repro.engine.QueryEngine` with the atomic hook overridden).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..engine.engine import QueryEngine, QueryResult
from ..engine.merge import boolean_merge
from ..model.dn import DN
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..query.ast import AtomicQuery, Query
from ..query.parser import parse_query
from ..storage.runs import Run, RunWriter
from .locator import ServerLocator
from .network import SimulatedNetwork
from .server import DirectoryServer

__all__ = ["FederatedDirectory", "FederatedResult"]


class FederatedResult(QueryResult):
    """A query result annotated with the network traffic it caused."""

    def __init__(self, entries, io, elapsed, messages: int, entries_shipped: int):
        super().__init__(entries, io, elapsed)
        self.messages = messages
        self.entries_shipped = entries_shipped

    def __repr__(self) -> str:
        return "FederatedResult(%d entries, messages=%d, shipped=%d)" % (
            len(self.entries),
            self.messages,
            self.entries_shipped,
        )


class FederatedDirectory:
    """A set of directory servers jointly serving one namespace."""

    def __init__(self, schema: DirectorySchema, network: Optional[SimulatedNetwork] = None):
        self.schema = schema
        self.network = network or SimulatedNetwork()
        self.locator = ServerLocator()
        self.servers: Dict[str, DirectoryServer] = {}

    # -- construction -----------------------------------------------------

    def add_server(self, server: DirectoryServer) -> DirectoryServer:
        self.servers[server.name] = server
        for context in server.contexts:
            self.locator.register(context, server.name)
        return server

    @classmethod
    def partition(
        cls,
        instance: DirectoryInstance,
        assignments: Dict[str, List[Union[DN, str]]],
        page_size: int = 16,
        buffer_pages: int = 8,
        network: Optional[SimulatedNetwork] = None,
    ) -> "FederatedDirectory":
        """Split one logical instance across servers.

        ``assignments`` maps server name to the naming contexts it owns.
        Each entry goes to the server of its *most specific* registered
        context (delegated subdomains shadow their parents, as in DNS).
        """
        fed = cls(instance.schema, network)
        for name, contexts in assignments.items():
            dn_contexts = [
                context if isinstance(context, DN) else DN.parse(context)
                for context in contexts
            ]
            fed.add_server(
                DirectoryServer(
                    name,
                    instance.schema,
                    dn_contexts,
                    page_size=page_size,
                    buffer_pages=buffer_pages,
                )
            )
        buckets: Dict[str, List] = {name: [] for name in assignments}
        for entry in instance:
            owner = fed.locator.locate(entry.dn)
            buckets[owner].append(entry)
        for name, entries in buckets.items():
            fed.servers[name].load(entries)
        return fed

    # -- querying ----------------------------------------------------------

    def query(self, at: str, query: Union[Query, str]) -> FederatedResult:
        """Issue ``query`` at server ``at`` and evaluate it distributedly."""
        if isinstance(query, str):
            query = parse_query(query)
        coordinator = self.servers[at]
        engine = _CoordinatorEngine(self, coordinator)
        messages_before = self.network.messages
        shipped_before = self.network.entries_shipped
        result = engine.run(query)
        return FederatedResult(
            result.entries,
            result.io,
            result.elapsed,
            self.network.messages - messages_before,
            self.network.entries_shipped - shipped_before,
        )

    def owners_for_atomic(self, query: AtomicQuery) -> List[str]:
        """Every server whose holdings can intersect the atomic query's
        scope: the owner of the base dn plus, for non-base scopes, the
        owners of delegated contexts inside the base's subtree."""
        owners = [self.locator.locate(query.base)] if not query.base.is_null() else []
        if query.base.is_null():
            owners = sorted(self.servers)
        elif query.scope != "base":
            for name, server in sorted(self.servers.items()):
                if name in owners:
                    continue
                for context in server.contexts:
                    if query.base.is_prefix_of(context):
                        owners.append(name)
                        break
        return owners

    def total_entries(self) -> int:
        return sum(server.entry_count() for server in self.servers.values())

    def __repr__(self) -> str:
        return "FederatedDirectory(%d servers, %d entries)" % (
            len(self.servers),
            self.total_entries(),
        )


class _CoordinatorEngine(QueryEngine):
    """The queried server's engine with atomic leaves routed by ownership."""

    def __init__(self, federation: FederatedDirectory, coordinator: DirectoryServer):
        super().__init__(coordinator.engine.store)
        self.federation = federation
        self.coordinator = coordinator

    def atomic_run(self, query: AtomicQuery) -> Run:
        owners = self.federation.owners_for_atomic(query)
        partial_runs: List[Run] = []
        for owner in owners:
            server = self.federation.servers[owner]
            if server is self.coordinator:
                partial_runs.append(server.evaluate_atomic(query))
                continue
            # Remote leaf: request out, result entries shipped back.
            self.federation.network.send(
                self.coordinator.name, owner, "atomic-request"
            )
            remote = server.evaluate_atomic(query)
            entries = remote.to_list()
            remote.free()
            self.federation.network.send(
                owner, self.coordinator.name, "atomic-result", len(entries)
            )
            writer = RunWriter(self.pager)
            writer.extend(entries)
            partial_runs.append(writer.close())
        if not partial_runs:
            return RunWriter(self.pager).close()
        # All partial runs now live on the coordinator's pager; shipped
        # lists are sorted and disjoint (ownership partitions the
        # namespace), so union merges keep everything sorted.
        combined = partial_runs[0]
        for run in partial_runs[1:]:
            merged = boolean_merge(self.pager, "or", combined, run)
            combined.free()
            run.free()
            combined = merged
        return combined
