"""Distributed query evaluation (Section 8.3).

The paper's strategy, verbatim: "each atomic query, whose base dn is
managed by a directory server different from the queried server, is issued
to the directory server that manages the base dn of the atomic query ...
The results of those atomic queries are shipped to the original queried
directory server, which then computes the query result using the
algorithms described previously."

:class:`FederatedDirectory` implements exactly that:

- a :class:`~repro.dist.locator.ServerLocator` (DNS-style) maps dns to
  owning servers;
- :meth:`FederatedDirectory.query` is issued *at* some server (the
  "closest" one); atomic leaves are routed to their owners -- including
  every server owning a delegated subdomain inside the leaf's scope -- and
  results are shipped back over the counted network;
- the queried server combines the shipped sorted lists with its local
  operator algorithms (it reuses the ordinary
  :class:`~repro.engine.QueryEngine` with the atomic hook overridden).

When the network can fail (a :class:`~repro.dist.faults.FaultInjector`),
:meth:`FederatedDirectory.enable_resilience` arms the availability story
(footnote 4): every remote leaf goes through a per-server circuit breaker
and bounded retries with backoff, and on exhaustion degrades down a
ladder -- serve the last known good sublist, fail over to an attached
replica router, or answer with the reachable servers only, marking the
:class:`FederatedResult` partial (``strict`` mode re-raises instead).
With resilience off and a fault-free network the query path is exactly
the historical one.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Union

from ..cache import QueryCache, atomic_fingerprint, query_footprint
from ..engine.engine import QueryEngine, QueryResult
from ..engine.merge import boolean_merge
from ..exec import WorkerPool
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..obs.log import NULL_LOGGER
from ..obs.metrics import get_registry
from ..obs.trace import NULL_TRACER
from ..query.ast import AtomicQuery, Query
from ..query.parser import parse_query
from ..storage.runs import Run, RunWriter
from .errors import NetworkError, ReplicationError
from .locator import ServerLocator
from .network import SimulatedNetwork
from .resilience import CircuitBreaker, ResiliencePolicy, StaleStore
from .server import DirectoryServer

__all__ = ["FederatedDirectory", "FederatedResult"]


class FederatedResult(QueryResult):
    """A query result annotated with the network traffic it caused and,
    under resilience, how degraded the answer is."""

    def __init__(
        self,
        entries,
        io,
        elapsed,
        messages: int,
        entries_shipped: int,
        retries: int = 0,
        missing_servers: Optional[List[str]] = None,
        warnings: Optional[List[str]] = None,
        eval_errors: int = 0,
    ):
        super().__init__(entries, io, elapsed, eval_errors=eval_errors)
        self.messages = messages
        self.entries_shipped = entries_shipped
        #: Remote attempts beyond the first, across all leaves.
        self.retries = retries
        #: Servers whose data is absent from this answer.
        self.missing_servers = list(missing_servers or [])
        #: Human-readable degradation notes (stale serves, failovers,
        #: missing servers), empty for a clean answer.
        self.warnings = list(warnings or [])

    @property
    def partial(self) -> bool:
        """True when at least one owner's data is missing entirely."""
        return bool(self.missing_servers)

    def __repr__(self) -> str:
        extra = ", partial=%s" % sorted(self.missing_servers) if self.partial else ""
        return "FederatedResult(%d entries, messages=%d, shipped=%d%s)" % (
            len(self.entries),
            self.messages,
            self.entries_shipped,
            extra,
        )


class FederatedDirectory:
    """A set of directory servers jointly serving one namespace."""

    def __init__(
        self,
        schema: DirectorySchema,
        network: Optional[SimulatedNetwork] = None,
        leaf_cache_bytes: int = 256 * 1024,
        tracer=None,
        metrics=None,
        max_workers: int = 1,
        log=None,
        heatmap=None,
    ):
        #: Optional :class:`~repro.obs.heatmap.SubtreeHeatMap`; per-server
        #: shipping records under the shipped leaf's base subtree (updated
        #: from scatter workers -- the map is thread-safe).
        self.heatmap = heatmap
        self.schema = schema
        self.network = network or SimulatedNetwork()
        self.locator = ServerLocator()
        self.servers: Dict[str, DirectoryServer] = {}
        #: Structured event logger shared by the resilience ladder (see
        #: :mod:`repro.obs.log`); no-op by default.
        self.log = log if log is not None else NULL_LOGGER
        #: Scatter pool for remote atomic leaves.  The default single
        #: worker runs everything inline -- the historical sequential
        #: path, bit for bit (see :meth:`enable_parallelism`).
        self.pool = WorkerPool(max_workers, name="fed-scatter")
        #: The coordinator-side tracer; spans cross to remote servers via
        #: the trace context carried with each request.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else get_registry()
        self._m_remote_requests = self.metrics.counter(
            "repro_fed_remote_requests_total",
            "Atomic sub-queries routed to a remote owner",
            labelnames=("server",),
        )
        self._m_shipped_sublists = self.metrics.counter(
            "repro_fed_shipped_sublists_total",
            "Result sublists shipped back from remote servers",
            labelnames=("server",),
        )
        self._m_shipped_entries = self.metrics.counter(
            "repro_fed_shipped_entries_total",
            "Entries shipped back from remote servers",
            labelnames=("server",),
        )
        self._m_leaf_cache = self.metrics.counter(
            "repro_fed_leaf_cache_lookups_total",
            "Remote-sublist cache lookups",
            labelnames=("outcome",),
        )
        self._m_retries = self.metrics.counter(
            "repro_fed_retries_total",
            "Remote atomic call retries",
            labelnames=("server",),
        )
        self._m_remote_failures = self.metrics.counter(
            "repro_fed_remote_failures_total",
            "Remote atomic call failures (per attempt)",
            labelnames=("server", "code"),
        )
        self._m_degraded = self.metrics.counter(
            "repro_fed_degraded_total",
            "Remote leaves answered by a degradation rung",
            labelnames=("mode",),
        )
        #: Cache of shipped remote sublists, keyed ``(server, atomic
        #: fingerprint)`` and tagged by the owning server so one origin can
        #: be dropped wholesale.  ``leaf_cache_bytes=0`` disables it.
        self.leaf_cache: Optional[QueryCache] = (
            QueryCache(byte_budget=leaf_cache_bytes) if leaf_cache_bytes else None
        )
        #: Armed by :meth:`enable_resilience`; None means the historical
        #: fail-fast behaviour (a network fault propagates).
        self.resilience: Optional[ResiliencePolicy] = None
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._stale: Optional[StaleStore] = None
        #: Per-server replica routers for failover degradation
        #: (:meth:`attach_replica`).
        self.replicas: Dict[str, "AvailabilityRouter"] = {}

    # -- construction -----------------------------------------------------

    def add_server(self, server: DirectoryServer) -> DirectoryServer:
        self.servers[server.name] = server
        if self.tracer.enabled and not server.tracer.enabled:
            # A tracing federation gives each member its own tracer (one
            # per pager, so I/O probes attribute correctly); remote spans
            # still join the coordinator's trace via the carried context.
            from ..obs.trace import Tracer

            server.tracer = Tracer()
        for context in server.contexts:
            self.locator.register(context, server.name)
        return server

    @classmethod
    def partition(
        cls,
        instance: DirectoryInstance,
        assignments: Dict[str, List[Union[DN, str]]],
        page_size: int = 16,
        buffer_pages: int = 8,
        network: Optional[SimulatedNetwork] = None,
        leaf_cache_bytes: int = 256 * 1024,
        tracer=None,
        metrics=None,
        max_workers: int = 1,
        log=None,
    ) -> "FederatedDirectory":
        """Split one logical instance across servers.

        ``assignments`` maps server name to the naming contexts it owns.
        Each entry goes to the server of its *most specific* registered
        context (delegated subdomains shadow their parents, as in DNS).
        """
        fed = cls(
            instance.schema,
            network,
            leaf_cache_bytes=leaf_cache_bytes,
            tracer=tracer,
            metrics=metrics,
            max_workers=max_workers,
            log=log,
        )
        for name, contexts in assignments.items():
            dn_contexts = [
                context if isinstance(context, DN) else DN.parse(context)
                for context in contexts
            ]
            fed.add_server(
                DirectoryServer(
                    name,
                    instance.schema,
                    dn_contexts,
                    page_size=page_size,
                    buffer_pages=buffer_pages,
                )
            )
        buckets: Dict[str, List] = {name: [] for name in assignments}
        for entry in instance:
            owner = fed.locator.locate(entry.dn)
            buckets[owner].append(entry)
        for name, entries in buckets.items():
            fed.servers[name].load(entries)
        return fed

    # -- parallelism -------------------------------------------------------

    def enable_parallelism(self, max_workers: int) -> WorkerPool:
        """Replace the scatter pool: remote atomic leaves fan out across
        up to ``max_workers`` threads, gathered back in deterministic
        owner order.  ``max_workers=1`` restores the inline sequential
        path.  Returns the new pool."""
        self.pool.close()
        self.pool = WorkerPool(max_workers, name="fed-scatter")
        return self.pool

    def close(self) -> None:
        """Release the scatter pool's threads (idempotent)."""
        self.pool.close()

    # -- resilience --------------------------------------------------------

    def enable_resilience(
        self, policy: Optional[ResiliencePolicy] = None, **kwargs
    ) -> ResiliencePolicy:
        """Arm retry + circuit breaking + degradation for remote leaves.

        Pass a :class:`ResiliencePolicy`, or keyword arguments to build
        one.  Returns the active policy.
        """
        if policy is not None and kwargs:
            raise ValueError("pass a policy or keyword arguments, not both")
        self.resilience = policy if policy is not None else ResiliencePolicy(**kwargs)
        self._breakers = {}
        self._stale = (
            StaleStore(self.resilience.stale_keys)
            if self.resilience.serve_stale
            else None
        )
        return self.resilience

    def attach_replica(self, server_name: str, router: "AvailabilityRouter") -> None:
        """Register a replica router as the failover target for one
        server: when its owner is unreachable past retries, atomic leaves
        are answered by the router (within its staleness bound)."""
        if server_name not in self.servers:
            raise KeyError(server_name)
        self.replicas[server_name] = router

    def breaker_for(self, server_name: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one server.
        Creation is locked: two scatter workers racing here must get the
        same breaker, not two half-counted ones."""
        if self.resilience is None:
            raise RuntimeError("resilience is not enabled")
        with self._breaker_lock:
            breaker = self._breakers.get(server_name)
            if breaker is None:
                breaker = self.resilience.make_breaker(
                    server_name, metrics=self.metrics, log=self.log
                )
                self._breakers[server_name] = breaker
            return breaker

    @property
    def breakers(self) -> Dict[str, CircuitBreaker]:
        """Live breakers by server name (only servers that failed at
        least once, or were queried through :meth:`breaker_for`)."""
        return dict(self._breakers)

    def _now(self) -> float:
        """The network's simulated clock (0.0 on a clockless network)."""
        return getattr(self.network, "now", 0.0)

    def _sleep(self, seconds: float) -> None:
        sleep = getattr(self.network, "sleep", None)
        if sleep is not None:
            sleep(seconds)

    # -- querying ----------------------------------------------------------

    def query(
        self, at: str, query: Union[Query, str], budget=None
    ) -> FederatedResult:
        """Issue ``query`` at server ``at`` and evaluate it distributedly.

        ``budget`` caps the coordinator-side evaluation (the pages
        materialised and merged on the queried server's pager, wall
        clock, intermediate sizes); a breach frees every partial run and
        raises :class:`~repro.obs.budget.BudgetExceeded`."""
        if isinstance(query, str):
            query = parse_query(query)
        coordinator = self.servers[at]
        engine = _CoordinatorEngine(self, coordinator)
        messages_before = self.network.messages
        shipped_before = self.network.entries_shipped
        with self.tracer.span("fed-query", at=at):
            result = engine.run(query, budget=budget)
        return FederatedResult(
            result.entries,
            result.io,
            result.elapsed,
            self.network.messages - messages_before,
            self.network.entries_shipped - shipped_before,
            retries=engine.retries,
            missing_servers=engine.missing_servers,
            warnings=engine.warnings,
            eval_errors=result.eval_errors,
        )

    def owners_for_atomic(self, query: AtomicQuery) -> List[str]:
        """Every server whose holdings can intersect the atomic query's
        scope: the owner of the base dn plus, for non-base scopes, the
        owners of delegated contexts inside the base's subtree."""
        owners = [self.locator.locate(query.base)] if not query.base.is_null() else []
        if query.base.is_null():
            owners = sorted(self.servers)
        elif query.scope != "base":
            for name, server in sorted(self.servers.items()):
                if name in owners:
                    continue
                for context in server.contexts:
                    if query.base.is_prefix_of(context):
                        owners.append(name)
                        break
        return owners

    # -- leaf-cache maintenance --------------------------------------------

    def invalidate_dn(self, dn: Union[DN, str], subtree: bool = True) -> int:
        """Drop cached remote sublists whose footprint touches ``dn`` (by
        default its whole subtree -- the unit remote updates arrive in)."""
        if self.leaf_cache is None:
            return 0
        if isinstance(dn, str):
            dn = DN.parse(dn)
        return self.leaf_cache.invalidate(dn, subtree=subtree)

    def refresh_server(self, name: str, entries: Iterable[Entry]) -> None:
        """Replace one server's holdings (replication refresh) and drop
        every cached sublist that server originated."""
        self.servers[name].reload(entries)
        if self.leaf_cache is not None:
            self.leaf_cache.invalidate_tag(name)

    def delegate_context(self, context: Union[DN, str], server_name: str) -> None:
        """Referral-aware invalidation: re-register a naming context with a
        (new) owner and drop cached sublists under the moved context --
        they may now belong to a different server."""
        if isinstance(context, str):
            context = DN.parse(context)
        self.locator.register(context, server_name)
        if context not in self.servers[server_name].contexts:
            self.servers[server_name].contexts.append(context)
        if self.leaf_cache is not None:
            self.leaf_cache.invalidate(context, subtree=True)

    def total_entries(self) -> int:
        return sum(server.entry_count() for server in self.servers.values())

    def __repr__(self) -> str:
        return "FederatedDirectory(%d servers, %d entries)" % (
            len(self.servers),
            self.total_entries(),
        )


class _LeafOutcome:
    """One owner's share of an atomic scatter, filled in by the worker.

    Workers only talk to the network and the remote server and record
    their bookkeeping *here*; the gather loop folds outcomes into the
    engine and the coordinator's pager in owner order, so warnings,
    cache admissions and page I/O sequence identically however the
    threads interleaved."""

    __slots__ = ("owner", "key", "entries", "fresh", "missing", "retries",
                 "warnings")

    def __init__(self, owner: str, key: Optional[str] = None):
        self.owner = owner
        self.key = key
        #: Shipped entries (None while pending, or when degraded to a
        #: partial answer without this owner).
        self.entries: Optional[List[Entry]] = None
        #: Whether ``entries`` came from the live owner (cacheable), as
        #: opposed to the leaf cache / stale store / a replica.
        self.fresh = False
        self.missing = False
        self.retries = 0
        self.warnings: List[str] = []


class _CoordinatorEngine(QueryEngine):
    """The queried server's engine with atomic leaves routed by ownership."""

    def __init__(self, federation: FederatedDirectory, coordinator: DirectoryServer):
        super().__init__(
            coordinator.engine.store,
            tracer=federation.tracer,
            pool=federation.pool,
            log=federation.log,
            heatmap=federation.heatmap,
        )
        if federation.tracer.enabled:
            # Rebind the I/O probe to *this* coordinator's pager (queries
            # may be issued at different servers over the tracer's life).
            federation.tracer.add_probe("io", self.pager.stats)
        self.federation = federation
        self.coordinator = coordinator
        #: Degradation bookkeeping for this one query, folded into the
        #: :class:`FederatedResult` by :meth:`FederatedDirectory.query`.
        self.retries = 0
        self.missing_servers: List[str] = []
        self.warnings: List[str] = []
        policy = federation.resilience
        deadline_s = policy.retry.deadline_s if policy is not None else None
        self._deadline = (
            federation._now() + deadline_s if deadline_s is not None else None
        )

    def atomic_run(self, query: AtomicQuery) -> Run:
        """Scatter the leaf to its owners, gather in owner order.

        The scatter phase fans the *remote* owners out over the
        federation's :class:`~repro.exec.WorkerPool` (inline when the
        pool is single-worker); remote tasks touch only the network and
        the remote servers' pagers.  The gather barrier then walks the
        outcomes in owner order on the calling thread, doing every
        coordinator-pager operation -- the coordinator-local leaf's own
        evaluation, materialising shipped sublists, the union merges --
        exactly where the sequential loop did, so a single-worker pool
        reproduces the historical page-op sequence bit for bit.
        """
        fed = self.federation
        owners = fed.owners_for_atomic(query)
        cache = fed.leaf_cache
        tracer = fed.tracer
        want_key = cache is not None or fed._stale is not None
        scatter_context = tracer.context()

        def scatter(owner: str) -> _LeafOutcome:
            server = fed.servers[owner]
            key = (
                "%s|%s" % (owner, atomic_fingerprint(query)) if want_key else None
            )
            outcome = _LeafOutcome(owner, key)
            if server is self.coordinator:
                return outcome  # evaluated at the gather, on our pager
            token = tracer.adopt(scatter_context)
            try:
                # Served from the sublist cache when possible, otherwise
                # request out + result entries shipped back.
                if cache is not None:
                    hit = cache.get(key)
                    if hit is not None:
                        fed._m_leaf_cache.inc(outcome="hit")
                        outcome.entries = list(hit.entries)
                        return outcome
                    fed._m_leaf_cache.inc(outcome="miss")
                self._fetch_remote(outcome, server, query)
            finally:
                tracer.release(token)
            return outcome

        outcomes = fed.pool.map_ordered(scatter, owners)
        partial_runs: List[Run] = []
        try:
            for outcome in outcomes:
                self.retries += outcome.retries
                self.warnings.extend(outcome.warnings)
                if outcome.missing:
                    self.missing_servers.append(outcome.owner)
                server = fed.servers[outcome.owner]
                if server is self.coordinator:
                    partial_runs.append(
                        server.evaluate_atomic(
                            query, trace_context=tracer.context()
                        )
                    )
                    continue
                if outcome.entries is None:
                    continue  # degraded to a partial answer without this owner
                if outcome.fresh:
                    if cache is not None:
                        # Weight by what a hit saves: the round trip plus the
                        # shipped entries (a network-cost proxy in I/O units).
                        cache.put(
                            outcome.key,
                            str(query),
                            outcome.entries,
                            query_footprint(query),
                            cost_io=2 + len(outcome.entries),
                            tag=outcome.owner,
                        )
                    if fed._stale is not None:
                        fed._stale.put(outcome.key, outcome.entries)
                partial_runs.append(self._materialise(outcome.entries))
            if not partial_runs:
                return RunWriter(self.pager).close()
            # All partial runs now live on the coordinator's pager; shipped
            # lists are sorted and disjoint (ownership partitions the
            # namespace), so union merges keep everything sorted.
            combined = partial_runs.pop(0)
            while partial_runs:
                run = partial_runs.pop(0)
                try:
                    merged = boolean_merge(self.pager, "or", combined, run)
                finally:
                    combined.free()
                    run.free()
                combined = merged
            return combined
        except BaseException:
            for run in partial_runs:
                run.free()
            raise

    # -- remote calls -------------------------------------------------------

    def _materialise(self, entries) -> Run:
        writer = RunWriter(self.pager)
        writer.extend(entries)
        return writer.close()

    def _remote_once(self, owner: str, server: DirectoryServer,
                     query: AtomicQuery) -> List[Entry]:
        """One remote round trip: request out, evaluate there, results
        shipped back.  Raises :class:`NetworkError` if either message
        faults."""
        fed = self.federation
        tracer = fed.tracer
        with tracer.span("remote-atomic", server=owner) as span:
            context = tracer.context()
            trace_id = context["trace_id"] if context else None
            fed.network.send(
                self.coordinator.name, owner, "atomic-request",
                trace_id=trace_id,
            )
            fed._m_remote_requests.inc(server=owner)
            remote = server.evaluate_atomic(query, trace_context=context)
            try:
                entries = remote.to_list()
            finally:
                remote.free()
            fed.network.send(
                owner, self.coordinator.name, "atomic-result", len(entries),
                trace_id=trace_id,
            )
            fed._m_shipped_sublists.inc(server=owner)
            fed._m_shipped_entries.inc(len(entries), server=owner)
            if fed.heatmap is not None:
                fed.heatmap.record_shipped(query.base, len(entries))
            span.set(rows=len(entries))
        return entries

    def _fetch_remote(
        self, outcome: _LeafOutcome, server: DirectoryServer,
        query: AtomicQuery,
    ) -> None:
        """Fill ``outcome`` with the remote leaf's entries through retry +
        breaker + degradation.

        Fresh entries (``outcome.fresh``) may be cached; stale or
        replica-served ones may not; ``entries is None`` plus
        ``outcome.missing`` means the owner is absent from a partial
        answer.  Runs on a scatter worker: all bookkeeping goes through
        the outcome, never the engine.
        """
        fed = self.federation
        owner = outcome.owner
        policy = fed.resilience
        if policy is None:
            outcome.entries = self._remote_once(owner, server, query)
            outcome.fresh = True
            return
        breaker = fed.breaker_for(owner)
        last_error: Optional[NetworkError] = None
        if not breaker.allow(fed._now()):
            fed._m_remote_failures.inc(server=owner, code=NetworkError.BREAKER_OPEN)
            last_error = NetworkError(
                "circuit breaker open for %s" % owner,
                code=NetworkError.BREAKER_OPEN,
                server=owner,
            )
        else:
            attempts = 0
            while True:
                attempts += 1
                try:
                    entries = self._remote_once(owner, server, query)
                    breaker.record_success(fed._now())
                    outcome.entries = entries
                    outcome.fresh = True
                    return
                except NetworkError as exc:
                    last_error = exc
                    breaker.record_failure(fed._now())
                    fed._m_remote_failures.inc(server=owner, code=exc.code)
                    if not policy.retry.should_retry(
                        attempts, fed._now(), self._deadline
                    ) or not breaker.allow(fed._now()):
                        break
                    outcome.retries += 1
                    fed._m_retries.inc(server=owner)
                    if fed.log.enabled:
                        fed.log.warning(
                            "fed.retry",
                            server=owner,
                            attempt=attempts,
                            code=exc.code,
                        )
                    fed._sleep(policy.retry.backoff(attempts))
        self._degrade(outcome, query, last_error)

    def _degrade(
        self, outcome: _LeafOutcome, query: AtomicQuery,
        error: Optional[NetworkError],
    ) -> None:
        """The degradation ladder once retries are exhausted: stale,
        replica, partial (or raise in strict mode)."""
        fed = self.federation
        owner = outcome.owner
        policy = fed.resilience
        cause = error.code if error is not None else "unknown"
        if fed._stale is not None and outcome.key is not None:
            stale = fed._stale.get(outcome.key)
            if stale is not None:
                fed._m_degraded.inc(mode="stale")
                if fed.log.enabled:
                    fed.log.warning(
                        "fed.degraded", server=owner, mode="stale", cause=cause
                    )
                outcome.warnings.append(
                    "%s unreachable (%s); served last known good sublist"
                    % (owner, cause)
                )
                outcome.entries = list(stale)
                return
        router = fed.replicas.get(owner)
        if router is not None:
            try:
                entries = router.evaluate(query)
            except ReplicationError as exc:
                outcome.warnings.append(
                    "%s unreachable (%s); replica failover failed (%s)"
                    % (owner, cause, exc.code)
                )
            else:
                fed._m_degraded.inc(mode="replica")
                if fed.log.enabled:
                    fed.log.warning(
                        "fed.degraded", server=owner, mode="replica", cause=cause
                    )
                outcome.warnings.append(
                    "%s unreachable (%s); served by replica %s"
                    % (owner, cause, router.served_by[-1])
                )
                outcome.entries = entries
                return
        if policy.mode == "strict":
            raise error if error is not None else NetworkError(
                "%s unreachable" % owner, code=NetworkError.OTHER, server=owner
            )
        fed._m_degraded.inc(mode="partial")
        if fed.log.enabled:
            fed.log.warning(
                "fed.degraded", server=owner, mode="partial", cause=cause
            )
        outcome.missing = True
        outcome.warnings.append(
            "%s unreachable (%s); result is partial without it" % (owner, cause)
        )
