"""Distributed query evaluation (Section 8.3).

The paper's strategy, verbatim: "each atomic query, whose base dn is
managed by a directory server different from the queried server, is issued
to the directory server that manages the base dn of the atomic query ...
The results of those atomic queries are shipped to the original queried
directory server, which then computes the query result using the
algorithms described previously."

:class:`FederatedDirectory` implements exactly that:

- a :class:`~repro.dist.locator.ServerLocator` (DNS-style) maps dns to
  owning servers;
- :meth:`FederatedDirectory.query` is issued *at* some server (the
  "closest" one); atomic leaves are routed to their owners -- including
  every server owning a delegated subdomain inside the leaf's scope -- and
  results are shipped back over the counted network;
- the queried server combines the shipped sorted lists with its local
  operator algorithms (it reuses the ordinary
  :class:`~repro.engine.QueryEngine` with the atomic hook overridden).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..cache import QueryCache, atomic_fingerprint, query_footprint
from ..engine.engine import QueryEngine, QueryResult
from ..engine.merge import boolean_merge
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..obs.metrics import get_registry
from ..obs.trace import NULL_TRACER
from ..query.ast import AtomicQuery, Query
from ..query.parser import parse_query
from ..storage.runs import Run, RunWriter
from .locator import ServerLocator
from .network import SimulatedNetwork
from .server import DirectoryServer

__all__ = ["FederatedDirectory", "FederatedResult"]


class FederatedResult(QueryResult):
    """A query result annotated with the network traffic it caused."""

    def __init__(self, entries, io, elapsed, messages: int, entries_shipped: int):
        super().__init__(entries, io, elapsed)
        self.messages = messages
        self.entries_shipped = entries_shipped

    def __repr__(self) -> str:
        return "FederatedResult(%d entries, messages=%d, shipped=%d)" % (
            len(self.entries),
            self.messages,
            self.entries_shipped,
        )


class FederatedDirectory:
    """A set of directory servers jointly serving one namespace."""

    def __init__(
        self,
        schema: DirectorySchema,
        network: Optional[SimulatedNetwork] = None,
        leaf_cache_bytes: int = 256 * 1024,
        tracer=None,
        metrics=None,
    ):
        self.schema = schema
        self.network = network or SimulatedNetwork()
        self.locator = ServerLocator()
        self.servers: Dict[str, DirectoryServer] = {}
        #: The coordinator-side tracer; spans cross to remote servers via
        #: the trace context carried with each request.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else get_registry()
        self._m_remote_requests = self.metrics.counter(
            "repro_fed_remote_requests_total",
            "Atomic sub-queries routed to a remote owner",
            labelnames=("server",),
        )
        self._m_shipped_sublists = self.metrics.counter(
            "repro_fed_shipped_sublists_total",
            "Result sublists shipped back from remote servers",
            labelnames=("server",),
        )
        self._m_shipped_entries = self.metrics.counter(
            "repro_fed_shipped_entries_total",
            "Entries shipped back from remote servers",
            labelnames=("server",),
        )
        self._m_leaf_cache = self.metrics.counter(
            "repro_fed_leaf_cache_lookups_total",
            "Remote-sublist cache lookups",
            labelnames=("outcome",),
        )
        #: Cache of shipped remote sublists, keyed ``(server, atomic
        #: fingerprint)`` and tagged by the owning server so one origin can
        #: be dropped wholesale.  ``leaf_cache_bytes=0`` disables it.
        self.leaf_cache: Optional[QueryCache] = (
            QueryCache(byte_budget=leaf_cache_bytes) if leaf_cache_bytes else None
        )

    # -- construction -----------------------------------------------------

    def add_server(self, server: DirectoryServer) -> DirectoryServer:
        self.servers[server.name] = server
        if self.tracer.enabled and not server.tracer.enabled:
            # A tracing federation gives each member its own tracer (one
            # per pager, so I/O probes attribute correctly); remote spans
            # still join the coordinator's trace via the carried context.
            from ..obs.trace import Tracer

            server.tracer = Tracer()
        for context in server.contexts:
            self.locator.register(context, server.name)
        return server

    @classmethod
    def partition(
        cls,
        instance: DirectoryInstance,
        assignments: Dict[str, List[Union[DN, str]]],
        page_size: int = 16,
        buffer_pages: int = 8,
        network: Optional[SimulatedNetwork] = None,
        leaf_cache_bytes: int = 256 * 1024,
        tracer=None,
        metrics=None,
    ) -> "FederatedDirectory":
        """Split one logical instance across servers.

        ``assignments`` maps server name to the naming contexts it owns.
        Each entry goes to the server of its *most specific* registered
        context (delegated subdomains shadow their parents, as in DNS).
        """
        fed = cls(
            instance.schema,
            network,
            leaf_cache_bytes=leaf_cache_bytes,
            tracer=tracer,
            metrics=metrics,
        )
        for name, contexts in assignments.items():
            dn_contexts = [
                context if isinstance(context, DN) else DN.parse(context)
                for context in contexts
            ]
            fed.add_server(
                DirectoryServer(
                    name,
                    instance.schema,
                    dn_contexts,
                    page_size=page_size,
                    buffer_pages=buffer_pages,
                )
            )
        buckets: Dict[str, List] = {name: [] for name in assignments}
        for entry in instance:
            owner = fed.locator.locate(entry.dn)
            buckets[owner].append(entry)
        for name, entries in buckets.items():
            fed.servers[name].load(entries)
        return fed

    # -- querying ----------------------------------------------------------

    def query(self, at: str, query: Union[Query, str]) -> FederatedResult:
        """Issue ``query`` at server ``at`` and evaluate it distributedly."""
        if isinstance(query, str):
            query = parse_query(query)
        coordinator = self.servers[at]
        engine = _CoordinatorEngine(self, coordinator)
        messages_before = self.network.messages
        shipped_before = self.network.entries_shipped
        with self.tracer.span("fed-query", at=at):
            result = engine.run(query)
        return FederatedResult(
            result.entries,
            result.io,
            result.elapsed,
            self.network.messages - messages_before,
            self.network.entries_shipped - shipped_before,
        )

    def owners_for_atomic(self, query: AtomicQuery) -> List[str]:
        """Every server whose holdings can intersect the atomic query's
        scope: the owner of the base dn plus, for non-base scopes, the
        owners of delegated contexts inside the base's subtree."""
        owners = [self.locator.locate(query.base)] if not query.base.is_null() else []
        if query.base.is_null():
            owners = sorted(self.servers)
        elif query.scope != "base":
            for name, server in sorted(self.servers.items()):
                if name in owners:
                    continue
                for context in server.contexts:
                    if query.base.is_prefix_of(context):
                        owners.append(name)
                        break
        return owners

    # -- leaf-cache maintenance --------------------------------------------

    def invalidate_dn(self, dn: Union[DN, str], subtree: bool = True) -> int:
        """Drop cached remote sublists whose footprint touches ``dn`` (by
        default its whole subtree -- the unit remote updates arrive in)."""
        if self.leaf_cache is None:
            return 0
        if isinstance(dn, str):
            dn = DN.parse(dn)
        return self.leaf_cache.invalidate(dn, subtree=subtree)

    def refresh_server(self, name: str, entries: Iterable[Entry]) -> None:
        """Replace one server's holdings (replication refresh) and drop
        every cached sublist that server originated."""
        self.servers[name].reload(entries)
        if self.leaf_cache is not None:
            self.leaf_cache.invalidate_tag(name)

    def delegate_context(self, context: Union[DN, str], server_name: str) -> None:
        """Referral-aware invalidation: re-register a naming context with a
        (new) owner and drop cached sublists under the moved context --
        they may now belong to a different server."""
        if isinstance(context, str):
            context = DN.parse(context)
        self.locator.register(context, server_name)
        if context not in self.servers[server_name].contexts:
            self.servers[server_name].contexts.append(context)
        if self.leaf_cache is not None:
            self.leaf_cache.invalidate(context, subtree=True)

    def total_entries(self) -> int:
        return sum(server.entry_count() for server in self.servers.values())

    def __repr__(self) -> str:
        return "FederatedDirectory(%d servers, %d entries)" % (
            len(self.servers),
            self.total_entries(),
        )


class _CoordinatorEngine(QueryEngine):
    """The queried server's engine with atomic leaves routed by ownership."""

    def __init__(self, federation: FederatedDirectory, coordinator: DirectoryServer):
        super().__init__(coordinator.engine.store, tracer=federation.tracer)
        if federation.tracer.enabled:
            # Rebind the I/O probe to *this* coordinator's pager (queries
            # may be issued at different servers over the tracer's life).
            federation.tracer.add_probe("io", self.pager.stats)
        self.federation = federation
        self.coordinator = coordinator

    def atomic_run(self, query: AtomicQuery) -> Run:
        owners = self.federation.owners_for_atomic(query)
        cache = self.federation.leaf_cache
        tracer = self.federation.tracer
        partial_runs: List[Run] = []
        for owner in owners:
            server = self.federation.servers[owner]
            if server is self.coordinator:
                partial_runs.append(
                    server.evaluate_atomic(query, trace_context=tracer.context())
                )
                continue
            # Remote leaf: served from the sublist cache when possible,
            # otherwise request out + result entries shipped back.
            key = None
            if cache is not None:
                key = "%s|%s" % (owner, atomic_fingerprint(query))
                hit = cache.get(key)
                if hit is not None:
                    self.federation._m_leaf_cache.inc(outcome="hit")
                    writer = RunWriter(self.pager)
                    writer.extend(hit.entries)
                    partial_runs.append(writer.close())
                    continue
                self.federation._m_leaf_cache.inc(outcome="miss")
            with tracer.span("remote-atomic", server=owner) as span:
                context = tracer.context()
                trace_id = context["trace_id"] if context else None
                self.federation.network.send(
                    self.coordinator.name, owner, "atomic-request",
                    trace_id=trace_id,
                )
                self.federation._m_remote_requests.inc(server=owner)
                remote = server.evaluate_atomic(query, trace_context=context)
                entries = remote.to_list()
                remote.free()
                self.federation.network.send(
                    owner, self.coordinator.name, "atomic-result", len(entries),
                    trace_id=trace_id,
                )
                self.federation._m_shipped_sublists.inc(server=owner)
                self.federation._m_shipped_entries.inc(len(entries), server=owner)
                span.set(rows=len(entries))
            if cache is not None:
                # Weight by what a hit saves: the round trip plus the
                # shipped entries (a network-cost proxy in I/O units).
                cache.put(
                    key,
                    str(query),
                    entries,
                    query_footprint(query),
                    cost_io=2 + len(entries),
                    tag=owner,
                )
            writer = RunWriter(self.pager)
            writer.extend(entries)
            partial_runs.append(writer.close())
        if not partial_runs:
            return RunWriter(self.pager).close()
        # All partial runs now live on the coordinator's pager; shipped
        # lists are sorted and disjoint (ownership partitions the
        # namespace), so union merges keep everything sorted.
        combined = partial_runs[0]
        for run in partial_runs[1:]:
            merged = boolean_merge(self.pager, "or", combined, run)
            combined.free()
            run.free()
            combined = merged
        return combined
