"""Log-shipped replication with epoch-fenced failover.

Footnote 4 of the paper: "Secondary directory servers ensure that one
unreachable network will not necessarily cut off network directory
service."  This module is that availability story, rebuilt on the durable
write path of :mod:`repro.txn`:

- every mutation of the replication group commits through an
  :class:`~repro.storage.maintenance.UpdatableDirectory` (optionally a
  :class:`~repro.txn.durable.DurableDirectory` with a real WAL), producing
  a typed, lsn-stamped :class:`~repro.txn.records.ChangeRecord`;
- :meth:`ReplicatedContext.sync` ships the outstanding changelog suffix to
  each secondary, which applies it through
  :meth:`~repro.storage.maintenance.UpdatableDirectory.apply_records` --
  the *same* replay path crash recovery uses, so replication and recovery
  cannot drift apart;
- writes honour an acknowledgment level (``ack="primary"|"quorum"|"all"``)
  with per-replica acked-lsn tracking; a replica that fell behind the
  truncated changelog prefix catches up by *resync*: a checkpoint image
  plus the log suffix (for a durable primary, literally ``base.ldif`` +
  :meth:`~repro.txn.wal.WriteAheadLog.records_since`);
- failover is **epoch-fenced**: a monotone epoch stamps every shipped
  batch and write acknowledgment.  :meth:`ReplicatedContext.promote` picks
  the most-caught-up live replica and bumps the epoch; a deposed primary's
  writes and ships are rejected with ``ReplicationError(code="fenced")``
  -- split-brain is impossible by construction, and
  :mod:`repro.dist.consistency` proves it over seeded schedules.

:class:`AvailabilityRouter` is unchanged in spirit: it answers atomic
queries for the context, preferring the current primary and failing over
to a live secondary within the staleness bound.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple, Union

from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..obs.log import NULL_LOGGER
from ..obs.metrics import get_registry
from ..query.ast import AtomicQuery
from ..storage.maintenance import UpdatableDirectory
from ..storage.store import DirectoryStore
from ..txn.durable import BASE_FILE, DurableDirectory
from ..txn.records import ChangeRecord
from .errors import NetworkError, ReplicationError
from .network import SimulatedNetwork
from .server import DirectoryServer

__all__ = [
    "AvailabilityRouter",
    "ReplicaNode",
    "ReplicatedContext",
    "ReplicationError",
]

ACK_LEVELS = ("primary", "quorum", "all")


class ReplicaNode:
    """One member of a replication group.

    Each node owns a full :class:`UpdatableDirectory` (the primary's may
    be durable), the epoch it last heard, and the suffix of change records
    it has applied since its last snapshot install -- the material a
    promotion needs to seed the new lineage's changelog.
    """

    def __init__(
        self,
        name: str,
        schema: DirectorySchema,
        directory: Optional[UpdatableDirectory] = None,
        page_size: int = 16,
        buffer_pages: int = 8,
        metrics=None,
        log=None,
    ):
        self.name = name
        self.schema = schema
        self._page_size = page_size
        self._buffer_pages = buffer_pages
        self._metrics = metrics
        self._log = log if log is not None else NULL_LOGGER
        if directory is None:
            directory = UpdatableDirectory.from_instance(
                DirectoryInstance(schema),
                page_size=page_size,
                buffer_pages=buffer_pages,
                metrics=metrics,
                log=self._log,
            )
        self.directory = directory
        #: Highest epoch this node has heard (writes/batches below it are
        #: fenced).
        self.epoch = 1
        #: ``"primary"`` / ``"secondary"`` / ``"deposed"`` (a primary that
        #: learned of a higher epoch the hard way).
        self.role = "secondary"
        #: Records applied since the last snapshot install, in lsn order.
        self.applied: List[ChangeRecord] = []
        #: The lsn the applied suffix starts after (snapshot lsn).
        self.applied_floor = directory.head_lsn
        #: Set by promotion when this node's log diverged from the new
        #: lineage (an unacknowledged tail); only a resync clears it.
        self.needs_resync = False
        self._server: Optional[DirectoryServer] = None
        self._server_lsn = -1
        self.directory.add_record_listener(self._track)

    def _track(self, record: ChangeRecord) -> None:
        # Local commits (this node acting as primary) join the suffix the
        # same way shipped records do.
        self.applied.append(record)

    @property
    def applied_lsn(self) -> int:
        """The lsn of the newest change this node holds."""
        return self.directory.head_lsn

    # -- the receive side ----------------------------------------------------

    def receive(self, epoch: int, records: List[ChangeRecord]) -> List[ChangeRecord]:
        """Apply one shipped batch.  A batch from a *lower* epoch than this
        node has heard is the fence: the shipper was deposed."""
        if epoch < self.epoch:
            raise ReplicationError(
                "%s at epoch %d rejects batch from epoch %d"
                % (self.name, self.epoch, epoch),
                code=ReplicationError.FENCED,
            )
        self.epoch = epoch
        if self.role == "deposed":
            self.role = "secondary"  # following the new lineage again
        applied = self.directory.apply_records(records)
        self.applied.extend(applied)
        return applied

    def install_snapshot(
        self, epoch: int, entries: List[Entry], snapshot_lsn: int
    ) -> None:
        """Replace this node's whole state with a checkpoint image taken
        at ``snapshot_lsn`` (the resync path; a log suffix may follow
        through :meth:`receive`)."""
        if epoch < self.epoch:
            raise ReplicationError(
                "%s at epoch %d rejects snapshot from epoch %d"
                % (self.name, self.epoch, epoch),
                code=ReplicationError.FENCED,
            )
        instance = DirectoryInstance(self.schema)
        for entry in entries:
            instance.add_entry(entry)
        store = DirectoryStore.from_instance(
            instance, page_size=self._page_size, buffer_pages=self._buffer_pages
        )
        self.directory = UpdatableDirectory(
            store,
            start_lsn=snapshot_lsn,
            metrics=self._metrics,
            log=self._log,
        )
        self.directory.add_record_listener(self._track)
        self.epoch = epoch
        if self.role == "deposed":
            self.role = "secondary"
        self.applied = []
        self.applied_floor = snapshot_lsn
        self.needs_resync = False
        self._server = None
        self._server_lsn = -1

    def adopt_directory(self, directory: UpdatableDirectory,
                        applied: List[ChangeRecord], applied_floor: int) -> None:
        """Swap in a recovered directory (a durable primary reopened after
        a crash) with its surviving record suffix."""
        self.directory = directory
        self.directory.add_record_listener(self._track)
        self.applied = list(applied)
        self.applied_floor = applied_floor
        self._server = None
        self._server_lsn = -1

    # -- serving -------------------------------------------------------------

    def server(self, context: DN) -> DirectoryServer:
        """A query server over this node's current state (rebuilt only
        when the state advanced since the last build)."""
        lsn = self.directory.head_lsn
        if self._server is None or self._server_lsn != lsn:
            self.directory.compact()
            server = DirectoryServer(
                self.name,
                self.schema,
                [context],
                page_size=self._page_size,
                buffer_pages=self._buffer_pages,
            )
            server.load(self.directory.store.scan_all())
            self._server = server
            self._server_lsn = lsn
        return self._server

    def __repr__(self) -> str:
        return "ReplicaNode(%r, %s, epoch=%d, lsn=%d)" % (
            self.name, self.role, self.epoch, self.applied_lsn,
        )


class ReplicatedContext:
    """One naming context served by a primary and N secondaries.

    Mutations go through the current primary's directory and are recorded
    -- typed, lsn-stamped -- in the shipping changelog; :meth:`sync` ships
    the outstanding suffix to each secondary.  ``ack`` sets the write
    acknowledgment level: ``"primary"`` acknowledges after the local
    commit, ``"quorum"``/``"all"`` ship synchronously and raise
    ``ReplicationError(code="ackFailed")`` when not enough replicas
    acknowledged (the write is then *not* acknowledged and may be lost on
    failover -- exactly what the consistency harness checks).
    """

    def __init__(
        self,
        context: Union[DN, str],
        schema: DirectorySchema,
        secondaries: int = 1,
        network: Optional[SimulatedNetwork] = None,
        page_size: int = 16,
        buffer_pages: int = 8,
        ack: str = "primary",
        durable_dir: Optional[str] = None,
        wal_fsync: bool = False,
        metrics=None,
        log=None,
    ):
        if ack not in ACK_LEVELS:
            raise ValueError("ack must be one of %s" % (ACK_LEVELS,))
        if isinstance(context, str):
            context = DN.parse(context)
        self.context = context
        self.schema = schema
        self.network = network or SimulatedNetwork()
        self.ack = ack
        self.log = log if log is not None else NULL_LOGGER
        self.metrics = metrics if metrics is not None else get_registry()
        self._page_size = page_size
        self._buffer_pages = buffer_pages

        primary_directory = None
        if durable_dir is not None:
            primary_directory = DurableDirectory.open(
                durable_dir,
                instance=DirectoryInstance(schema),
                page_size=page_size,
                buffer_pages=buffer_pages,
                fsync=wal_fsync,
                metrics=metrics,
                log=self.log,
            )
        self.nodes: Dict[str, ReplicaNode] = {}
        primary = ReplicaNode(
            "primary", schema, directory=primary_directory,
            page_size=page_size, buffer_pages=buffer_pages,
            metrics=metrics, log=self.log,
        )
        primary.role = "primary"
        self.nodes[primary.name] = primary
        for index in range(secondaries):
            node = ReplicaNode(
                "secondary%d" % index, schema,
                page_size=page_size, buffer_pages=buffer_pages,
                metrics=metrics, log=self.log,
            )
            self.nodes[node.name] = node

        #: The group's monotone epoch; bumped by every promotion.
        self.epoch = 1
        self.primary_name = "primary"
        #: Outstanding (not yet truncated) change records, lsn order.
        self._changelog: List[ChangeRecord] = []
        #: Records at or below this lsn were truncated from the changelog
        #: (a replica behind it catches up by resync).
        self.changelog_floor = 0
        #: Per-node highest acknowledged lsn, from the primary's view.
        self._acked: Dict[str, int] = {name: 0 for name in self.nodes}
        #: Every ship/resync/promote event:
        #: ``(kind, epoch, node, from_lsn, to_lsn)`` -- the consistency
        #: harness checks per-epoch lsn monotonicity on this.
        self.ship_log: List[Tuple[str, int, str, int, int]] = []
        #: Last ship failure per replica (cleared by a successful ship).
        self.last_ship_errors: Dict[str, NetworkError] = {}
        self.resyncs = 0
        self.failovers = 0

        primary.directory.add_record_listener(self._on_primary_record)

        self._m_shipped = self.metrics.counter(
            "repro_replication_shipped_records_total",
            "Change records shipped to and applied by secondaries",
        )
        self._m_changelog = self.metrics.gauge(
            "repro_replication_changelog_records",
            "Outstanding (untruncated) replication changelog records",
        )
        self._m_epoch = self.metrics.gauge(
            "repro_replication_epoch", "Current replication epoch"
        )
        self._m_lag = self.metrics.gauge(
            "repro_replication_lag_records",
            "Records a replica is behind the primary",
            labelnames=("replica",),
        )
        self._m_acked = self.metrics.gauge(
            "repro_replication_acked_lsn",
            "Highest lsn a replica has acknowledged",
            labelnames=("replica",),
        )
        self._m_fenced = self.metrics.counter(
            "repro_replication_fenced_total",
            "Writes/ships rejected because the issuer's epoch was stale",
        )
        self._m_failovers = self.metrics.counter(
            "repro_replication_failovers_total",
            "Promotions of a secondary to primary",
        )
        self._m_resyncs = self.metrics.counter(
            "repro_replication_resyncs_total",
            "Replica catch-ups via checkpoint snapshot + log suffix",
        )
        self._m_ack_failures = self.metrics.counter(
            "repro_replication_ack_failures_total",
            "Writes that missed their acknowledgment level",
        )
        self._update_gauges()

    # -- group plumbing ------------------------------------------------------

    def _on_primary_record(self, record: ChangeRecord) -> None:
        self._changelog.append(record)

    def node(self, name: str) -> ReplicaNode:
        return self.nodes[name]

    @property
    def primary(self) -> ReplicaNode:
        return self.nodes[self.primary_name]

    @property
    def secondaries(self) -> List[ReplicaNode]:
        """Every non-primary member, in creation order."""
        return [n for n in self.nodes.values() if n.name != self.primary_name]

    def quorum(self) -> int:
        """Majority of the whole group (primary included)."""
        return len(self.nodes) // 2 + 1

    def _required_acks(self) -> int:
        if self.ack == "primary":
            return 1
        if self.ack == "quorum":
            return self.quorum()
        return len(self.nodes)

    def _fence(self, node: ReplicaNode, action: str) -> None:
        """Reject an action by a node that is not the current primary.
        A node that *was* primary (stale epoch) is fenced; anything else
        simply is not the primary."""
        if node.name == self.primary_name and node.epoch == self.epoch:
            return
        if node.role in ("primary", "deposed"):
            node.role = "deposed"
            self._m_fenced.inc()
            self.log.warning(
                "replication.fenced",
                node=node.name, action=action,
                node_epoch=node.epoch, group_epoch=self.epoch,
            )
            raise ReplicationError(
                "%s fenced at epoch %d (group epoch %d): %s rejected"
                % (node.name, node.epoch, self.epoch, action),
                code=ReplicationError.FENCED,
            )
        raise ReplicationError(
            "%s is not the primary (%s is)" % (node.name, self.primary_name),
            code=ReplicationError.NOT_PRIMARY,
        )

    # -- mutation (through the current primary) ------------------------------

    def add(self, dn, classes, attributes=None, **kw) -> Entry:
        return self.write_via(
            self.primary_name, "add", dn, classes, attributes, **kw
        )

    def add_entry(self, entry: Entry) -> Entry:
        """Record an already-built entry (mirroring an existing server's
        holdings into this replicated context)."""
        attributes = {
            attr: list(entry.values(attr)) for attr in entry.attributes()
        }
        return self.add(entry.dn, entry.classes, attributes)

    def delete(self, dn, recursive: bool = False) -> None:
        self.write_via(self.primary_name, "delete", dn, recursive=recursive)

    def modify(self, dn, replace=None, add_values=None, remove_values=None) -> Entry:
        return self.write_via(
            self.primary_name, "modify", dn,
            replace=replace, add_values=add_values, remove_values=remove_values,
        )

    def write_via(self, *args, **kw):
        """``write_via(node_name, op, ...)``: one client write issued
        *through a specific node's handle* -- the current primary in
        normal operation; a deposed primary here is exactly the
        split-brain attempt the epoch fence rejects.  (The leading
        arguments are positional-only so they can never collide with
        ``add``'s keyword attributes.)"""
        node_name, kind = args[0], args[1]
        args = args[2:]
        node = self.nodes[node_name]
        self._fence(node, "write")
        method = getattr(node.directory, kind)
        result = method(*args, **kw)
        lsn = node.directory.head_lsn
        self._acked[node.name] = lsn
        self._enforce_ack(lsn)
        self._update_gauges()
        return result

    def _enforce_ack(self, lsn: int) -> None:
        required = self._required_acks()
        if required <= 1:
            return
        self.sync()
        acked = 1 + sum(
            1
            for node in self.secondaries
            if self._acked.get(node.name, 0) >= lsn
        )
        if acked < required:
            self._m_ack_failures.inc()
            self.log.warning(
                "replication.ack_failed",
                lsn=lsn, acked=acked, required=required, ack=self.ack,
            )
            raise ReplicationError(
                "write at lsn %d reached %d of %d required replicas"
                % (lsn, acked, required),
                code=ReplicationError.ACK_FAILED,
            )

    # -- shipping ------------------------------------------------------------

    def changelog_length(self) -> int:
        return len(self._changelog)

    def acked_lsn(self, name: str) -> int:
        return self._acked.get(name, 0)

    def lag(self, name: str) -> int:
        """Records the node is behind the current primary (0 for the
        primary itself)."""
        if name == self.primary_name:
            return 0
        head = self.primary.applied_lsn
        return max(0, head - min(self._acked.get(name, 0), head))

    def sync(self) -> Dict[str, int]:
        """Ship the outstanding changelog suffix from the current primary
        to every secondary; returns records caught up per secondary (an
        unreachable replica scores 0 and is retried next round)."""
        return self.ship_via(self.primary_name)

    def ship_via(self, node_name: str) -> Dict[str, int]:
        """The shipping pass, issued through a specific node's handle
        (fenced exactly like writes)."""
        node = self.nodes[node_name]
        self._fence(node, "ship")
        shipped: Dict[str, int] = {}
        for replica in self.secondaries:
            shipped[replica.name] = self._ship_to(node, replica)
        self._truncate_changelog()
        self._update_gauges()
        return shipped

    def _ship_to(self, primary: ReplicaNode, replica: ReplicaNode) -> int:
        before = self._acked.get(replica.name, 0)
        try:
            if replica.needs_resync or before < self.changelog_floor:
                return self._resync(primary, replica)
            batch = [r for r in self._changelog if r.lsn > before]
            if not batch:
                return 0
            self.network.send(
                primary.name, replica.name, "changelog", len(batch)
            )
            applied = replica.receive(self.epoch, batch)
            self._acked[replica.name] = replica.applied_lsn
            self.last_ship_errors.pop(replica.name, None)
            self.ship_log.append(
                ("ship", self.epoch, replica.name, batch[0].lsn, batch[-1].lsn)
            )
            self._m_shipped.inc(len(applied))
            if self.log.enabled_for("debug"):
                self.log.debug(
                    "replication.ship",
                    replica=replica.name, records=len(batch),
                    epoch=self.epoch, upto_lsn=batch[-1].lsn,
                )
            return replica.applied_lsn - before
        except NetworkError as exc:
            self.last_ship_errors[replica.name] = exc
            if self.log.enabled_for("debug"):
                self.log.debug(
                    "replication.ship_failed",
                    replica=replica.name, code=exc.code,
                )
            return 0

    def _resync(self, primary: ReplicaNode, replica: ReplicaNode) -> int:
        """Catch a replica up from a checkpoint image plus the log suffix.
        For a durable primary that is literally ``base.ldif`` + the WAL
        suffix; otherwise the primary folds its overlay and snapshots the
        store."""
        before = self._acked.get(replica.name, 0)
        directory = primary.directory
        suffix: List[ChangeRecord] = []
        if isinstance(directory, DurableDirectory) and directory.data_dir:
            snapshot_lsn = directory.checkpoint_lsn
            entries = self._load_checkpoint(directory)
            suffix = directory.wal.records_since(snapshot_lsn)
        else:
            directory.compact()
            entries = list(directory.store.scan_all())
            snapshot_lsn = directory.floor_lsn
        self.network.send(primary.name, replica.name, "snapshot", len(entries))
        replica.install_snapshot(self.epoch, entries, snapshot_lsn)
        if suffix:
            self.network.send(
                primary.name, replica.name, "changelog", len(suffix)
            )
            replica.receive(self.epoch, suffix)
        self._acked[replica.name] = replica.applied_lsn
        self.last_ship_errors.pop(replica.name, None)
        self.resyncs += 1
        self._m_resyncs.inc()
        self.ship_log.append(
            ("resync", self.epoch, replica.name, snapshot_lsn,
             replica.applied_lsn)
        )
        self.log.info(
            "replication.resync",
            replica=replica.name, snapshot_lsn=snapshot_lsn,
            suffix_records=len(suffix), entries=len(entries),
            epoch=self.epoch,
        )
        return replica.applied_lsn - before

    def _load_checkpoint(self, directory: DurableDirectory) -> List[Entry]:
        from ..model.ldif import loads_ldif

        path = os.path.join(directory.data_dir, BASE_FILE)
        with open(path, "r", encoding="utf-8") as stream:
            return list(loads_ldif(stream.read(), self.schema))

    def _truncate_changelog(self) -> None:
        """Drop the changelog prefix every required acknowledger has seen
        (all secondaries at ack="primary"/"all", the quorum otherwise); a
        replica behind the truncated floor resyncs from a checkpoint."""
        if not self._changelog:
            return
        acked = sorted(
            (self._acked.get(name, 0) for name in self.nodes), reverse=True
        )
        if self.ack == "quorum":
            floor = acked[self.quorum() - 1]
        else:
            floor = min(acked)
        if floor <= self.changelog_floor:
            return
        kept = [r for r in self._changelog if r.lsn > floor]
        if len(kept) != len(self._changelog):
            self._changelog = kept
            self.changelog_floor = max(self.changelog_floor, floor)

    # -- failover ------------------------------------------------------------

    def promote(self, name: Optional[str] = None, exclude=()) -> str:
        """Fail over: bump the epoch and install a new primary -- the
        most-caught-up candidate outside ``exclude`` (pass the unreachable
        nodes), or ``name`` explicitly.  The deposed primary keeps its
        stale epoch, so its next write or ship attempt is fenced.  Returns
        the new primary's name."""
        excluded = set(exclude) | {self.primary_name}
        # A diverged node (needs_resync) holds a forked log; promoting it
        # would resurrect records the group already disowned.
        candidates = [
            node
            for node in self.nodes.values()
            if node.name not in excluded and not node.needs_resync
        ]
        if not candidates:
            raise ReplicationError(
                "no promotion candidate for %s (excluded: %s)"
                % (self.context, sorted(excluded)),
                code=ReplicationError.NO_CANDIDATE,
            )
        if name is None:
            pick = max(candidates, key=lambda n: (n.applied_lsn, n.name))
        else:
            pick = self.nodes[name]
            if pick.name in excluded or pick.needs_resync:
                raise ReplicationError(
                    "cannot promote %s (excluded or diverged)" % name,
                    code=ReplicationError.NO_CANDIDATE,
                )
        old = self.primary
        fork_lsn = pick.applied_lsn
        self.epoch += 1
        old.role = "deposed"
        old.directory.remove_record_listener(self._on_primary_record)
        self.primary_name = pick.name
        pick.role = "primary"
        pick.epoch = self.epoch
        pick.directory.add_record_listener(self._on_primary_record)
        # Rebase shipping bookkeeping onto the new lineage: its changelog
        # is the new primary's applied suffix.
        self._changelog = list(pick.applied)
        self.changelog_floor = pick.applied_floor
        self._acked[pick.name] = fork_lsn
        for node in self.nodes.values():
            if node is pick:
                continue
            if node.applied_lsn > fork_lsn:
                # The node holds records the new lineage never had -- the
                # old primary's unacknowledged tail.  It must resync.
                node.needs_resync = True
            self._acked[node.name] = min(
                self._acked.get(node.name, 0), fork_lsn
            )
        self.failovers += 1
        self._m_failovers.inc()
        self.ship_log.append(
            ("promote", self.epoch, pick.name, fork_lsn, fork_lsn)
        )
        self.log.info(
            "replication.promoted",
            new_primary=pick.name, deposed=old.name,
            epoch=self.epoch, fork_lsn=fork_lsn,
        )
        self._update_gauges()
        return pick.name

    def reopen_primary(self) -> ReplicaNode:
        """Recover the current primary's durable state after a (simulated)
        process crash: reopen checkpoint + WAL, rebase the node's suffix
        on what survived, and rebuild the changelog.  Acknowledged writes
        are durable before they are acknowledged, so none is lost here."""
        node = self.primary
        directory = node.directory
        if not isinstance(directory, DurableDirectory) or not directory.data_dir:
            raise ReplicationError(
                "primary %s has no durable data dir to recover from"
                % node.name,
                code=ReplicationError.OTHER,
            )
        data_dir = directory.data_dir
        directory.close()
        reopened = DurableDirectory.open(
            data_dir,
            page_size=self._page_size,
            buffer_pages=self._buffer_pages,
            fsync=directory.wal.fsync,
            metrics=self.metrics,
            log=self.log,
        )
        survived = reopened.wal.records_since(reopened.checkpoint_lsn)
        node.adopt_directory(reopened, survived, reopened.checkpoint_lsn)
        reopened.add_record_listener(self._on_primary_record)
        self._changelog = [
            r for r in survived if r.lsn > self.changelog_floor
        ]
        self._acked[node.name] = node.applied_lsn
        self.log.info(
            "replication.primary_recovered",
            node=node.name, head_lsn=node.applied_lsn,
            recovered_records=len(survived),
            torn_tail=reopened.recovered_torn,
        )
        self._update_gauges()
        return node

    # -- serving ----------------------------------------------------------------

    def server(self, name: str) -> DirectoryServer:
        return self.nodes[name].server(self.context)

    # -- status ------------------------------------------------------------------

    def replication_status(self) -> Dict[str, Any]:
        """The admin-endpoint view of the replication group."""
        head = self.primary.applied_lsn
        replicas = {}
        for node in self.nodes.values():
            replicas[node.name] = {
                "role": "primary" if node.name == self.primary_name else node.role,
                "epoch": node.epoch,
                "acked_lsn": self._acked.get(node.name, 0),
                "applied_lsn": node.applied_lsn,
                "lag": self.lag(node.name),
                "needs_resync": node.needs_resync,
            }
        return {
            "context": str(self.context),
            "epoch": self.epoch,
            "primary": self.primary_name,
            "ack": self.ack,
            "head_lsn": head,
            "changelog_records": len(self._changelog),
            "changelog_floor_lsn": self.changelog_floor,
            "resyncs": self.resyncs,
            "failovers": self.failovers,
            "replicas": replicas,
        }

    def _update_gauges(self) -> None:
        self._m_epoch.set(self.epoch)
        self._m_changelog.set(len(self._changelog))
        for node in self.nodes.values():
            self._m_lag.set(self.lag(node.name), replica=node.name)
            self._m_acked.set(
                self._acked.get(node.name, 0), replica=node.name
            )

    def __repr__(self) -> str:
        return "ReplicatedContext(%s, epoch=%d, primary=%s, %d nodes)" % (
            self.context, self.epoch, self.primary_name, len(self.nodes),
        )


class AvailabilityRouter:
    """Routes atomic queries to the context's current primary, failing
    over to a live secondary within the staleness bound when the primary
    is marked down.

    ``max_lag`` bounds how many unacknowledged records a serving secondary
    may be behind; the default 0 keeps the strict in-sync-only behaviour.
    Every evaluation appends its routing trail -- one ``(replica,
    decision)`` pair per candidate considered, decisions being ``"down"``,
    ``"lag=N"`` or ``"served"`` -- to :attr:`decisions`, so tests and the
    consistency harness can assert *why* a replica was skipped.
    """

    def __init__(self, replicated: ReplicatedContext, max_lag: int = 0):
        if max_lag < 0:
            raise ValueError("max_lag must be non-negative")
        self.replicated = replicated
        self.max_lag = max_lag
        self._down: set = set()
        self.served_by: List[str] = []
        #: Per-evaluate routing trails, newest last.
        self.decisions: List[List[Tuple[str, str]]] = []

    def mark_down(self, name: str) -> None:
        self._down.add(name)

    def mark_up(self, name: str) -> None:
        self._down.discard(name)

    def candidates(self) -> List[str]:
        """The current primary first, then the secondaries in creation
        order -- failover prefers the freshest authority."""
        replicated = self.replicated
        return [replicated.primary_name] + [
            node.name for node in replicated.secondaries
        ]

    def evaluate(self, query: AtomicQuery, max_lag: Optional[int] = None) -> List[Entry]:
        """Serve one atomic query from the best acceptable replica;
        ``max_lag`` overrides the router's staleness bound per call."""
        limit = self.max_lag if max_lag is None else max_lag
        replicated = self.replicated
        trail: List[Tuple[str, str]] = []
        self.decisions.append(trail)
        for name in self.candidates():
            if name in self._down:
                trail.append((name, "down"))
                continue
            lag = replicated.lag(name)
            if lag > limit:
                # Stale past the bound: skip rather than serve old data.
                trail.append((name, "lag=%d" % lag))
                continue
            server = replicated.server(name)
            run = server.evaluate_atomic(query)
            try:
                entries = run.to_list()
            finally:
                run.free()
            trail.append((name, "served"))
            self.served_by.append(name)
            return entries
        raise ReplicationError(
            "no live replica within lag %d for %s" % (limit, replicated.context),
            code=ReplicationError.NO_REPLICA,
        )
