"""Primary/secondary replication and failover.

Footnote 4 of the paper: "Secondary directory servers ensure that one
unreachable network will not necessarily cut off network directory
service."  This module supplies that availability story for the simulated
federation:

- :class:`ReplicatedContext` pairs a primary :class:`DirectoryServer` with
  secondaries for one naming context and keeps them in sync by shipping a
  changelog (counted on the network like any other traffic);
- :class:`AvailabilityRouter` answers atomic queries for the context,
  preferring the primary and failing over to a live secondary when the
  primary is marked down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..query.ast import AtomicQuery
from .errors import ReplicationError
from .network import SimulatedNetwork
from .server import DirectoryServer

__all__ = ["ReplicatedContext", "AvailabilityRouter", "ReplicationError"]


class ReplicatedContext:
    """One naming context served by a primary and N secondaries.

    Mutations go to the primary's staging instance and are recorded in a
    changelog; :meth:`sync` ships outstanding changelog records to each
    secondary (one message per batch, entry count = records shipped).
    """

    def __init__(
        self,
        context: Union[DN, str],
        schema: DirectorySchema,
        secondaries: int = 1,
        network: Optional[SimulatedNetwork] = None,
        page_size: int = 16,
    ):
        if isinstance(context, str):
            context = DN.parse(context)
        self.context = context
        self.schema = schema
        self.network = network or SimulatedNetwork()
        self.primary = DirectoryServer("primary", schema, [context], page_size=page_size)
        self.secondaries = [
            DirectoryServer("secondary%d" % index, schema, [context], page_size=page_size)
            for index in range(secondaries)
        ]
        self._changelog: List[Tuple[str, Entry]] = []
        self._synced_upto: Dict[str, int] = {s.name: 0 for s in self.secondaries}
        self._primary_instance = DirectoryInstance(schema)
        self._replica_instances = {
            s.name: DirectoryInstance(schema) for s in self.secondaries
        }
        self._built = False

    # -- mutation (primary only) ---------------------------------------------

    def add(self, dn, classes, attributes=None, **kw) -> Entry:
        entry = self._primary_instance.add(dn, classes, attributes, **kw)
        self._changelog.append(("add", entry))
        self._built = False
        return entry

    def add_entry(self, entry: Entry) -> Entry:
        """Record an already-built entry (mirroring an existing server's
        holdings into this replicated context)."""
        self._primary_instance.add_entry(entry)
        self._changelog.append(("add", entry))
        self._built = False
        return entry

    def changelog_length(self) -> int:
        return len(self._changelog)

    def sync(self) -> Dict[str, int]:
        """Ship outstanding changelog records to every secondary; returns
        records shipped per secondary."""
        shipped: Dict[str, int] = {}
        for secondary in self.secondaries:
            start = self._synced_upto[secondary.name]
            batch = self._changelog[start:]
            if batch:
                self.network.send(
                    self.primary.name, secondary.name, "changelog", len(batch)
                )
                replica = self._replica_instances[secondary.name]
                for _op, entry in batch:
                    replica.add_entry(entry)
                self._synced_upto[secondary.name] = len(self._changelog)
            shipped[secondary.name] = len(batch)
        return shipped

    def lag(self, secondary_name: str) -> int:
        """Changelog records the secondary has not yet received."""
        return len(self._changelog) - self._synced_upto[secondary_name]

    # -- serving ----------------------------------------------------------------

    def _ensure_built(self) -> None:
        if self._built:
            return
        self.primary.reload(list(self._primary_instance))
        for secondary in self.secondaries:
            secondary.reload(list(self._replica_instances[secondary.name]))
        self._built = True

    def server(self, name: str) -> DirectoryServer:
        self._ensure_built()
        if name == "primary":
            return self.primary
        for secondary in self.secondaries:
            if secondary.name == name:
                return secondary
        raise KeyError(name)


class AvailabilityRouter:
    """Routes atomic queries to the context's primary, failing over to the
    first live secondary within the staleness bound when the primary is
    down.

    ``max_lag`` bounds how many unsynced changelog records a serving
    secondary may be behind; the default 0 keeps the strict in-sync-only
    behaviour.  Every evaluation appends its routing trail -- one
    ``(replica, decision)`` pair per candidate considered, decisions being
    ``"down"``, ``"lag=N"`` or ``"served"`` -- to :attr:`decisions`, so
    tests and the chaos report can assert *why* a replica was skipped.
    """

    def __init__(self, replicated: ReplicatedContext, max_lag: int = 0):
        if max_lag < 0:
            raise ValueError("max_lag must be non-negative")
        self.replicated = replicated
        self.max_lag = max_lag
        self._down: set = set()
        self.served_by: List[str] = []
        #: Per-evaluate routing trails, newest last.
        self.decisions: List[List[Tuple[str, str]]] = []

    def mark_down(self, name: str) -> None:
        self._down.add(name)

    def mark_up(self, name: str) -> None:
        self._down.discard(name)

    def evaluate(self, query: AtomicQuery, max_lag: Optional[int] = None) -> List[Entry]:
        """Serve one atomic query from the best acceptable replica;
        ``max_lag`` overrides the router's staleness bound per call."""
        limit = self.max_lag if max_lag is None else max_lag
        replicated = self.replicated
        trail: List[Tuple[str, str]] = []
        self.decisions.append(trail)
        candidates = ["primary"] + [s.name for s in replicated.secondaries]
        for name in candidates:
            if name in self._down:
                trail.append((name, "down"))
                continue
            lag = 0 if name == "primary" else replicated.lag(name)
            if lag > limit:
                # Stale past the bound: skip rather than serve old data.
                trail.append((name, "lag=%d" % lag))
                continue
            server = replicated.server(name)
            run = server.evaluate_atomic(query)
            try:
                entries = run.to_list()
            finally:
                run.free()
            trail.append((name, "served"))
            self.served_by.append(name)
            return entries
        raise ReplicationError(
            "no live replica within lag %d for %s" % (limit, replicated.context),
            code=ReplicationError.NO_REPLICA,
        )
