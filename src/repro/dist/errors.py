"""The distributed layer's error hierarchy.

Every failure the simulated wide-area deployment can produce -- an
unowned dn, a broken referral chain, an exhausted replica set, a faulted
network message -- derives from :class:`DistError` and carries a
structured ``code``, mirroring the :class:`~repro.storage.maintenance.
UpdateError` pattern: callers (the federation's degradation ladder, the
chaos report, protocol mappings) dispatch on ``code`` instead of matching
message text.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "DistError",
    "LocatorError",
    "NetworkError",
    "ReferralError",
    "ReplicationError",
]


class DistError(RuntimeError):
    """Base for distributed-layer failures, with a structured ``code``."""

    #: Anything a subclass did not classify.
    OTHER = "other"

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.code = code if code is not None else self.OTHER

    def __repr__(self) -> str:
        return "%s(%r, code=%r)" % (type(self).__name__, str(self), self.code)


class NetworkError(DistError):
    """A message between servers did not get through.

    Raised by :class:`~repro.dist.faults.FaultInjector` (the plain
    :class:`~repro.dist.network.SimulatedNetwork` never fails); ``server``
    names the endpoint at fault when one is known.
    """

    #: The message was lost in transit (iid drop or a scripted drop).
    DROPPED = "dropped"
    #: The sampled delivery latency exceeded the plan's timeout.
    TIMEOUT = "timeout"
    #: Source and destination are on opposite sides of a partition.
    PARTITIONED = "partitioned"
    #: An endpoint is inside a crash/down window.
    SERVER_DOWN = "serverDown"
    #: The per-server circuit breaker is open (no attempt was made).
    BREAKER_OPEN = "breakerOpen"

    def __init__(self, message: str, code: Optional[str] = None,
                 server: Optional[str] = None):
        super().__init__(message, code)
        self.server = server


class ReplicationError(DistError):
    """A replication-group request was refused (no acceptable replica,
    a fenced write, or an unreachable acknowledgment level)."""

    #: Every candidate was down or lagged past the staleness bound.
    NO_REPLICA = "noLiveReplica"
    #: A deposed primary (stale epoch) tried to write or ship.
    FENCED = "fenced"
    #: A write reached the primary but not its acknowledgment level
    #: (quorum/all); it is NOT acknowledged and may be lost on failover.
    ACK_FAILED = "ackFailed"
    #: A client write was sent to a node that never was the primary.
    NOT_PRIMARY = "notPrimary"
    #: Promotion found no live candidate to take over the context.
    NO_CANDIDATE = "noCandidate"


class ReferralError(DistError):
    """A client-chased referral chain could not be resolved."""

    #: The chain exceeded the client's hop limit.
    LIMIT_EXCEEDED = "referralLimit"
    #: A referral named a server outside the federation.
    UNKNOWN_SERVER = "unknownServer"
    #: A composite query was given to the atomic-only referral protocol.
    NOT_ATOMIC = "notAtomic"


class LocatorError(DistError, LookupError):
    """No server owns a dn (kept a :class:`LookupError` for callers that
    treat location as a lookup)."""

    #: No registered context is an ancestor of the dn.
    NO_OWNER = "noOwner"
