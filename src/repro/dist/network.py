"""A simulated network between directory servers.

Section 8.3's distributed evaluation claim is about *where* work happens
and *what* gets shipped; this network makes both observable: every message
between servers is counted, and result shipments also count the number of
entries carried.

Thread-safety: the coordinator's parallel scatter (see
:mod:`repro.exec`) sends from several worker threads at once, so the
counters and the optional log are guarded by one reentrant lock
(reentrant because :class:`~repro.dist.faults.FaultInjector` extends
:meth:`send` and calls back into it).  ``wire_latency_s`` optionally adds
a *real* ``time.sleep`` per message -- slept outside the lock so
concurrent sends overlap their waits, which is exactly the wall-clock
effect the parallel benchmark measures.  It defaults to 0.0: the
simulated model and its deterministic counters are unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

__all__ = ["SimulatedNetwork"]


class SimulatedNetwork:
    """Message/entry counters plus an optional log of traffic."""

    def __init__(self, keep_log: bool = False, wire_latency_s: float = 0.0):
        if wire_latency_s < 0:
            raise ValueError("wire_latency_s must be non-negative")
        self._lock = threading.RLock()
        self.messages = 0
        self.entries_shipped = 0
        self.keep_log = keep_log
        #: Real seconds slept per delivered message (0.0 = purely
        #: simulated, no wall-clock cost).
        self.wire_latency_s = wire_latency_s
        self.log: List[Tuple[str, str, str, int]] = []
        #: Trace ids riding along logged messages, parallel to ``log``
        #: (None for untraced traffic) -- how span identity crosses the
        #: simulated wire.
        self.trace_ids: List[Optional[str]] = []

    def send(
        self,
        source: str,
        destination: str,
        kind: str,
        entry_count: int = 0,
        trace_id: Optional[str] = None,
    ) -> None:
        """Record one message; ``entry_count`` is the number of directory
        entries in its payload (0 for pure requests).  ``trace_id`` tags
        the message with the sending span's trace."""
        with self._lock:
            self.messages += 1
            self.entries_shipped += entry_count
            if self.keep_log:
                self.log.append((source, destination, kind, entry_count))
                self.trace_ids.append(trace_id)
        if self.wire_latency_s > 0:
            time.sleep(self.wire_latency_s)

    def reset(self) -> None:
        with self._lock:
            self.messages = 0
            self.entries_shipped = 0
            self.log = []
            self.trace_ids = []

    def __repr__(self) -> str:
        return "SimulatedNetwork(messages=%d, entries_shipped=%d)" % (
            self.messages,
            self.entries_shipped,
        )
