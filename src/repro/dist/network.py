"""A simulated network between directory servers.

Section 8.3's distributed evaluation claim is about *where* work happens
and *what* gets shipped; this network makes both observable: every message
between servers is counted, and result shipments also count the number of
entries carried.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["SimulatedNetwork"]


class SimulatedNetwork:
    """Message/entry counters plus an optional log of traffic."""

    def __init__(self, keep_log: bool = False):
        self.messages = 0
        self.entries_shipped = 0
        self.keep_log = keep_log
        self.log: List[Tuple[str, str, str, int]] = []

    def send(self, source: str, destination: str, kind: str, entry_count: int = 0) -> None:
        """Record one message; ``entry_count`` is the number of directory
        entries in its payload (0 for pure requests)."""
        self.messages += 1
        self.entries_shipped += entry_count
        if self.keep_log:
            self.log.append((source, destination, kind, entry_count))

    def reset(self) -> None:
        self.messages = 0
        self.entries_shipped = 0
        self.log = []

    def __repr__(self) -> str:
        return "SimulatedNetwork(messages=%d, entries_shipped=%d)" % (
            self.messages,
            self.entries_shipped,
        )
