"""A simulated network between directory servers.

Section 8.3's distributed evaluation claim is about *where* work happens
and *what* gets shipped; this network makes both observable: every message
between servers is counted, and result shipments also count the number of
entries carried.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["SimulatedNetwork"]


class SimulatedNetwork:
    """Message/entry counters plus an optional log of traffic."""

    def __init__(self, keep_log: bool = False):
        self.messages = 0
        self.entries_shipped = 0
        self.keep_log = keep_log
        self.log: List[Tuple[str, str, str, int]] = []
        #: Trace ids riding along logged messages, parallel to ``log``
        #: (None for untraced traffic) -- how span identity crosses the
        #: simulated wire.
        self.trace_ids: List[Optional[str]] = []

    def send(
        self,
        source: str,
        destination: str,
        kind: str,
        entry_count: int = 0,
        trace_id: Optional[str] = None,
    ) -> None:
        """Record one message; ``entry_count`` is the number of directory
        entries in its payload (0 for pure requests).  ``trace_id`` tags
        the message with the sending span's trace."""
        self.messages += 1
        self.entries_shipped += entry_count
        if self.keep_log:
            self.log.append((source, destination, kind, entry_count))
            self.trace_ids.append(trace_id)

    def reset(self) -> None:
        self.messages = 0
        self.entries_shipped = 0
        self.log = []
        self.trace_ids = []

    def __repr__(self) -> str:
        return "SimulatedNetwork(messages=%d, entries_shipped=%d)" % (
            self.messages,
            self.entries_shipped,
        )
