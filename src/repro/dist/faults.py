"""Deterministic fault injection for the simulated network.

The paper's availability story (footnote 4) only matters if messages can
fail; :class:`FaultInjector` makes them fail *reproducibly*.  A seeded
:class:`FaultPlan` describes the chaos -- iid message drops, added
delivery latency against a simulated clock, pairwise partitions and
per-server crash windows -- and the injector applies it to every
:meth:`~repro.dist.network.SimulatedNetwork.send`, raising a structured
:class:`~repro.dist.errors.NetworkError` for each injected fault.

Design constraints:

- **Determinism.**  One seeded RNG, consumed in a fixed order per send
  (drop draw, then latency draw), so a (plan, workload) pair replays the
  exact same fault schedule -- that is what makes chaos *testable*.
- **Zero overhead when disabled.**  With a default plan the injector
  delivers every message and its counters match a plain
  :class:`SimulatedNetwork` exactly.
- **Simulated time.**  The injector keeps a clock (``now``, seconds)
  advanced by message latency and by :meth:`sleep` (retry backoff), so
  crash/partition windows, breaker reset timeouts and per-query deadlines
  all share one timeline without real waiting.
"""

from __future__ import annotations

import math
import random
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..obs.metrics import get_registry
from .errors import NetworkError
from .network import SimulatedNetwork

__all__ = ["FaultPlan", "FaultInjector"]


class FaultPlan:
    """A seeded, declarative fault schedule.

    ``drop_rate`` drops each message independently; ``latency_s`` +
    ``jitter_s`` is the per-message delivery delay (uniform jitter);
    ``timeout_s`` turns a sampled delay past the bound into a timeout
    fault.  :meth:`partition` and :meth:`crash` add windows on the
    simulated clock; :meth:`drop_message` scripts exact drops by global
    send index (deterministic tests).  All schedule methods return the
    plan for chaining.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        timeout_s: Optional[float] = None,
    ):
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        if latency_s < 0 or jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        self.seed = seed
        self.drop_rate = drop_rate
        self.latency_s = latency_s
        self.jitter_s = jitter_s
        self.timeout_s = timeout_s
        self._partitions: List[Tuple[FrozenSet[str], float, float]] = []
        self._crashes: List[Tuple[str, float, float]] = []
        self._drop_indices: set = set()

    # -- schedule -----------------------------------------------------------

    def partition(self, a: str, b: str, start: float = 0.0,
                  end: float = math.inf) -> "FaultPlan":
        """Block traffic between ``a`` and ``b`` (both directions) during
        ``[start, end)`` on the simulated clock."""
        self._partitions.append((frozenset((a, b)), start, end))
        return self

    def crash(self, server: str, start: float = 0.0,
              end: float = math.inf) -> "FaultPlan":
        """Take ``server`` down during ``[start, end)``: every message it
        would send or receive faults."""
        self._crashes.append((server, start, end))
        return self

    def drop_message(self, *indices: int) -> "FaultPlan":
        """Drop the exact sends with these global attempt indices
        (0-based, counted across all traffic)."""
        self._drop_indices.update(indices)
        return self

    # -- predicates ---------------------------------------------------------

    def crashed(self, server: str, now: float) -> bool:
        return any(
            name == server and start <= now < end
            for name, start, end in self._crashes
        )

    def partitioned(self, a: str, b: str, now: float) -> bool:
        pair = frozenset((a, b))
        return any(
            pair == cut and start <= now < end
            for cut, start, end in self._partitions
        )

    def __repr__(self) -> str:
        return "FaultPlan(seed=%d, drop=%.3f, partitions=%d, crashes=%d)" % (
            self.seed, self.drop_rate, len(self._partitions), len(self._crashes)
        )


class FaultInjector(SimulatedNetwork):
    """A :class:`SimulatedNetwork` that applies a :class:`FaultPlan`.

    Delivered messages count in the inherited ``messages`` /
    ``entries_shipped`` (so traffic accounting stays comparable to the
    fault-free network); faulted sends count in ``attempts`` and the
    per-code ``faults`` dict instead, and in the
    ``repro_net_faults_total`` metric.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, keep_log: bool = False,
                 metrics=None, wire_latency_s: float = 0.0, log=None):
        super().__init__(keep_log=keep_log, wire_latency_s=wire_latency_s)
        self.plan = plan or FaultPlan()
        #: Structured event logger; each injected fault is logged as a
        #: ``fault.injected`` event (None/no-op by default).  Named apart
        #: from the inherited ``log`` *message list* -- shadowing it broke
        #: ``keep_log`` accounting.
        self.event_log = log
        self._rng = random.Random(self.plan.seed)
        #: Simulated clock, in seconds.
        self.now = 0.0
        #: Send attempts, including faulted ones (``messages`` counts
        #: deliveries only).
        self.attempts = 0
        #: Injected faults by :class:`NetworkError` code.
        self.faults: Dict[str, int] = {}
        registry = metrics if metrics is not None else get_registry()
        self._m_faults = registry.counter(
            "repro_net_faults_total",
            "Injected network faults",
            labelnames=("code",),
        )

    def sleep(self, seconds: float) -> None:
        """Advance the simulated clock (retry backoff 'waits' here)."""
        if seconds > 0:
            with self._lock:
                self.now += seconds

    def _fault(self, code: str, message: str, server: Optional[str] = None):
        # Called with self._lock held (from send); raising releases it.
        self.faults[code] = self.faults.get(code, 0) + 1
        self._m_faults.inc(code=code)
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.info(
                "fault.injected", code=code, server=server, at=round(self.now, 6)
            )
        raise NetworkError(message, code=code, server=server)

    def send(
        self,
        source: str,
        destination: str,
        kind: str,
        entry_count: int = 0,
        trace_id: Optional[str] = None,
    ) -> None:
        plan = self.plan
        # Fault decision, RNG draws and clock advance happen atomically
        # under the network lock (parallel scatter sends from several
        # threads); the delivery -- which may really sleep -- happens
        # outside it so concurrent waits overlap.
        with self._lock:
            index = self.attempts
            self.attempts += 1
            for endpoint in (source, destination):
                if plan.crashed(endpoint, self.now):
                    self._fault(
                        NetworkError.SERVER_DOWN,
                        "%s is down (message %s -> %s)" % (endpoint, source, destination),
                        server=endpoint,
                    )
            if plan.partitioned(source, destination, self.now):
                self._fault(
                    NetworkError.PARTITIONED,
                    "%s and %s are partitioned" % (source, destination),
                    server=destination,
                )
            # RNG draws happen in a fixed order (drop, then latency) so the
            # schedule replays identically for a given plan and workload.
            dropped = plan.drop_rate > 0 and self._rng.random() < plan.drop_rate
            latency = plan.latency_s
            if plan.jitter_s:
                latency += self._rng.random() * plan.jitter_s
            if index in plan._drop_indices:
                dropped = True
            if dropped:
                self.now += latency
                self._fault(
                    NetworkError.DROPPED,
                    "dropped %s message %s -> %s" % (kind, source, destination),
                    server=destination,
                )
            if plan.timeout_s is not None and latency > plan.timeout_s:
                self.now += plan.timeout_s
                self._fault(
                    NetworkError.TIMEOUT,
                    "%s message %s -> %s timed out" % (kind, source, destination),
                    server=destination,
                )
            self.now += latency
        super().send(source, destination, kind, entry_count, trace_id)

    def fault_count(self) -> int:
        return sum(self.faults.values())

    def reset(self) -> None:
        with self._lock:
            super().reset()
            self._rng = random.Random(self.plan.seed)
            self.now = 0.0
            self.attempts = 0
            self.faults = {}

    def __repr__(self) -> str:
        return "FaultInjector(messages=%d, faults=%d, now=%.3fs)" % (
            self.messages, self.fault_count(), self.now
        )
