"""A directory server owning part of the hierarchical namespace.

As in Section 3.3, each server provides directory service for the naming
contexts (domain subtrees) registered to it; subdomains may be delegated to
other servers, in which case the parent server does *not* hold the
delegated entries.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional

from ..engine.engine import QueryEngine
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..obs.trace import NULL_TRACER
from ..query.ast import AtomicQuery
from ..storage.runs import Run

__all__ = ["DirectoryServer"]


class DirectoryServer:
    """One server: a name, its naming contexts and a local engine."""

    def __init__(
        self,
        name: str,
        schema: DirectorySchema,
        contexts: List[DN],
        page_size: int = 16,
        buffer_pages: int = 8,
        tracer=None,
    ):
        self.name = name
        self.contexts = list(contexts)
        self._staging = DirectoryInstance(schema)
        self._engine: Optional[QueryEngine] = None
        self._engine_lock = threading.Lock()
        self._page_size = page_size
        self._buffer_pages = buffer_pages
        #: This server's own tracer; remote calls carrying a trace context
        #: graft their spans into the caller's trace (same trace id).
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def holds(self, dn: DN) -> bool:
        """Whether this server's contexts cover ``dn`` (ignoring delegation,
        which the federation's partitioning already resolved)."""
        return any(context.is_prefix_of(dn) for context in self.contexts)

    def load(self, entries: Iterable[Entry]) -> None:
        """Stage entries before the first query (bulk load)."""
        if self._engine is not None:
            raise RuntimeError("server %s is already serving" % self.name)
        for entry in entries:
            self._staging.add_entry(entry)

    def reload(self, entries: Iterable[Entry]) -> None:
        """Replace the server's holdings (replication refresh): drops the
        current store and stages the new image."""
        self._staging = DirectoryInstance(self._staging.schema)
        self._engine = None
        self.load(entries)

    @property
    def engine(self) -> QueryEngine:
        """The local query engine (built lazily from the staged entries).
        The build is locked: parallel scatter workers may race here on a
        server's first query, and a double build would strand half the
        loaded pages."""
        if self._engine is None:
            with self._engine_lock:
                if self._engine is None:
                    self._engine = QueryEngine.from_instance(
                        self._staging,
                        page_size=self._page_size,
                        buffer_pages=self._buffer_pages,
                        tracer=self.tracer,
                    )
        return self._engine

    def evaluate_atomic(self, query: AtomicQuery, trace_context=None) -> Run:
        """Serve one atomic query against the locally held entries.

        ``trace_context`` is a :meth:`~repro.obs.trace.Tracer.context`
        dict from a remote caller; when this server traces, its span joins
        the caller's trace (propagated trace id, parented under the
        caller's span)."""
        if not self.tracer.enabled:
            return self.engine.atomic_run(query)
        with self.tracer.span(
            "serve-atomic", context=trace_context, server=self.name, query=str(query)
        ) as span:
            run = self.engine.atomic_run(query)
            span.set(rows=len(run))
            return run

    def entry_count(self) -> int:
        return len(self.engine.store)

    def __repr__(self) -> str:
        return "DirectoryServer(%r, contexts=%s)" % (
            self.name,
            [str(context) for context in self.contexts],
        )
