"""A directory server owning part of the hierarchical namespace.

As in Section 3.3, each server provides directory service for the naming
contexts (domain subtrees) registered to it; subdomains may be delegated to
other servers, in which case the parent server does *not* hold the
delegated entries.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..engine.engine import QueryEngine
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from ..query.ast import AtomicQuery
from ..storage.runs import Run

__all__ = ["DirectoryServer"]


class DirectoryServer:
    """One server: a name, its naming contexts and a local engine."""

    def __init__(
        self,
        name: str,
        schema: DirectorySchema,
        contexts: List[DN],
        page_size: int = 16,
        buffer_pages: int = 8,
    ):
        self.name = name
        self.contexts = list(contexts)
        self._staging = DirectoryInstance(schema)
        self._engine: Optional[QueryEngine] = None
        self._page_size = page_size
        self._buffer_pages = buffer_pages

    def holds(self, dn: DN) -> bool:
        """Whether this server's contexts cover ``dn`` (ignoring delegation,
        which the federation's partitioning already resolved)."""
        return any(context.is_prefix_of(dn) for context in self.contexts)

    def load(self, entries: Iterable[Entry]) -> None:
        """Stage entries before the first query (bulk load)."""
        if self._engine is not None:
            raise RuntimeError("server %s is already serving" % self.name)
        for entry in entries:
            self._staging.add_entry(entry)

    def reload(self, entries: Iterable[Entry]) -> None:
        """Replace the server's holdings (replication refresh): drops the
        current store and stages the new image."""
        self._staging = DirectoryInstance(self._staging.schema)
        self._engine = None
        self.load(entries)

    @property
    def engine(self) -> QueryEngine:
        """The local query engine (built lazily from the staged entries)."""
        if self._engine is None:
            self._engine = QueryEngine.from_instance(
                self._staging,
                page_size=self._page_size,
                buffer_pages=self._buffer_pages,
            )
        return self._engine

    def evaluate_atomic(self, query: AtomicQuery) -> Run:
        """Serve one atomic query against the locally held entries."""
        return self.engine.atomic_run(query)

    def entry_count(self) -> int:
        return len(self.engine.store)

    def __repr__(self) -> str:
        return "DirectoryServer(%r, contexts=%s)" % (
            self.name,
            [str(context) for context in self.contexts],
        )
