"""A deterministic, Jepsen-style consistency harness for replication.

:class:`ConsistencyHarness` drives one :class:`~repro.dist.replication.
ReplicatedContext` through a *seeded* schedule of client writes, shipping
rounds, replica reads, crash/partition windows (on the fault injector's
simulated clock), epoch-fenced failovers and -- for a durable primary --
mid-commit WAL process crashes with recovery.  Everything is drawn from
one ``random.Random(seed)`` and the injector's own seeded RNG, so a
(seed, configuration) pair replays the *exact* same history: a failing
schedule is a reproducible bug report, not an anecdote.

While the schedule runs the harness keeps an **oracle**: the lineage of
committed change records (by lsn) and the subset of lsns that were
acknowledged to the client at the configured ack level.  At the end --
and at checkpoints along the way -- it checks the invariants the design
promises:

- **acked-write durability** -- at ``ack="quorum"``/``"all"`` no
  acknowledged write is ever lost by a failover or a primary crash
  (at ``ack="primary"`` such loss is *expected* and only counted);
- **no split-brain** -- a deposed primary's writes and ships are fenced,
  never accepted;
- **prefix consistency** -- every replica's state equals the oracle's
  replay of the lineage up to that replica's applied lsn (a diverged
  node is quarantined behind ``needs_resync`` until resynced, which is
  itself part of the invariant);
- **monotone (epoch, lsn)** -- per replica, shipped batches never go
  backwards in epoch nor overlap within an epoch;
- **bounded staleness** -- a read served through the
  :class:`~repro.dist.replication.AvailabilityRouter` never came from a
  replica lagging past the read's ``max_lag``;
- **convergence** -- after the final heal + sync rounds every node's
  state equals the oracle's full replay.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple

from ..filters.ast import MatchAll
from ..model.dn import DN
from ..query.ast import AtomicQuery, Scope
from ..txn.records import ChangeRecord
from ..txn.wal import CrashPlan, SimulatedCrash
from ..workload import synthetic_schema
from .errors import ReplicationError
from .faults import FaultInjector, FaultPlan
from .replication import AvailabilityRouter, ReplicatedContext

__all__ = ["ConsistencyHarness", "ConsistencyReport", "run_matrix"]

CONTEXT = "ou=replicated, o=paper"


def _entry_digest(entry) -> Tuple:
    """An order-insensitive, comparison-stable image of one entry."""
    return (
        tuple(sorted(entry.classes)),
        tuple(
            sorted(
                (attr, tuple(sorted(repr(v) for v in entry.values(attr))))
                for attr in entry.attributes()
            )
        ),
    )


class ConsistencyReport:
    """What one schedule did and which invariants held."""

    def __init__(self, seed: int, ack: str, durable: bool):
        self.seed = seed
        self.ack = ack
        self.durable = durable
        self.steps = 0
        self.writes_acked = 0
        self.writes_unacked = 0
        self.writes_lost_unacked = 0
        #: Acked writes lost on failover -- only possible (and only
        #: tolerated) at ack="primary".
        self.writes_lost_acked = 0
        self.reads = 0
        self.syncs = 0
        self.failovers = 0
        self.fenced_rejections = 0
        self.process_crashes = 0
        self.resyncs = 0
        self.final_epoch = 1
        #: Invariant name -> held?  (filled by the final check pass).
        self.checks: Dict[str, bool] = {}
        self.violations: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def violate(self, message: str) -> None:
        self.violations.append(message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ack": self.ack,
            "durable": self.durable,
            "ok": self.ok,
            "steps": self.steps,
            "writes_acked": self.writes_acked,
            "writes_unacked": self.writes_unacked,
            "writes_lost_acked": self.writes_lost_acked,
            "writes_lost_unacked": self.writes_lost_unacked,
            "reads": self.reads,
            "syncs": self.syncs,
            "failovers": self.failovers,
            "fenced_rejections": self.fenced_rejections,
            "process_crashes": self.process_crashes,
            "resyncs": self.resyncs,
            "final_epoch": self.final_epoch,
            "checks": dict(self.checks),
            "violations": list(self.violations),
        }

    def __repr__(self) -> str:
        return "ConsistencyReport(seed=%d, %s, steps=%d, epoch=%d, %s)" % (
            self.seed, self.ack, self.steps, self.final_epoch,
            "ok" if self.ok else "%d VIOLATIONS" % len(self.violations),
        )


class ConsistencyHarness:
    """One seeded schedule over one replication group.

    ``steps`` bounds the schedule length; ``durable_dir`` (a fresh
    directory path) puts a real WAL under the primary and adds mid-commit
    process crashes + recovery to the fault mix.  ``metrics`` should be a
    private :class:`~repro.obs.metrics.MetricsRegistry` when harnesses
    run in bulk.
    """

    def __init__(
        self,
        seed: int = 0,
        secondaries: int = 2,
        steps: int = 48,
        ack: str = "quorum",
        durable_dir: Optional[str] = None,
        metrics=None,
        log=None,
    ):
        self.seed = seed
        self.steps = steps
        self.rng = random.Random(seed)
        self.schema = synthetic_schema()
        self.context = DN.parse(CONTEXT)
        self.plan = FaultPlan(seed=seed + 1)
        self.injector = FaultInjector(self.plan, metrics=metrics)
        self.replicated = ReplicatedContext(
            self.context,
            self.schema,
            secondaries=secondaries,
            network=self.injector,
            ack=ack,
            durable_dir=durable_dir,
            metrics=metrics,
            log=log,
        )
        self.router = AvailabilityRouter(self.replicated)
        self.report = ConsistencyReport(seed, ack, durable_dir is not None)
        #: lsn -> committed record of the *current* lineage (truncated to
        #: the fork lsn on every failover).
        self.lineage: Dict[int, ChangeRecord] = {}
        #: lsns acknowledged to the client at the configured ack level.
        self.acked: Set[int] = set()
        #: node name -> simulated-clock time its crash window ends.
        self.down: Dict[str, float] = {}
        #: Latest end of any fault window (crash or partition) -- the
        #: final heal must run the clock past it.
        self._fault_horizon = 0.0
        self._next_id = 0

    # -- the oracle ----------------------------------------------------------

    def _replay(self, upto_lsn: Optional[int] = None) -> Dict[DN, Tuple]:
        """The oracle's state: the lineage folded up to ``upto_lsn``."""
        state: Dict[DN, Tuple] = {}
        for lsn in sorted(self.lineage):
            if upto_lsn is not None and lsn > upto_lsn:
                break
            record = self.lineage[lsn]
            if record.kind == "delete":
                if record.subtree:
                    for dn in [d for d in state if record.dn.is_prefix_of(d)]:
                        del state[dn]
                else:
                    state.pop(record.dn, None)
            else:
                state[record.dn] = _entry_digest(record.entry)
        return state

    def _node_state(self, node) -> Dict[DN, Tuple]:
        node.directory.compact()
        return {
            entry.dn: _entry_digest(entry)
            for entry in node.directory.store.scan_all()
        }

    def _record_commit(self, acked: bool) -> None:
        record = self.replicated.primary.applied[-1]
        self.lineage[record.lsn] = record
        if acked:
            self.acked.add(record.lsn)
            self.report.writes_acked += 1
        else:
            self.report.writes_unacked += 1

    # -- schedule steps ------------------------------------------------------

    def _write(self) -> None:
        ctx = self.replicated
        state = self._replay()
        roll = self.rng.random()
        try:
            if roll < 0.6 or not state:
                parent = (
                    self.rng.choice(sorted(state))
                    if state and self.rng.random() < 0.3
                    else self.context
                )
                name = "w%d" % self._next_id
                self._next_id += 1
                ctx.add(
                    parent.child("name=%s" % name),
                    ["item"],
                    {"name": [name], "weight": [self.rng.randint(0, 99)]},
                )
            elif roll < 0.85:
                dn = self.rng.choice(sorted(state))
                ctx.modify(dn, replace={"weight": [self.rng.randint(0, 99)]})
            else:
                dn = self.rng.choice(sorted(state))
                has_children = any(
                    dn.is_prefix_of(other) and other != dn for other in state
                )
                ctx.delete(dn, recursive=has_children)
        except ReplicationError as exc:
            if exc.code != ReplicationError.ACK_FAILED:
                raise
            # Committed locally but under-replicated: NOT acknowledged.
            self._record_commit(acked=False)
            return
        except SimulatedCrash:
            self._recover_primary()
            return
        self._record_commit(acked=True)

    def _sync(self) -> None:
        self.replicated.sync()
        self.report.syncs += 1

    def _read(self) -> None:
        ctx = self.replicated
        limit = self.rng.choice((0, 1, 2, 4))
        query = AtomicQuery(self.context, Scope.SUB, MatchAll())
        try:
            self.router.evaluate(query, max_lag=limit)
        except ReplicationError as exc:
            if exc.code != ReplicationError.NO_REPLICA:
                raise
            return
        self.report.reads += 1
        served = self.router.served_by[-1]
        lag = ctx.lag(served)
        if lag > limit:
            self.report.violate(
                "seed %d: read served by %s at lag %d > max_lag %d"
                % (self.seed, served, lag, limit)
            )
        self._check_prefix(ctx.node(served))

    def _check_prefix(self, node) -> None:
        """A (non-diverged) replica's state must equal the oracle's replay
        up to exactly the replica's applied lsn."""
        if node.needs_resync or node.role == "deposed":
            return  # quarantined until resync -- by design
        expected = self._replay(node.applied_lsn)
        actual = self._node_state(node)
        if actual != expected:
            self.report.violate(
                "seed %d: %s at lsn %d diverges from the oracle prefix "
                "(%d vs %d entries)"
                % (self.seed, node.name, node.applied_lsn,
                   len(actual), len(expected))
            )

    def _fault(self) -> None:
        ctx = self.replicated
        now = self.injector.now
        window = now + self.rng.uniform(2.0, 6.0)
        names = list(ctx.nodes)
        allowed_down = len(names) - ctx.quorum()
        self._fault_horizon = max(self._fault_horizon, window)
        if self.rng.random() < 0.6 and len(self.down) < allowed_down:
            up = [n for n in names if n not in self.down]
            name = self.rng.choice(up)
            self.plan.crash(name, start=now, end=window)
            self.down[name] = window
            self.router.mark_down(name)
        else:
            secondary = self.rng.choice(
                [n.name for n in ctx.secondaries]
            )
            self.plan.partition(ctx.primary_name, secondary, now, window)

    def _expire_downs(self) -> None:
        now = self.injector.now
        for name in [n for n, end in self.down.items() if end <= now]:
            del self.down[name]
            self.router.mark_up(name)

    def _promote(self) -> None:
        ctx = self.replicated
        try:
            new_primary = ctx.promote(exclude=set(self.down))
        except ReplicationError as exc:
            if exc.code != ReplicationError.NO_CANDIDATE:
                raise
            return
        self.report.failovers += 1
        fork_lsn = ctx.node(new_primary).applied_lsn
        lost_acked = sorted(l for l in self.acked if l > fork_lsn)
        lost_unacked = sorted(
            l for l in self.lineage
            if l > fork_lsn and l not in self.acked
        )
        if lost_acked:
            if self.replicated.ack == "primary":
                # Async replication loses the unshipped tail: counted,
                # tolerated -- this is exactly what quorum acks buy you.
                self.report.writes_lost_acked += len(lost_acked)
            else:
                self.report.violate(
                    "seed %d: failover to %s at fork lsn %d lost ACKED "
                    "writes %s under ack=%s"
                    % (self.seed, new_primary, fork_lsn, lost_acked,
                       self.replicated.ack)
                )
        self.report.writes_lost_unacked += len(lost_unacked)
        self.lineage = {
            l: r for l, r in self.lineage.items() if l <= fork_lsn
        }
        self.acked = {l for l in self.acked if l <= fork_lsn}

    def _deposed_attempt(self) -> None:
        """Split-brain probe: a deposed primary tries to write, then to
        ship.  Both must be fenced."""
        ctx = self.replicated
        deposed = [
            n for n in ctx.nodes.values()
            if n.role == "deposed" and n.name not in self.down
        ]
        if not deposed:
            return
        node = self.rng.choice(deposed)
        name = "stale%d" % self._next_id
        self._next_id += 1
        for action, call in (
            ("write", lambda: ctx.write_via(
                node.name, "add", self.context.child("name=%s" % name),
                ["item"], {"name": [name]},
            )),
            ("ship", lambda: ctx.ship_via(node.name)),
        ):
            try:
                call()
            except ReplicationError as exc:
                if exc.code == ReplicationError.FENCED:
                    self.report.fenced_rejections += 1
                    continue
                raise
            self.report.violate(
                "seed %d: SPLIT BRAIN -- deposed %s %s was accepted "
                "at epoch %d" % (self.seed, node.name, action, ctx.epoch)
            )

    def _crash_primary_process(self) -> None:
        """Durable mode only: kill the primary's WAL mid-flush on its next
        write, then recover it from checkpoint + log."""
        wal = getattr(self.replicated.primary.directory, "wal", None)
        if wal is None:
            # After a failover the acting primary may be a plain in-memory
            # secondary: nothing to crash.
            self._write()
            return
        wal.crash_plan = CrashPlan(
            crash_at_flush=wal.flushes,
            torn_bytes=self.rng.randint(0, 48),
        )
        name = "c%d" % self._next_id
        self._next_id += 1
        try:
            self.replicated.add(
                self.context.child("name=%s" % name), ["item"], {"name": [name]}
            )
        except (SimulatedCrash, ReplicationError):
            # The crash may surface directly or -- at quorum -- as a
            # failed ship from the crashed WAL; either way: recover.
            self._recover_primary()
            return
        # The plan's flush index had already passed: no crash, a normal
        # acked write.
        wal.crash_plan = None
        self._record_commit(acked=True)

    def _recover_primary(self) -> None:
        ctx = self.replicated
        self.report.process_crashes += 1
        node = ctx.reopen_primary()
        head = node.applied_lsn
        survived = {r.lsn: r for r in node.applied}
        # Records that were durable but never acknowledged (the crash beat
        # the ack) are still part of the lineage -- they will ship.
        for lsn, record in survived.items():
            self.lineage.setdefault(lsn, record)
        lost_acked = sorted(l for l in self.acked if l > head)
        if lost_acked:
            self.report.violate(
                "seed %d: primary crash recovery at lsn %d lost ACKED "
                "writes %s (ack precedes durability?)"
                % (self.seed, head, lost_acked)
            )
        self.lineage = {l: r for l, r in self.lineage.items() if l <= head}
        self.acked = {l for l in self.acked if l <= head}

    # -- the run -------------------------------------------------------------

    def run(self) -> ConsistencyReport:
        ctx = self.replicated
        durable = self.report.durable
        for _step in range(self.steps):
            self.report.steps += 1
            self._expire_downs()
            if ctx.primary_name in self.down:
                self._promote()
                self.injector.sleep(1.0)
                continue
            roll = self.rng.random()
            if roll < 0.40:
                self._write()
            elif roll < 0.60:
                self._sync()
            elif roll < 0.75:
                self._read()
            elif roll < 0.85:
                self._fault()
            elif roll < 0.93 or not durable:
                self._deposed_attempt()
            else:
                self._crash_primary_process()
            self.injector.sleep(1.0)
        self._finish()
        return self.report

    def _finish(self) -> None:
        ctx = self.replicated
        # Heal: run the clock past every open window, bring routing back.
        horizon = max(
            [self.injector.now, self._fault_horizon] + list(self.down.values())
        )
        self.injector.sleep(horizon - self.injector.now + 1.0)
        self._expire_downs()
        before = len(self.report.violations)
        # Converge: resyncs land in round one, suffixes in round two.
        for _round in range(3):
            self._sync()
            if all(ctx.lag(n.name) == 0 for n in ctx.secondaries):
                break
        oracle = self._replay()
        for node in ctx.nodes.values():
            if ctx.lag(node.name) != 0 or node.needs_resync:
                self.report.violate(
                    "seed %d: %s never converged (lag %d, needs_resync=%r)"
                    % (self.seed, node.name, ctx.lag(node.name),
                       node.needs_resync)
                )
                continue
            state = self._node_state(node)
            if state != oracle:
                self.report.violate(
                    "seed %d: %s converged to a different state than the "
                    "oracle (%d vs %d entries)"
                    % (self.seed, node.name, len(state), len(oracle))
                )
        self.report.checks["convergence"] = (
            len(self.report.violations) == before
        )
        self._check_ship_log()
        self.report.checks["acked_write_durability"] = not any(
            "ACKED" in v for v in self.report.violations
        )
        self.report.checks["no_split_brain"] = not any(
            "SPLIT BRAIN" in v for v in self.report.violations
        )
        self.report.checks["bounded_staleness"] = not any(
            "max_lag" in v for v in self.report.violations
        )
        self.report.checks["prefix_consistency"] = not any(
            "oracle prefix" in v for v in self.report.violations
        )
        self.report.resyncs = ctx.resyncs
        self.report.final_epoch = ctx.epoch

    def _check_ship_log(self) -> None:
        """Per replica, shipped batches must move forward: epochs never
        decrease and within one epoch batches never overlap."""
        ok = True
        group_epoch = 0
        last: Dict[str, Tuple[int, int]] = {}
        for kind, epoch, name, from_lsn, to_lsn in self.replicated.ship_log:
            if epoch < group_epoch:
                self.report.violate(
                    "seed %d: group epoch went backwards (%d after %d)"
                    % (self.seed, epoch, group_epoch)
                )
                ok = False
            group_epoch = max(group_epoch, epoch)
            if kind == "promote":
                continue
            prev_epoch, prev_to = last.get(name, (0, -1))
            if epoch < prev_epoch:
                self.report.violate(
                    "seed %d: %s shipped at epoch %d after epoch %d"
                    % (self.seed, name, epoch, prev_epoch)
                )
                ok = False
            if kind == "ship" and epoch == prev_epoch and from_lsn <= prev_to:
                self.report.violate(
                    "seed %d: overlapping ship to %s within epoch %d "
                    "(lsn %d after %d)"
                    % (self.seed, name, epoch, from_lsn, prev_to)
                )
                ok = False
            last[name] = (epoch, to_lsn)
        self.report.checks["monotone_epoch_lsn"] = ok


def run_matrix(
    seeds,
    secondaries: int = 2,
    steps: int = 48,
    ack: str = "quorum",
    durable_root: Optional[str] = None,
    log=None,
) -> List[ConsistencyReport]:
    """Run one harness per seed (each with a private metrics registry);
    ``durable_root`` gives every schedule its own durable data dir under
    it.  Returns the reports in seed order."""
    import os

    from ..obs.metrics import MetricsRegistry

    reports = []
    for seed in seeds:
        durable_dir = None
        if durable_root is not None:
            durable_dir = os.path.join(durable_root, "seed%d" % seed)
        harness = ConsistencyHarness(
            seed=seed,
            secondaries=secondaries,
            steps=steps,
            ack=ack,
            durable_dir=durable_dir,
            metrics=MetricsRegistry(),
            log=log,
        )
        reports.append(harness.run())
    return reports
