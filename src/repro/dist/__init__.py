"""Distributed directory service: servers, DNS-style location, federation
(Sections 3.3 and 8.3), plus the chaos toolkit -- fault injection,
retry/backoff, circuit breakers and graceful partial-result degradation
(footnote 4's availability story, made testable)."""

from .consistency import ConsistencyHarness, ConsistencyReport, run_matrix
from .errors import (
    DistError,
    LocatorError,
    NetworkError,
    ReferralError,
    ReplicationError,
)
from .faults import FaultInjector, FaultPlan
from .federation import FederatedDirectory, FederatedResult
from .locator import ServerLocator
from .network import SimulatedNetwork
from .referral import Referral, ReferralClient
from .replication import AvailabilityRouter, ReplicaNode, ReplicatedContext
from .resilience import CircuitBreaker, ResiliencePolicy, RetryPolicy, StaleStore
from .server import DirectoryServer

__all__ = [
    "AvailabilityRouter",
    "CircuitBreaker",
    "ConsistencyHarness",
    "ConsistencyReport",
    "DirectoryServer",
    "DistError",
    "FaultInjector",
    "FaultPlan",
    "FederatedDirectory",
    "FederatedResult",
    "LocatorError",
    "NetworkError",
    "Referral",
    "ReferralClient",
    "ReferralError",
    "ReplicaNode",
    "ReplicatedContext",
    "ReplicationError",
    "ResiliencePolicy",
    "RetryPolicy",
    "ServerLocator",
    "SimulatedNetwork",
    "StaleStore",
    "run_matrix",
]
