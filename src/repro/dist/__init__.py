"""Distributed directory service: servers, DNS-style location, federation
(Sections 3.3 and 8.3)."""

from .federation import FederatedDirectory, FederatedResult
from .locator import LocatorError, ServerLocator
from .network import SimulatedNetwork
from .referral import Referral, ReferralClient, ReferralError
from .replication import AvailabilityRouter, ReplicatedContext, ReplicationError
from .server import DirectoryServer

__all__ = [
    "FederatedDirectory",
    "FederatedResult",
    "LocatorError",
    "ServerLocator",
    "SimulatedNetwork",
    "Referral",
    "ReferralClient",
    "ReferralError",
    "AvailabilityRouter",
    "ReplicatedContext",
    "ReplicationError",
    "DirectoryServer",
]
