"""Retry, circuit breaking and degradation policy for the federation.

The coordinator's remote atomic calls (``_CoordinatorEngine.atomic_run``)
go through three layers, in order:

1. a per-server :class:`CircuitBreaker` -- after ``failure_threshold``
   consecutive failures the server is not even attempted until a reset
   timeout elapses (half-open probes decide recovery); state transitions
   are counted in ``repro_breaker_transitions_total``;
2. a :class:`RetryPolicy` -- bounded attempts with exponential backoff
   and deterministic (seeded) jitter, capped by an optional per-query
   deadline on the simulated clock;
3. the degradation ladder of :class:`ResiliencePolicy` -- serve the last
   known good sublist from the :class:`StaleStore`, fail over to an
   attached replica router, or mark the result partial (``strict`` mode
   raises instead).

Everything here is clock-agnostic: callers pass ``now`` explicitly (the
federation reads it off the fault injector's simulated clock), so tests
and the chaos benchmark control time exactly.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

__all__ = ["RetryPolicy", "CircuitBreaker", "StaleStore", "ResiliencePolicy"]


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``backoff(failures)`` is ``backoff_s * multiplier**(failures-1)``
    inflated by up to ``jitter`` (relative, from this policy's own seeded
    RNG -- deterministic for a fixed execution).  ``deadline_s`` bounds
    the whole query's retry budget on the simulated clock.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        backoff_s: float = 0.05,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        deadline_s: Optional[float] = None,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if backoff_s < 0 or jitter < 0 or multiplier < 1:
            raise ValueError("invalid backoff parameters")
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.multiplier = multiplier
        self.jitter = jitter
        self.deadline_s = deadline_s
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def backoff(self, failures: int) -> float:
        """The wait before the next attempt, after ``failures`` (>= 1)
        consecutive failures."""
        base = self.backoff_s * (self.multiplier ** (failures - 1))
        with self._lock:  # the seeded RNG is shared across workers
            draw = self._rng.random()
        return base * (1.0 + self.jitter * draw)

    def should_retry(self, attempts: int, now: float,
                     deadline: Optional[float]) -> bool:
        """Whether another attempt is allowed after ``attempts`` tries."""
        if attempts >= self.max_attempts:
            return False
        return deadline is None or now < deadline

    def __repr__(self) -> str:
        return "RetryPolicy(max_attempts=%d, backoff=%gs, deadline=%s)" % (
            self.max_attempts, self.backoff_s, self.deadline_s,
        )


class CircuitBreaker:
    """A per-server closed/open/half-open breaker.

    Closed counts consecutive failures; at ``failure_threshold`` it
    opens.  Open rejects everything until ``reset_timeout_s`` of
    (simulated) time has passed, then half-opens and admits up to
    ``half_open_probes`` trial calls: one success closes it, one failure
    re-opens it.  ``transitions`` keeps the full history for tests and
    the chaos report.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_probes: int = 1,
        name: str = "",
        metrics=None,
        log=None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        self._log = log
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self.name = name
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self._probes = 0
        # One breaker may be consulted by several scatter workers at
        # once; state reads+transitions must be atomic or two threads can
        # both win a half-open probe slot / tear a transition append.
        self._lock = threading.Lock()
        #: (now, from_state, to_state) per transition, oldest first.
        self.transitions: List[Tuple[float, str, str]] = []
        self._m_transitions = (
            metrics.counter(
                "repro_breaker_transitions_total",
                "Circuit-breaker state transitions",
                labelnames=("server", "to"),
            )
            if metrics is not None
            else None
        )

    def _transition(self, to: str, now: float) -> None:
        if to == self.state:
            return
        self.transitions.append((now, self.state, to))
        previous, self.state = self.state, to
        if self._m_transitions is not None:
            self._m_transitions.inc(server=self.name, to=to)
        if self._log is not None and self._log.enabled:
            self._log.warning(
                "breaker.transition",
                server=self.name,
                at=now,
                to=to,
                previous=previous,
            )
        if to == self.CLOSED:
            self.failures = 0
        elif to == self.OPEN:
            self.opened_at = now
        elif to == self.HALF_OPEN:
            self._probes = 0

    def allow(self, now: float) -> bool:
        """Whether a call may be attempted at (simulated) time ``now``."""
        with self._lock:
            if self.state == self.OPEN and now - self.opened_at >= self.reset_timeout_s:
                self._transition(self.HALF_OPEN, now)
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                return False
            if self._probes < self.half_open_probes:
                self._probes += 1
                return True
            return False

    def record_success(self, now: float) -> None:
        with self._lock:
            if self.state == self.HALF_OPEN:
                self._transition(self.CLOSED, now)
            self.failures = 0

    def record_failure(self, now: float) -> None:
        with self._lock:
            if self.state == self.HALF_OPEN:
                self._transition(self.OPEN, now)
                return
            self.failures += 1
            if self.state == self.CLOSED and self.failures >= self.failure_threshold:
                self._transition(self.OPEN, now)

    def open_count(self) -> int:
        """How many times the breaker has opened (for the chaos report)."""
        return sum(1 for _, _, to in self.transitions if to == self.OPEN)

    def __repr__(self) -> str:
        return "CircuitBreaker(%r, %s, failures=%d)" % (
            self.name, self.state, self.failures
        )


class StaleStore:
    """Last-known-good remote sublists, for serve-stale degradation.

    Unlike the leaf cache (which is invalidated to stay *correct*), this
    store deliberately keeps the most recent successfully shipped result
    per ``(server, fingerprint)`` key even after invalidation -- it is
    only consulted when the owner is unreachable, and every answer from
    it is flagged with a warning.  A bounded LRU of ``max_keys`` keys.
    """

    def __init__(self, max_keys: int = 256):
        if max_keys < 1:
            raise ValueError("max_keys must be positive")
        self.max_keys = max_keys
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self.served = 0

    def put(self, key: str, entries: Sequence) -> None:
        frozen = tuple(entries)
        with self._lock:
            self._entries[key] = frozen
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_keys:
                self._entries.popitem(last=False)

    def get(self, key: str) -> Optional[tuple]:
        with self._lock:
            entries = self._entries.get(key)
            if entries is not None:
                self._entries.move_to_end(key)
                self.served += 1
            return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return "StaleStore(%d keys, served=%d)" % (len(self._entries), self.served)


class ResiliencePolicy:
    """How the federation survives remote failures.

    ``mode`` selects the last rung of the degradation ladder: "partial"
    answers with the reachable servers' data (the result is marked, with
    ``missing_servers`` and warnings), "strict" re-raises the final
    :class:`~repro.dist.errors.NetworkError`.  ``serve_stale`` enables the
    last-known-good rung; replica failover is enabled by attaching
    routers via :meth:`FederatedDirectory.attach_replica`.
    """

    MODES = ("partial", "strict")

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 5,
        breaker_reset_s: float = 30.0,
        breaker_half_open_probes: int = 1,
        mode: str = "partial",
        serve_stale: bool = True,
        stale_keys: int = 256,
    ):
        if mode not in self.MODES:
            raise ValueError("mode must be one of %s" % (self.MODES,))
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_s = breaker_reset_s
        self.breaker_half_open_probes = breaker_half_open_probes
        self.mode = mode
        self.serve_stale = serve_stale
        self.stale_keys = stale_keys

    def make_breaker(self, name: str, metrics=None, log=None) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout_s=self.breaker_reset_s,
            half_open_probes=self.breaker_half_open_probes,
            name=name,
            metrics=metrics,
            log=log,
        )

    def __repr__(self) -> str:
        return "ResiliencePolicy(mode=%r, retry=%r, serve_stale=%s)" % (
            self.mode, self.retry, self.serve_stale
        )
