"""Client-chased referrals -- the other half of distribution.

Section 8.3 describes *server-side* gathering (the queried server fetches
remote atomic results itself; :mod:`repro.dist.federation`).  Deployed
LDAP offers the dual, *client-side* style: a server that does not own a
query's base returns a **referral**, and the client chases it.  This
module implements that protocol over the same federation, so the two
strategies can be compared on identical data:

- :class:`ReferralServer` wraps a federation server: atomic queries for
  bases it owns are answered; others earn a referral to the owner;
- :class:`ReferralClient` chases referrals up to a hop limit, counting
  messages on the federation's network.

Only atomic (single base + scope) requests referral-route, as in LDAP;
composite queries must be decomposed by the client -- which is precisely
the paper's argument for putting composition inside the server.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..model.entry import Entry
from ..query.ast import AtomicQuery
from ..query.parser import parse_query
from .errors import ReferralError
from .federation import FederatedDirectory

__all__ = ["Referral", "ReferralError", "ReferralClient"]


class Referral:
    """The 'try that server instead' response."""

    def __init__(self, target: str):
        self.target = target

    def __repr__(self) -> str:
        return "Referral(-> %s)" % self.target


class ReferralClient:
    """A client bound to a federation, starting at some home server."""

    def __init__(self, federation: FederatedDirectory, home: str, max_hops: int = 8):
        self.federation = federation
        self.home = home
        self.max_hops = max_hops
        #: (server asked, outcome) per request, for inspection.
        self.trace: List[Tuple[str, str]] = []

    def _ask(self, server_name: str, query: AtomicQuery):
        """One round trip: entries if the server owns the base, else a
        referral to the owner."""
        server = self.federation.servers[server_name]
        self.federation.network.send("client", server_name, "search-request")
        if not query.base.is_null() and not server.holds(query.base):
            owner = self.federation.locator.locate(query.base)
            self.federation.network.send(
                server_name, "client", "referral"
            )
            self.trace.append((server_name, "referral -> %s" % owner))
            return Referral(owner)
        run = server.evaluate_atomic(query)
        entries = run.to_list()
        run.free()
        self.federation.network.send(
            server_name, "client", "search-result", len(entries)
        )
        self.trace.append((server_name, "%d entries" % len(entries)))
        return entries

    def search(self, query: Union[AtomicQuery, str]) -> List[Entry]:
        """Resolve one atomic query, chasing referrals from home.

        Note: when the base's subtree spans delegated subdomains, the
        owner of the base answers only from its own holdings -- the
        classic referral blind spot that server-side federation
        (Section 8.3) does not have.  The final answer additionally
        gathers subordinate owners' results, each behind its own round
        trip, to stay correct."""
        if isinstance(query, str):
            query = parse_query(query)
            if not isinstance(query, AtomicQuery):
                raise ReferralError(
                    "referral clients handle atomic queries only; "
                    "decompose composites client-side",
                    code=ReferralError.NOT_ATOMIC,
                )
        server_name = self.home
        hops = 0
        result = self._ask(server_name, query)
        while isinstance(result, Referral):
            hops += 1
            if hops > self.max_hops:
                raise ReferralError(
                    "referral limit exceeded for %s" % query,
                    code=ReferralError.LIMIT_EXCEEDED,
                )
            server_name = result.target
            if server_name not in self.federation.servers:
                raise ReferralError(
                    "referral to unknown server %r" % server_name,
                    code=ReferralError.UNKNOWN_SERVER,
                )
            result = self._ask(server_name, query)
        entries = result
        # Subordinate referrals: delegated subdomains inside the scope are
        # chased with the base narrowed to the delegated context, exactly
        # as LDAP subordinate references carry the subordinate's naming
        # context.
        if query.scope != "base":
            for owner_name, server in sorted(self.federation.servers.items()):
                if owner_name == server_name:
                    continue
                for context in server.contexts:
                    if not query.base.is_prefix_of(context) or context == query.base:
                        continue
                    if query.scope == "sub":
                        narrowed = AtomicQuery(context, "sub", query.filter)
                    elif query.base.is_parent_of(context):
                        # one-scope: only the delegated context entry itself
                        # can be a child of the base.
                        narrowed = AtomicQuery(context, "base", query.filter)
                    else:
                        continue
                    subordinate = self._ask(owner_name, narrowed)
                    if not isinstance(subordinate, Referral):
                        entries.extend(subordinate)
        entries.sort(key=lambda entry: entry.dn.key())
        return entries
