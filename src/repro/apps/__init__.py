"""The two motivating DEN applications (Section 2): QoS/SLA policy
directories and TOPS telephony directories."""

from . import qos, tops, whitepages

__all__ = ["qos", "tops", "whitepages"]
