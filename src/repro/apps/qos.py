"""The QoS / SLA policy application (Example 2.1, Example 3.1, Figure 12).

A directory of network service-level policies in the schema of Chaudhury
et al. [11]: ``SLAPolicyRules`` entries reference ``trafficProfile``,
``policyValidityPeriod`` and ``SLADSAction`` entries through dn-valued
attributes, grouped under ``ou=networkPolicies`` per administrative domain.

The module provides:

- :func:`qos_schema` -- the directory schema;
- :class:`QoSDirectory` -- a builder for policy directories (and
  :func:`build_paper_fragment`, the exact Figure 12 sample);
- :class:`PacketProfile` + :class:`PolicyDecisionPoint` -- the enforcement
  path: given a packet's attributes and the current time, compute the
  actions of the matching policies such that (a) no higher-priority policy
  applies and (b) no same-priority exception applies (Section 2's "Directory
  Queries and Answers");
- :func:`find_conflicts` -- static detection of unresolved policy conflicts
  (same priority, overlapping profiles, different actions, no exception
  relation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..engine.engine import QueryEngine
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema

__all__ = [
    "qos_schema",
    "QoSDirectory",
    "build_paper_fragment",
    "PacketProfile",
    "PolicyDecisionPoint",
    "find_conflicts",
]


def qos_schema() -> DirectorySchema:
    """The schema of Figure 12 (plus the DNS spine classes of Figure 1)."""
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("ou", "string")
    schema.add_attribute("SLAPolicyName", "string")
    schema.add_attribute("SLAPolicyScope", "string")
    schema.add_attribute("SLARulePriority", "int")
    schema.add_attribute("SLAExceptionRef", "distinguishedName")
    schema.add_attribute("SLATPRef", "distinguishedName")
    schema.add_attribute("SLAPVPRef", "distinguishedName")
    schema.add_attribute("SLADSActRef", "distinguishedName")
    schema.add_attribute("TPName", "string")
    schema.add_attribute("SourceAddress", "string")
    schema.add_attribute("DestAddress", "string")
    schema.add_attribute("SourcePort", "int")
    schema.add_attribute("DestPort", "int")
    schema.add_attribute("Protocol", "string")
    schema.add_attribute("PVPName", "string")
    schema.add_attribute("PVStartTime", "int")   # YYYYMMDDhhmmss
    schema.add_attribute("PVEndTime", "int")
    schema.add_attribute("PVDayOfWeek", "int")   # 1 = Monday ... 7 = Sunday
    schema.add_attribute("DSActionName", "string")
    schema.add_attribute("DSPermission", "string")
    schema.add_attribute("DSInProfilePeakRate", "int")
    schema.add_attribute("DSDropPriority", "int")

    schema.add_class("dcObject", {"dc"})
    schema.add_class("domain", {"dc"})
    schema.add_class("organizationalUnit", {"ou"})
    schema.add_class(
        "SLAPolicyRules",
        {
            "SLAPolicyName",
            "SLAPolicyScope",
            "SLARulePriority",
            "SLAExceptionRef",
            "SLATPRef",
            "SLAPVPRef",
            "SLADSActRef",
        },
    )
    schema.add_class(
        "trafficProfile",
        {"TPName", "SourceAddress", "DestAddress", "SourcePort", "DestPort", "Protocol"},
    )
    schema.add_class(
        "policyValidityPeriod",
        {"PVPName", "PVStartTime", "PVEndTime", "PVDayOfWeek"},
    )
    schema.add_class(
        "SLADSAction",
        {"DSActionName", "DSPermission", "DSInProfilePeakRate", "DSDropPriority"},
    )
    return schema


class QoSDirectory:
    """Builder for an SLA policy directory under one administrative domain."""

    CONTAINERS = ("SLAPolicyRules", "trafficProfile", "policyValidityPeriod", "SLADSAction")

    def __init__(self, domain: Union[DN, str] = "dc=research, dc=att, dc=com"):
        if isinstance(domain, str):
            domain = DN.parse(domain)
        self.schema = qos_schema()
        self.instance = DirectoryInstance(self.schema)
        self.domain = domain
        self._build_spine()
        self.policies_dn = self._container("SLAPolicyRules")
        self.profiles_dn = self._container("trafficProfile")
        self.periods_dn = self._container("policyValidityPeriod")
        self.actions_dn = self._container("SLADSAction")

    def _build_spine(self) -> None:
        # The DNS-derived upper levels (Figure 1), root-most first.
        spine = list(self.domain.rdns)[::-1]
        dn = DN(())
        for rdn in spine:
            dn = dn.child(rdn)
            attrs = {attr: [value] for attr, value in rdn}
            self.instance.add(dn, ["dcObject"], attrs)
        policies = self.domain.child("ou=networkPolicies")
        self.instance.add(policies, ["organizationalUnit"], ou="networkPolicies")
        for container in self.CONTAINERS:
            self.instance.add(
                policies.child("ou=%s" % container),
                ["organizationalUnit"],
                ou=container,
            )

    def _container(self, name: str) -> DN:
        return self.domain.child("ou=networkPolicies").child("ou=%s" % name)

    # -- the four entry kinds ----------------------------------------------

    def add_traffic_profile(
        self,
        name: str,
        source_address: Optional[Union[str, Sequence[str]]] = None,
        dest_address: Optional[str] = None,
        source_port: Optional[int] = None,
        dest_port: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> DN:
        dn = self.profiles_dn.child("TPName=%s" % name)
        attrs: Dict[str, list] = {"TPName": [name]}
        if source_address is not None:
            values = [source_address] if isinstance(source_address, str) else list(source_address)
            attrs["SourceAddress"] = values
        if dest_address is not None:
            attrs["DestAddress"] = [dest_address]
        if source_port is not None:
            attrs["SourcePort"] = [source_port]
        if dest_port is not None:
            attrs["DestPort"] = [dest_port]
        if protocol is not None:
            attrs["Protocol"] = [protocol]
        self.instance.add(dn, ["trafficProfile"], attrs)
        return dn

    def add_validity_period(
        self,
        name: str,
        start: Optional[int] = None,
        end: Optional[int] = None,
        days_of_week: Sequence[int] = (),
    ) -> DN:
        dn = self.periods_dn.child("PVPName=%s" % name)
        attrs: Dict[str, list] = {"PVPName": [name]}
        if start is not None:
            attrs["PVStartTime"] = [start]
        if end is not None:
            attrs["PVEndTime"] = [end]
        if days_of_week:
            attrs["PVDayOfWeek"] = list(days_of_week)
        self.instance.add(dn, ["policyValidityPeriod"], attrs)
        return dn

    def add_action(
        self,
        name: str,
        permission: str,
        peak_rate: Optional[int] = None,
        drop_priority: Optional[int] = None,
    ) -> DN:
        dn = self.actions_dn.child("DSActionName=%s" % name)
        attrs: Dict[str, list] = {"DSActionName": [name], "DSPermission": [permission]}
        if peak_rate is not None:
            attrs["DSInProfilePeakRate"] = [peak_rate]
        if drop_priority is not None:
            attrs["DSDropPriority"] = [drop_priority]
        self.instance.add(dn, ["SLADSAction"], attrs)
        return dn

    def add_policy(
        self,
        name: str,
        priority: int,
        action: str,
        profiles: Sequence[str] = (),
        periods: Sequence[str] = (),
        exceptions: Sequence[str] = (),
        scope: str = "DataTraffic",
    ) -> DN:
        """Add an ``SLAPolicyRules`` entry; profile/period/action/exception
        arguments are the *names* of previously added entries."""
        dn = self.policies_dn.child("SLAPolicyName=%s" % name)
        attrs: Dict[str, list] = {
            "SLAPolicyName": [name],
            "SLAPolicyScope": [scope],
            "SLARulePriority": [priority],
            "SLADSActRef": [self.actions_dn.child("DSActionName=%s" % action)],
        }
        if profiles:
            attrs["SLATPRef"] = [
                self.profiles_dn.child("TPName=%s" % profile) for profile in profiles
            ]
        if periods:
            attrs["SLAPVPRef"] = [
                self.periods_dn.child("PVPName=%s" % period) for period in periods
            ]
        if exceptions:
            attrs["SLAExceptionRef"] = [
                self.policies_dn.child("SLAPolicyName=%s" % exc) for exc in exceptions
            ]
        self.instance.add(dn, ["SLAPolicyRules"], attrs)
        return dn

    def engine(self, **options) -> QueryEngine:
        return QueryEngine.from_instance(self.instance, **options)


def build_paper_fragment() -> QoSDirectory:
    """The Figure 12 sample: policy ``dso`` (priority 2) denying weekend and
    Thanksgiving data traffic from 204.178.16.* / 207.140.*.*, with two
    exceptions ``fatt`` and ``mail``."""
    qos = QoSDirectory("dc=research, dc=att, dc=com")
    qos.add_traffic_profile("lsplitOff", source_address="204.178.16.*")
    qos.add_traffic_profile("csplitOff", source_address="207.140.*.*")
    # Profiles for the exceptions: FTP and SMTP traffic from the same subnet
    # (exceptions apply in the region of overlap with dso's profiles).
    qos.add_traffic_profile(
        "ftpSplit", source_address="204.178.16.*", dest_port=21, protocol="tcp"
    )
    qos.add_traffic_profile("smtpIn", source_port=25, protocol="tcp")
    qos.add_validity_period(
        "1998weekend", start=19980101060000, end=19981231180000, days_of_week=(6, 7)
    )
    qos.add_validity_period(
        "1998thanksgiving", start=19981126000000, end=19981126235959
    )
    qos.add_action("denyAll", "Deny", peak_rate=20, drop_priority=2)
    qos.add_action("allowMail", "Permit", peak_rate=10)
    qos.add_action("allowFtp", "Permit", peak_rate=5)
    # The two exceptions the prose mentions (same priority as dso).
    qos.add_policy("fatt", priority=2, action="allowFtp", profiles=("ftpSplit",))
    qos.add_policy("mail", priority=2, action="allowMail", profiles=("smtpIn",))
    qos.add_policy(
        "dso",
        priority=2,
        action="denyAll",
        profiles=("lsplitOff", "csplitOff"),
        periods=("1998weekend", "1998thanksgiving"),
        exceptions=("fatt", "mail"),
    )
    return qos


class PacketProfile:
    """The attributes a policy enforcement entity supplies with a query:
    packet header fields plus the current time (Section 2)."""

    def __init__(
        self,
        source_address: str,
        dest_address: Optional[str] = None,
        source_port: Optional[int] = None,
        dest_port: Optional[int] = None,
        protocol: Optional[str] = None,
        timestamp: Optional[int] = None,   # YYYYMMDDhhmmss
        day_of_week: Optional[int] = None,  # 1 = Monday ... 7 = Sunday
    ):
        self.source_address = source_address
        self.dest_address = dest_address
        self.source_port = source_port
        self.dest_port = dest_port
        self.protocol = protocol
        self.timestamp = timestamp
        self.day_of_week = day_of_week

    def __repr__(self) -> str:
        return "PacketProfile(src=%s:%s)" % (self.source_address, self.source_port)


def _address_matches(pattern: str, address: Optional[str]) -> bool:
    """Octet-wise wildcard match: ``204.178.16.*`` matches ``204.178.16.5``."""
    if address is None:
        return False
    pattern_octets = pattern.split(".")
    address_octets = address.split(".")
    if len(pattern_octets) != len(address_octets):
        return False
    return all(
        p == "*" or p == a for p, a in zip(pattern_octets, address_octets)
    )


def profile_matches(profile: Entry, packet: PacketProfile) -> bool:
    """Does a trafficProfile entry's pattern cover the packet?"""
    source_patterns = profile.values("SourceAddress")
    if source_patterns and not any(
        _address_matches(str(p), packet.source_address) for p in source_patterns
    ):
        return False
    dest_patterns = profile.values("DestAddress")
    if dest_patterns and not any(
        _address_matches(str(p), packet.dest_address) for p in dest_patterns
    ):
        return False
    for attr, value in (
        ("SourcePort", packet.source_port),
        ("DestPort", packet.dest_port),
    ):
        wanted = profile.values(attr)
        if wanted and value not in wanted:
            return False
    protocols = profile.values("Protocol")
    if protocols and packet.protocol not in [str(p) for p in protocols]:
        return False
    return True


def period_matches(period: Entry, packet: PacketProfile) -> bool:
    """Does a policyValidityPeriod entry cover the packet's time?"""
    start = period.first("PVStartTime")
    end = period.first("PVEndTime")
    if packet.timestamp is not None:
        if start is not None and packet.timestamp < start:
            return False
        if end is not None and packet.timestamp > end:
            return False
    days = period.values("PVDayOfWeek")
    if days and packet.day_of_week is not None and packet.day_of_week not in days:
        return False
    return True


class PolicyDecisionPoint:
    """The enforcement-side resolver over a policy directory.

    Matching follows Section 2's rules: a policy applies when at least one
    referenced traffic profile matches the packet and (if it has validity
    periods) at least one period covers the current time.  Among applying
    policies, only the highest-priority stratum survives, minus those with a
    same-priority applying exception.
    """

    def __init__(self, qos: QoSDirectory, engine: Optional[QueryEngine] = None):
        self.qos = qos
        self.engine = engine or qos.engine()

    def _fetch(self, dn: DN) -> Optional[Entry]:
        result = self.engine.run(
            "(%s ? base ? objectClass=*)" % dn
        )
        return result.entries[0] if result.entries else None

    def applying_policies(self, packet: PacketProfile) -> List[Entry]:
        """Every policy whose profile and validity period cover the packet."""
        policies = self.engine.run(
            "(%s ? sub ? objectClass=SLAPolicyRules)" % self.qos.policies_dn
        ).entries
        applying = []
        for policy in policies:
            profiles = [self._fetch(dn) for dn in policy.values("SLATPRef")]
            profiles = [p for p in profiles if p is not None]
            if profiles and not any(profile_matches(p, packet) for p in profiles):
                continue
            periods = [self._fetch(dn) for dn in policy.values("SLAPVPRef")]
            periods = [p for p in periods if p is not None]
            if periods and not any(period_matches(p, packet) for p in periods):
                continue
            applying.append(policy)
        return applying

    def decide(self, packet: PacketProfile) -> List[Entry]:
        """The actions to apply: Section 2's priority + exception rules."""
        applying = self.applying_policies(packet)
        if not applying:
            return []
        applying_dns = {policy.dn for policy in applying}
        best = min(policy.first("SLARulePriority") or 0 for policy in applying)
        winners = []
        for policy in applying:
            if (policy.first("SLARulePriority") or 0) != best:
                continue
            overridden = False
            for exception_ref in policy.values("SLAExceptionRef"):
                if exception_ref in applying_dns:
                    exception = next(
                        p for p in applying if p.dn == exception_ref
                    )
                    if (exception.first("SLARulePriority") or 0) == best:
                        overridden = True
                        break
            if not overridden:
                winners.append(policy)
        actions = []
        seen = set()
        for policy in winners:
            for action_ref in policy.values("SLADSActRef"):
                if action_ref not in seen:
                    seen.add(action_ref)
                    action = self._fetch(action_ref)
                    if action is not None:
                        actions.append(action)
        return actions


def _profiles_overlap(first: Entry, second: Entry) -> bool:
    """Conservative pattern-intersection test for two traffic profiles."""

    def octets_overlap(pattern_a: str, pattern_b: str) -> bool:
        a_parts, b_parts = pattern_a.split("."), pattern_b.split(".")
        if len(a_parts) != len(b_parts):
            return False
        return all(x == "*" or y == "*" or x == y for x, y in zip(a_parts, b_parts))

    for attr in ("SourceAddress", "DestAddress"):
        a_values = [str(v) for v in first.values(attr)]
        b_values = [str(v) for v in second.values(attr)]
        if a_values and b_values and not any(
            octets_overlap(a, b) for a in a_values for b in b_values
        ):
            return False
    for attr in ("SourcePort", "DestPort", "Protocol"):
        a_values = set(map(str, first.values(attr)))
        b_values = set(map(str, second.values(attr)))
        if a_values and b_values and not (a_values & b_values):
            return False
    return True


def find_conflicts(qos: QoSDirectory) -> List[Tuple[Entry, Entry]]:
    """Pairs of same-priority policies with overlapping profiles, different
    actions, and no exception relation -- the conflicts Section 2 says
    "must be resolved before populating the directory"."""
    engine = qos.engine()
    policies = engine.run(
        "(%s ? sub ? objectClass=SLAPolicyRules)" % qos.policies_dn
    ).entries
    by_dn: Dict[DN, Entry] = {}
    for kind in ("trafficProfile",):
        for entry in engine.run(
            "(%s ? sub ? objectClass=%s)" % (qos.profiles_dn, kind)
        ).entries:
            by_dn[entry.dn] = entry
    conflicts = []
    for i, first in enumerate(policies):
        for second in policies[i + 1 :]:
            if first.first("SLARulePriority") != second.first("SLARulePriority"):
                continue
            if set(first.values("SLADSActRef")) == set(second.values("SLADSActRef")):
                continue
            if second.dn in first.values("SLAExceptionRef"):
                continue
            if first.dn in second.values("SLAExceptionRef"):
                continue
            first_profiles = [by_dn[dn] for dn in first.values("SLATPRef") if dn in by_dn]
            second_profiles = [by_dn[dn] for dn in second.values("SLATPRef") if dn in by_dn]
            if not first_profiles or not second_profiles:
                continue
            if any(
                _profiles_overlap(a, b)
                for a in first_profiles
                for b in second_profiles
            ):
                conflicts.append((first, second))
    return conflicts
