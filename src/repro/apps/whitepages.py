"""Corporate white pages -- the introduction's first directory application.

"Hierarchically structured directories ... are being used to store not
only address books and contact information for people ... enabling the
deployment of a wide variety of network applications such as corporate
white pages."  This module builds white pages on the standard schema and
shows each language level earning its keep:

- people search by name wildcard (L0 substring filters);
- the organizational unit someone belongs to, as the *nearest* unit
  ancestor (the path-constrained ``ac`` operator of Example 5.3);
- units over a headcount (L2 structural counting);
- reporting structure through the dn-valued ``manager`` attribute
  (L3 ``vd``/``dv``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..engine.engine import QueryEngine
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.standard import standard_schema

__all__ = ["WhitePages"]


class WhitePages:
    """A white-pages directory under one organization's domain."""

    def __init__(self, domain: Union[DN, str] = "dc=att, dc=com"):
        if isinstance(domain, str):
            domain = DN.parse(domain)
        self.schema = standard_schema()
        self.instance = DirectoryInstance(self.schema)
        self.domain = domain
        dn = DN(())
        for rdn in list(domain.rdns)[::-1]:
            dn = dn.child(rdn)
            self.instance.add(dn, ["dcObject"], {a: [v] for a, v in rdn})
        self._engine: Optional[QueryEngine] = None

    # -- building -----------------------------------------------------------

    def add_unit(self, path: Iterable[str], description: Optional[str] = None) -> DN:
        """Add (or descend into) nested organizational units, e.g.
        ``add_unit(["research", "database-group"])``."""
        dn = self.domain
        for name in path:
            dn = dn.child("ou=%s" % name)
            if self.instance.get(dn) is None:
                attrs = {"ou": [name]}
                if description:
                    attrs["description"] = [description]
                self.instance.add(dn, ["organizationalUnit"], attrs)
        self._engine = None
        return dn

    def add_person(
        self,
        unit_path: Iterable[str],
        uid: str,
        common_name: str,
        sur_name: str,
        telephone: Optional[str] = None,
        mail: Optional[str] = None,
        title: Optional[str] = None,
        manager: Optional[DN] = None,
        secretary: Optional[DN] = None,
    ) -> DN:
        unit = self.add_unit(unit_path)
        dn = unit.child("uid=%s" % uid)
        attrs: Dict[str, list] = {
            "uid": [uid],
            "commonName": [common_name],
            "surName": [sur_name],
        }
        if telephone:
            attrs["telephoneNumber"] = [telephone]
        if mail:
            attrs["mail"] = [mail]
        if title:
            attrs["title"] = [title]
        if manager is not None:
            attrs["manager"] = [manager]
        if secretary is not None:
            attrs["secretary"] = [secretary]
        self.instance.add(dn, ["inetOrgPerson"], attrs)
        self._engine = None
        return dn

    @property
    def engine(self) -> QueryEngine:
        if self._engine is None:
            self._engine = QueryEngine.from_instance(self.instance, page_size=8)
        return self._engine

    # -- lookups -------------------------------------------------------------

    def search_people(self, name_pattern: str) -> List[Entry]:
        """People whose surname or common name matches a ``*`` pattern."""
        if "*" not in name_pattern:
            name_pattern = "*%s*" % name_pattern
        result = self.engine.run(
            "(| (%s ? sub ? surName=%s) (%s ? sub ? commonName=%s))"
            % (self.domain, name_pattern, self.domain, name_pattern)
        )
        return result.entries

    def unit_of(self, person: Union[DN, Entry]) -> Optional[Entry]:
        """The *nearest* organizational unit above a person -- the
        path-constrained descendants operator, exactly Example 5.3's idiom:
        units having the person below them with no intervening unit."""
        dn = person.dn if isinstance(person, Entry) else person
        result = self.engine.run(
            "(dc (%s ? sub ? objectClass=organizationalUnit)"
            "    (%s ? base ? objectClass=*)"
            "    (%s ? sub ? objectClass=organizationalUnit))"
            % (self.domain, dn, self.domain)
        )
        return result.entries[0] if result.entries else None

    def units_with_headcount_over(self, threshold: int) -> List[Entry]:
        """Units *directly* containing more than ``threshold`` people."""
        result = self.engine.run(
            "(c (%s ? sub ? objectClass=organizationalUnit)"
            "   (%s ? sub ? objectClass=inetOrgPerson)"
            "   count($2) > %d)" % (self.domain, self.domain, threshold)
        )
        return result.entries

    def direct_reports(self, manager: Union[DN, Entry]) -> List[Entry]:
        """People whose ``manager`` attribute references the given person."""
        dn = manager.dn if isinstance(manager, Entry) else manager
        result = self.engine.run(
            "(vd (%s ? sub ? objectClass=inetOrgPerson)"
            "    (%s ? base ? objectClass=*) manager)" % (self.domain, dn)
        )
        return result.entries

    def managers_with_reports_over(self, threshold: int) -> List[Entry]:
        """People referenced as manager by more than ``threshold`` others."""
        result = self.engine.run(
            "(dv (%s ? sub ? objectClass=inetOrgPerson)"
            "    (%s ? sub ? objectClass=inetOrgPerson)"
            "    manager count($2) > %d)" % (self.domain, self.domain, threshold)
        )
        return result.entries

    def management_chain(self, person: Union[DN, Entry]) -> List[Entry]:
        """Follow ``manager`` references to the top (cycle-safe)."""
        dn = person.dn if isinstance(person, Entry) else person
        chain: List[Entry] = []
        seen = {dn}
        current = self.instance.get(dn)
        while current is not None:
            boss_dn = current.first("manager")
            if boss_dn is None or boss_dn in seen:
                break
            boss = self.instance.get(boss_dn)
            if boss is None:
                break
            chain.append(boss)
            seen.add(boss_dn)
            current = boss
        return chain

    def phone_book(self, unit_path: Iterable[str]) -> List[tuple]:
        """(name, phone) pairs for a unit's subtree, sorted by name."""
        unit = self.domain
        for name in unit_path:
            unit = unit.child("ou=%s" % name)
        result = self.engine.run(
            "(%s ? sub ? objectClass=inetOrgPerson)" % unit
        )
        book = [
            (entry.first("commonName"), entry.first("telephoneNumber") or "-")
            for entry in result.entries
        ]
        return sorted(book)
