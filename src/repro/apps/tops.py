"""The TOPS telephony application (Example 2.2, Example 3.2, Figure 11).

Telephony Over Packet networkS: each subscriber owns a personal subtree
under ``ou=userProfiles`` containing prioritised *query handling profiles*
(QHPs) -- who may reach them, when -- each with prioritised *call
appearances* -- the terminals at which they can be reached.

The call-resolution query of Section 2: match the caller's information and
the time of day against the subscriber's QHPs; the answer is the set of
call appearances of the *highest-priority matching* QHP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..engine.engine import QueryEngine
from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema

__all__ = [
    "tops_schema",
    "TOPSDirectory",
    "build_paper_fragment",
    "CallRequest",
    "resolve_call",
]


def tops_schema() -> DirectorySchema:
    """The schema of Figure 11 (lower priority *value* = higher priority)."""
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("ou", "string")
    schema.add_attribute("commonName", "string")
    schema.add_attribute("surName", "string")
    schema.add_attribute("uid", "string")
    schema.add_attribute("QHPName", "string")
    schema.add_attribute("startTime", "int")     # HHMM, e.g. 830 for 08:30
    schema.add_attribute("endTime", "int")
    schema.add_attribute("daysOfWeek", "int")    # 1 = Monday ... 7 = Sunday
    schema.add_attribute("priority", "int")
    schema.add_attribute("allowedCaller", "string")
    schema.add_attribute("CANumber", "string")
    schema.add_attribute("timeOut", "int")
    schema.add_attribute("description", "string")
    schema.add_attribute("mediaType", "string")

    schema.add_class("dcObject", {"dc"})
    schema.add_class("organizationalUnit", {"ou"})
    schema.add_class("inetOrgPerson", {"commonName", "surName", "uid"})
    schema.add_class("TOPSSubscriber", {"uid"})
    schema.add_class(
        "QHP",
        {"QHPName", "startTime", "endTime", "daysOfWeek", "priority", "allowedCaller"},
    )
    schema.add_class(
        "callAppearance",
        {"CANumber", "priority", "timeOut", "description", "mediaType"},
    )
    return schema


class TOPSDirectory:
    """Builder for a TOPS subscriber directory under one domain."""

    def __init__(self, domain: Union[DN, str] = "dc=research, dc=att, dc=com"):
        if isinstance(domain, str):
            domain = DN.parse(domain)
        self.schema = tops_schema()
        self.instance = DirectoryInstance(self.schema)
        self.domain = domain
        spine = list(domain.rdns)[::-1]
        dn = DN(())
        for rdn in spine:
            dn = dn.child(rdn)
            self.instance.add(dn, ["dcObject"], {attr: [v] for attr, v in rdn})
        self.profiles_dn = domain.child("ou=userProfiles")
        self.instance.add(self.profiles_dn, ["organizationalUnit"], ou="userProfiles")

    # -- building -----------------------------------------------------------

    def subscriber_dn(self, uid: str) -> DN:
        return self.profiles_dn.child("uid=%s" % uid)

    def qhp_dn(self, uid: str, qhp_name: str) -> DN:
        return self.subscriber_dn(uid).child("QHPName=%s" % qhp_name)

    def add_subscriber(self, uid: str, common_name: str, sur_name: str) -> DN:
        dn = self.subscriber_dn(uid)
        self.instance.add(
            dn,
            ["inetOrgPerson", "TOPSSubscriber"],
            commonName=common_name,
            surName=sur_name,
            uid=uid,
        )
        return dn

    def add_qhp(
        self,
        uid: str,
        name: str,
        priority: int,
        start_time: Optional[int] = None,
        end_time: Optional[int] = None,
        days_of_week: Sequence[int] = (),
        allowed_callers: Sequence[str] = (),
    ) -> DN:
        dn = self.qhp_dn(uid, name)
        attrs: Dict[str, list] = {"QHPName": [name], "priority": [priority]}
        if start_time is not None:
            attrs["startTime"] = [start_time]
        if end_time is not None:
            attrs["endTime"] = [end_time]
        if days_of_week:
            attrs["daysOfWeek"] = list(days_of_week)
        if allowed_callers:
            attrs["allowedCaller"] = list(allowed_callers)
        self.instance.add(dn, ["QHP"], attrs)
        return dn

    def add_call_appearance(
        self,
        uid: str,
        qhp_name: str,
        number: str,
        priority: int,
        time_out: Optional[int] = None,
        description: Optional[str] = None,
        media_type: Optional[str] = None,
    ) -> DN:
        dn = self.qhp_dn(uid, qhp_name).child("CANumber=%s" % number)
        attrs: Dict[str, list] = {"CANumber": [number], "priority": [priority]}
        if time_out is not None:
            attrs["timeOut"] = [time_out]
        if description is not None:
            attrs["description"] = [description]
        if media_type is not None:
            attrs["mediaType"] = [media_type]
        self.instance.add(dn, ["callAppearance"], attrs)
        return dn

    def engine(self, **options) -> QueryEngine:
        return QueryEngine.from_instance(self.instance, **options)


def build_paper_fragment() -> TOPSDirectory:
    """The Figure 11 sample: Jagadish's weekend QHP (priority 1, Saturday
    and Sunday, voicemail only) and working-hours QHP (priority 2,
    08:30--17:30, office phone then secretary then voicemail)."""
    tops = TOPSDirectory("dc=research, dc=att, dc=com")
    tops.add_subscriber("jag", "h jagadish", "jagadish")
    tops.add_qhp("jag", "weekend", priority=1, days_of_week=(6, 7))
    tops.add_call_appearance(
        "jag", "weekend", "9733608799", priority=1, description="voice mailbox"
    )
    tops.add_qhp("jag", "workinghours", priority=2, start_time=830, end_time=1730)
    tops.add_call_appearance("jag", "workinghours", "9733608750", priority=1, time_out=30)
    tops.add_call_appearance(
        "jag", "workinghours", "9733608751", priority=2, time_out=20,
        description="secretary",
    )
    tops.add_call_appearance(
        "jag", "workinghours", "9733608798", priority=3, description="voice mailbox"
    )
    return tops


class CallRequest:
    """What the calling application supplies: callee, time of day, day of
    week, and optionally its own identity (matched against QHP access
    control)."""

    def __init__(
        self,
        callee_uid: str,
        time_of_day: int,             # HHMM
        day_of_week: int,             # 1 = Monday ... 7 = Sunday
        caller_uid: Optional[str] = None,
    ):
        self.callee_uid = callee_uid
        self.time_of_day = time_of_day
        self.day_of_week = day_of_week
        self.caller_uid = caller_uid

    def __repr__(self) -> str:
        return "CallRequest(callee=%s, %04d, day %d)" % (
            self.callee_uid,
            self.time_of_day,
            self.day_of_week,
        )


def qhp_matches(qhp: Entry, request: CallRequest) -> bool:
    """A QHP applies when every constraint it states is satisfied; absent
    attributes constrain nothing (the heterogeneity of Section 3.5)."""
    start = qhp.first("startTime")
    if start is not None and request.time_of_day < start:
        return False
    end = qhp.first("endTime")
    if end is not None and request.time_of_day > end:
        return False
    days = qhp.values("daysOfWeek")
    if days and request.day_of_week not in days:
        return False
    allowed = [str(v) for v in qhp.values("allowedCaller")]
    if allowed and (request.caller_uid is None or request.caller_uid not in allowed):
        return False
    return True


def resolve_call(
    tops: TOPSDirectory,
    request: CallRequest,
    engine: Optional[QueryEngine] = None,
) -> List[Entry]:
    """The TOPS directory query of Section 2: the call appearances of the
    highest-priority QHP matching the request, ordered by appearance
    priority (empty when the callee is unknown or unreachable)."""
    engine = engine or tops.engine()
    subscriber_dn = tops.subscriber_dn(request.callee_uid)
    subscriber = engine.run("(%s ? base ? objectClass=TOPSSubscriber)" % subscriber_dn)
    if not subscriber.entries:
        return []
    qhps = engine.run("(%s ? one ? objectClass=QHP)" % subscriber_dn).entries
    matching = [qhp for qhp in qhps if qhp_matches(qhp, request)]
    if not matching:
        return []
    best = min(qhp.first("priority") or 0 for qhp in matching)
    chosen = next(qhp for qhp in matching if (qhp.first("priority") or 0) == best)
    appearances = engine.run(
        "(%s ? one ? objectClass=callAppearance)" % chosen.dn
    ).entries
    return sorted(appearances, key=lambda entry: entry.first("priority") or 0)
