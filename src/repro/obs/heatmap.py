"""The subtree heat map: load accounting over the reversed-DN keyspace.

The paper clusters a directory by the lexicographic order of *reversed*
dns, so a subtree is a contiguous key range -- which makes "where is the
load?" a question about reversed-DN **prefixes**.  The heat map buckets
every observed operation by ``dn.key()[:depth]`` (the root-first prefix
of the entry's sort key) and keeps, per bucket:

- ``reads`` / ``pages`` -- atomic-leaf evaluations the engine ran under
  that base, and the logical page I/O they cost;
- ``writes`` -- committed mutations (fed from the directory's record
  listeners);
- ``shipped`` -- entries shipped from remote servers for bases in the
  bucket (fed from the federation's per-server transfer path).

Counters are **EWMA-decayed**: every cell's decayed values halve each
``half_life_s`` of inactivity, so ``hottest(n)`` ranks *current* load,
not lifetime totals (which are kept too, undecayed, for accounting).
The decay clock is injectable -- under an injected clock the whole map
is deterministic, which the tests and the E26 benchmark rely on.

The map is bounded: at ``capacity`` cells the coldest cell (smallest
decayed heat) is evicted, so cardinality cannot grow with the keyspace.
All mutation and ranking take one lock; the federation's scatter workers
and the service's search threads update it concurrently.

This is the load signal ROADMAP item 3 (online subtree rebalancing)
will consume: ``hottest(n)`` is directly a shard-split candidate list.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["SubtreeHeatMap"]

_FIELDS = ("reads", "writes", "pages", "shipped")


class _Cell:
    __slots__ = (
        "key",
        "label",
        "reads",
        "writes",
        "pages",
        "shipped",
        "reads_total",
        "writes_total",
        "pages_total",
        "shipped_total",
        "last",
        "first_seen",
    )

    def __init__(self, key: Tuple[str, ...], now: float):
        self.key = key
        #: Leaf-first display form (the LDAP spelling of the subtree base).
        self.label = ", ".join(reversed(key)) if key else "(root)"
        self.reads = 0.0
        self.writes = 0.0
        self.pages = 0.0
        self.shipped = 0.0
        self.reads_total = 0
        self.writes_total = 0
        self.pages_total = 0
        self.shipped_total = 0
        self.last = now
        self.first_seen = now

    def decay(self, now: float, half_life_s: float) -> None:
        elapsed = now - self.last
        if elapsed > 0:
            factor = 0.5 ** (elapsed / half_life_s)
            self.reads *= factor
            self.writes *= factor
            self.pages *= factor
            self.shipped *= factor
        self.last = max(self.last, now)

    @property
    def heat(self) -> float:
        """One scalar for ranking/eviction: decayed operations plus their
        decayed page cost (pages dominate for scan-heavy subtrees, which
        is the right bias for a placement signal)."""
        return self.reads + self.writes + self.pages + self.shipped

    def as_dict(self) -> Dict[str, Any]:
        return {
            "subtree": self.label,
            "depth": len(self.key),
            "heat": round(self.heat, 4),
            "reads": round(self.reads, 4),
            "writes": round(self.writes, 4),
            "pages": round(self.pages, 4),
            "shipped": round(self.shipped, 4),
            "reads_total": self.reads_total,
            "writes_total": self.writes_total,
            "pages_total": self.pages_total,
            "shipped_total": self.shipped_total,
        }


class SubtreeHeatMap:
    """EWMA-decayed per-subtree load counters at a fixed prefix depth."""

    def __init__(
        self,
        depth: int = 2,
        capacity: int = 512,
        half_life_s: float = 300.0,
        clock: Callable[[], float] = time.time,
    ):
        if depth < 1:
            raise ValueError("depth must be positive (0 disables the map)")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        self.depth = depth
        self.capacity = capacity
        self.half_life_s = half_life_s
        self._clock = clock
        self._cells: Dict[Tuple[str, ...], _Cell] = {}
        self._lock = threading.Lock()
        #: Cells pushed out by the coldest-evicted bound.
        self.evicted = 0

    # -- recording ---------------------------------------------------------

    def _cell_locked(self, dn, now: float) -> _Cell:
        key = dn.key()[: self.depth]
        cell = self._cells.get(key)
        if cell is None:
            if len(self._cells) >= self.capacity:
                self._evict_locked(now)
            cell = _Cell(key, now)
            self._cells[key] = cell
        return cell

    def _evict_locked(self, now: float) -> None:
        coldest = None
        for cell in self._cells.values():
            cell.decay(now, self.half_life_s)
            if coldest is None or cell.heat < coldest.heat:
                coldest = cell
        if coldest is not None:
            del self._cells[coldest.key]
            self.evicted += 1

    def record_read(self, base, pages: int = 0, amount: int = 1) -> None:
        """One evaluation under ``base`` (a :class:`~repro.model.dn.DN`)
        that cost ``pages`` logical page transfers."""
        now = self._clock()
        with self._lock:
            cell = self._cell_locked(base, now)
            cell.decay(now, self.half_life_s)
            cell.reads += amount
            cell.pages += pages
            cell.reads_total += amount
            cell.pages_total += pages

    def record_write(self, dn, amount: int = 1) -> None:
        """One committed mutation at ``dn``."""
        now = self._clock()
        with self._lock:
            cell = self._cell_locked(dn, now)
            cell.decay(now, self.half_life_s)
            cell.writes += amount
            cell.writes_total += amount

    def record_shipped(self, base, entries: int) -> None:
        """``entries`` entries shipped from a remote server for a leaf
        based at ``base``."""
        now = self._clock()
        with self._lock:
            cell = self._cell_locked(base, now)
            cell.decay(now, self.half_life_s)
            cell.shipped += entries
            cell.shipped_total += entries

    # -- ranking -----------------------------------------------------------

    def hottest(self, n: int = 5, by: str = "heat") -> List[Dict[str, Any]]:
        """The ``n`` hottest subtrees by the decayed ``by`` field (one of
        ``heat``, ``reads``, ``writes``, ``pages``, ``shipped``),
        decayed to now, hottest first."""
        if by != "heat" and by not in _FIELDS:
            raise ValueError(
                "by must be 'heat' or one of %s, got %r" % (_FIELDS, by)
            )
        now = self._clock()
        with self._lock:
            for cell in self._cells.values():
                cell.decay(now, self.half_life_s)
            cells = sorted(
                self._cells.values(),
                key=lambda c: (getattr(c, by), c.label),
                reverse=True,
            )[: n if n else len(self._cells)]
            return [cell.as_dict() for cell in cells]

    def snapshot(self, n: int = 0, by: str = "heat") -> Dict[str, Any]:
        """JSON-ready view: map parameters plus the hottest cells (all
        cells when ``n`` is 0)."""
        return {
            "depth": self.depth,
            "capacity": self.capacity,
            "half_life_s": self.half_life_s,
            "cells": len(self),
            "evicted": self.evicted,
            "by": by,
            "hottest": self.hottest(n, by=by),
        }

    def reset(self) -> None:
        with self._lock:
            self._cells.clear()
            self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    def __repr__(self) -> str:
        return "SubtreeHeatMap(depth=%d, %d cells)" % (self.depth, len(self))
