"""The snapshot/delta protocol shared by every counter block.

The repository observes itself through plain-integer counter blocks --
:class:`~repro.storage.pager.IOStats` for page transfers,
:class:`~repro.cache.stats.CacheStats` for cache activity -- and the usual
way to measure one phase is to *bracket* it: snapshot the live counters,
run the phase, subtract.  :class:`StatCounters` factors that protocol out
so every block offers the same four operations and new blocks get them for
free:

- :meth:`~StatCounters.snapshot` -- an immutable-by-convention copy;
- :meth:`~StatCounters.since` / :meth:`~StatCounters.delta` -- the
  counter-wise difference from an earlier snapshot;
- :meth:`~StatCounters.as_dict` -- the counters as a plain dict (the
  machine-readable form every exporter consumes).

Subclasses declare their counters via ``__slots__`` and accept them as
keyword arguments in ``__init__`` (zero defaults), which is all the base
needs to reconstruct instances generically.

Concurrency: a live block that is mutated by more than one thread (the
pager's ``IOStats`` under the federation worker pool, a shared cache's
``CacheStats``) can have its owner's lock attached via
:meth:`StatCounters.attach_lock`; :meth:`snapshot` and :meth:`since` then
read all fields under that lock, so a bracketed snapshot is always a
*consistent* point on the counter timeline -- never a torn view with one
field from before an operation and another from after it.  Snapshots
themselves are plain copies without the lock (immutable by convention).
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["StatCounters"]


class StatCounters:
    """Base class for counter blocks with snapshot/delta semantics."""

    __slots__ = ("_lock",)

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """The counter names, in declaration order across the hierarchy
        (private slots such as the attached lock are not counters)."""
        names = []
        for klass in reversed(cls.__mro__):
            names.extend(
                name
                for name in getattr(klass, "__slots__", ())
                if not name.startswith("_")
            )
        return tuple(names)

    def attach_lock(self, lock) -> None:
        """Guard :meth:`snapshot`/:meth:`since` with the owner's lock (the
        same lock the owner holds while incrementing the counters)."""
        self._lock = lock

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain ``{name: value}`` dict."""
        return {name: getattr(self, name) for name in self.field_names()}

    def snapshot(self) -> "StatCounters":
        """A point-in-time copy (use with :meth:`since` to bracket a
        phase)."""
        lock = getattr(self, "_lock", None)
        if lock is None:
            return type(self)(**self.as_dict())
        with lock:
            return type(self)(**self.as_dict())

    def since(self, earlier: "StatCounters") -> "StatCounters":
        """The counter-wise delta from an earlier snapshot."""
        if type(earlier) is not type(self):
            raise TypeError(
                "cannot diff %s against %s"
                % (type(self).__name__, type(earlier).__name__)
            )
        lock = getattr(self, "_lock", None)
        if lock is None:
            return self._since(earlier)
        with lock:
            return self._since(earlier)

    def _since(self, earlier: "StatCounters") -> "StatCounters":
        return type(self)(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in self.field_names()
            }
        )

    def delta(self, earlier: "StatCounters") -> "StatCounters":
        """Alias of :meth:`since` (the name exporters use)."""
        return self.since(earlier)
