"""The snapshot/delta protocol shared by every counter block.

The repository observes itself through plain-integer counter blocks --
:class:`~repro.storage.pager.IOStats` for page transfers,
:class:`~repro.cache.stats.CacheStats` for cache activity -- and the usual
way to measure one phase is to *bracket* it: snapshot the live counters,
run the phase, subtract.  :class:`StatCounters` factors that protocol out
so every block offers the same four operations and new blocks get them for
free:

- :meth:`~StatCounters.snapshot` -- an immutable-by-convention copy;
- :meth:`~StatCounters.since` / :meth:`~StatCounters.delta` -- the
  counter-wise difference from an earlier snapshot;
- :meth:`~StatCounters.as_dict` -- the counters as a plain dict (the
  machine-readable form every exporter consumes).

Subclasses declare their counters via ``__slots__`` and accept them as
keyword arguments in ``__init__`` (zero defaults), which is all the base
needs to reconstruct instances generically.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["StatCounters"]


class StatCounters:
    """Base class for counter blocks with snapshot/delta semantics."""

    __slots__ = ()

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """The counter names, in declaration order across the hierarchy."""
        names = []
        for klass in reversed(cls.__mro__):
            names.extend(getattr(klass, "__slots__", ()))
        return tuple(names)

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain ``{name: value}`` dict."""
        return {name: getattr(self, name) for name in self.field_names()}

    def snapshot(self) -> "StatCounters":
        """A point-in-time copy (use with :meth:`since` to bracket a
        phase)."""
        return type(self)(**self.as_dict())

    def since(self, earlier: "StatCounters") -> "StatCounters":
        """The counter-wise delta from an earlier snapshot."""
        if type(earlier) is not type(self):
            raise TypeError(
                "cannot diff %s against %s"
                % (type(self).__name__, type(earlier).__name__)
            )
        return type(self)(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in self.field_names()
            }
        )

    def delta(self, earlier: "StatCounters") -> "StatCounters":
        """Alias of :meth:`since` (the name exporters use)."""
        return self.since(earlier)
