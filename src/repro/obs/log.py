"""Structured logging: one JSON object per line, correlated by trace id.

Metrics aggregate and traces dissect; the event log *narrates*: retries,
breaker transitions, degradations, cache evictions, budget breaches and
every served search, each as one machine-parseable JSON line.  The schema
is deliberately tiny:

.. code-block:: json

    {"ts": 1700000000.123456, "level": "warning", "event": "fed.retry",
     "server": "server2", "attempt": 2, "code": "dropped",
     "trace_id": "t17"}

``ts`` (unix seconds), ``level`` and ``event`` are always present; every
other field is event-specific, and ``trace_id``/``span_id`` appear
whenever the emitting layer runs under a live tracer, so a log line can
be joined to its span tree (and a slow-query record to both).

Logging is **off by default and free when off**, mirroring
:data:`~repro.obs.trace.NULL_TRACER`: :data:`NULL_LOGGER` is a singleton
whose methods are no-ops, and hot paths guard field construction with
``if log.enabled:`` so the disabled path costs one attribute read.

Writers are thread-safe: one lock per stream (shared by every logger
:meth:`EventLogger.bind` derives), each line written with a single
``write`` call -- concurrent workers never interleave partial lines.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["CapturingLogger", "EventLogger", "NullLogger", "NULL_LOGGER", "LEVELS"]

#: Severity order (syslog-ish subset; higher is more severe).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLogger:
    """A JSON-lines event logger over any text stream.

    :param stream: writable text stream (default ``sys.stderr``).
    :param min_level: least severe level actually written; events below
        it are counted in :attr:`suppressed` and dropped.
    :param clock: timestamp source (tests inject a fixed clock).
    :param bound: fields merged into every emitted event (see
        :meth:`bind`).
    """

    enabled = True

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_level: str = "info",
        clock=time.time,
        bound: Optional[Dict[str, Any]] = None,
        _lock: Optional[threading.Lock] = None,
    ):
        if min_level not in LEVELS:
            raise ValueError(
                "min_level must be one of %s" % sorted(LEVELS)
            )
        self.stream = stream if stream is not None else sys.stderr
        self.min_level = min_level
        self._threshold = LEVELS[min_level]
        self.clock = clock
        self.bound = dict(bound or {})
        #: One lock per stream; children from :meth:`bind` share it.
        self._lock = _lock if _lock is not None else threading.Lock()
        #: Events written / dropped below ``min_level`` (process counters,
        #: not part of the metrics registry -- the log observes itself).
        self.emitted = 0
        self.suppressed = 0

    @classmethod
    def to_path(cls, path: str, **kwargs) -> "EventLogger":
        """A logger appending to ``path`` (line-buffered)."""
        stream = open(path, "a", encoding="utf-8", buffering=1)
        return cls(stream, **kwargs)

    def bind(self, **fields: Any) -> "EventLogger":
        """A child logger whose events always carry ``fields`` (same
        stream, same lock, same threshold)."""
        merged = dict(self.bound)
        merged.update(fields)
        child = EventLogger(
            self.stream,
            min_level=self.min_level,
            clock=self.clock,
            bound=merged,
            _lock=self._lock,
        )
        return child

    def enabled_for(self, level: str) -> bool:
        return LEVELS.get(level, 0) >= self._threshold

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one event; ``None``-valued fields are elided so call
        sites can pass optional context unconditionally."""
        if LEVELS.get(level, 0) < self._threshold:
            self.suppressed += 1
            return
        payload: Dict[str, Any] = {
            "ts": round(self.clock(), 6),
            "level": level,
            "event": event,
        }
        payload.update(self.bound)
        for key, value in fields.items():
            if value is not None:
                payload[key] = value
        line = json.dumps(payload, sort_keys=True, default=str)
        with self._lock:
            self.stream.write(line + "\n")
            self.emitted += 1

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    def __repr__(self) -> str:
        return "EventLogger(min_level=%r, emitted=%d)" % (
            self.min_level, self.emitted,
        )


class CapturingLogger(EventLogger):
    """An :class:`EventLogger` over an in-memory buffer, with parsed-line
    access -- the test and demo double."""

    def __init__(self, min_level: str = "debug", clock=time.time):
        super().__init__(io.StringIO(), min_level=min_level, clock=clock)

    def lines(self) -> List[str]:
        with self._lock:
            text = self.stream.getvalue()
        return [line for line in text.splitlines() if line]

    def events(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        """Every captured event as a dict, optionally filtered by name."""
        parsed = [json.loads(line) for line in self.lines()]
        if event is not None:
            parsed = [record for record in parsed if record["event"] == event]
        return parsed


class NullLogger:
    """The disabled logger: every operation is a no-op; ``bind`` returns
    the singleton itself, so a default-configured stack allocates no
    logger objects at all."""

    enabled = False
    emitted = 0
    suppressed = 0

    def bind(self, **fields: Any) -> "NullLogger":
        return self

    def enabled_for(self, level: str) -> bool:
        return False

    def log(self, level: str, event: str, **fields: Any) -> None:
        pass

    def debug(self, event: str, **fields: Any) -> None:
        pass

    def info(self, event: str, **fields: Any) -> None:
        pass

    def warning(self, event: str, **fields: Any) -> None:
        pass

    def error(self, event: str, **fields: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "NullLogger()"


#: The process-wide disabled logger (the default everywhere).
NULL_LOGGER = NullLogger()
