"""Hierarchical span tracing with exact I/O attribution.

The paper proves *I/O bounds per operator*; this tracer makes them
observable per operator at runtime.  A :class:`Tracer` maintains a stack of
open :class:`Span`\\ s; each span records wall time plus the delta of every
registered counter block (see :class:`~repro.obs.stats.StatCounters`) over
its lifetime, so wrapping each engine operator in a span yields the actual
page transfers that operator caused -- inclusive of its children, with
:meth:`Span.exclusive` subtracting them back out.  The exclusive costs of a
span tree always sum to the root's inclusive cost, which is how EXPLAIN
``--analyze`` reconciles per-operator I/O against the pager's global
:class:`~repro.storage.pager.IOStats`.

Tracing is **off by default and free when off**: :data:`NULL_TRACER` is a
process-wide singleton whose :meth:`~NullTracer.span` returns the tracer
itself (one attribute lookup and a no-op context manager -- no ``Span`` is
ever allocated), so hot paths can call it unconditionally.

Distribution: a span's identity is ``(trace_id, span_id)``.
:meth:`Tracer.context` captures the current identity as a plain dict that
can ride along a remote call; the remote side passes it to
:meth:`Tracer.span` as ``context=`` and its spans join the caller's trace
(same ``trace_id``, parented under the caller's span id).

Concurrency: the span stack is **per thread** (a worker pool's threads
each nest their own spans), and a parallel worker inherits the
scattering span's identity via :meth:`Tracer.adopt`.  When a span closes
on a thread whose stack is empty, it is grafted onto its parent by id if
the parent is still open on another thread -- so a scatter-gather keeps
producing one connected span tree; attachment order among concurrent
siblings follows completion order.  Root and children lists are guarded
by one tracer lock.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

__all__ = ["Span", "Tracer", "TraceSampler", "NullTracer", "NULL_TRACER"]


class Span:
    """One traced phase: name, attributes, timing, counter deltas,
    children."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "elapsed",
        "stats",
        "children",
        "_started",
        "_before",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
    ):
        self.name = name
        self.attrs = attrs
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.elapsed = 0.0
        #: Per-probe counter deltas over the span (inclusive of children).
        self.stats: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self._started = 0.0
        self._before: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (e.g. ``rows=`` once known)."""
        self.attrs.update(attrs)
        return self

    def exclusive(self, probe: str, field: str) -> int:
        """This span's own share of a counter: inclusive minus children."""
        own = getattr(self.stats.get(probe), field, 0)
        for child in self.children:
            own -= getattr(child.stats.get(probe), field, 0)
        return own

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, depth-first."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (counter deltas flattened per probe)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "elapsed_s": self.elapsed,
            "attrs": dict(self.attrs),
            "stats": {
                probe: delta.as_dict() for probe, delta in self.stats.items()
            },
            "children": [child.as_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        parts = ["%s%s" % ("  " * indent, self.name)]
        if self.attrs:
            parts.append(
                " ".join("%s=%s" % (k, v) for k, v in sorted(self.attrs.items()))
            )
        parts.append("%.3fms" % (self.elapsed * 1e3))
        io = self.stats.get("io")
        if io is not None:
            parts.append("io=%d" % getattr(io, "total", 0))
        line = "  ".join(parts)
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])

    def __repr__(self) -> str:
        return "Span(%s, %d children, %.3fms)" % (
            self.name,
            len(self.children),
            self.elapsed * 1e3,
        )


class _ActiveSpan:
    """Context manager binding one span to a tracer's stack."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        span = self.span
        tracer = self.tracer
        span._before = {
            name: live.snapshot() for name, live in tracer.probes.items()
        }
        span._started = time.perf_counter()
        tracer._thread_stack().append(span)
        with tracer._lock:
            tracer._open[span.span_id] = span
        return span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        span = self.span
        tracer = self.tracer
        span.elapsed = time.perf_counter() - span._started
        # Diff only probes that existed when the span opened (a probe
        # registered mid-span has no baseline to diff against).
        for name, before in span._before.items():
            live = tracer.probes.get(name)
            if live is not None:
                span.stats[name] = live.since(before)
        span._before = {}
        if exc_type is not None:
            span.attrs["error"] = "%s: %s" % (exc_type.__name__, exc)
        stack = tracer._thread_stack()
        stack.pop()
        if stack:
            # Same-thread nesting: the parent owns its children list here.
            stack[-1].children.append(span)
            with tracer._lock:
                tracer._open.pop(span.span_id, None)
            return False
        with tracer._lock:
            tracer._open.pop(span.span_id, None)
            parent = (
                tracer._open.get(span.parent_id)
                if span.parent_id is not None
                else None
            )
            if parent is not None:
                # A worker-thread span closing under a scatter span that is
                # still open elsewhere: graft by id.
                parent.children.append(span)
            else:
                tracer.root_spans.append(span)
                if tracer.keep_roots is not None:
                    del tracer.root_spans[: -tracer.keep_roots]
        return False


class Tracer:
    """A live tracer: probes to bracket, a span stack, finished roots."""

    enabled = True

    def __init__(self, probes: Optional[Dict[str, Any]] = None, keep_roots: Optional[int] = 256):
        #: name -> live :class:`StatCounters`-like object (must offer
        #: ``snapshot()``/``since()``); bracketed around every span.
        self.probes: Dict[str, Any] = dict(probes or {})
        #: Completed top-level spans, oldest first (bounded by keep_roots).
        self.root_spans: List[Span] = []
        self.keep_roots = keep_roots
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: span_id -> Span for every span currently open on any thread.
        self._open: Dict[str, Span] = {}
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    def _thread_stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def add_probe(self, name: str, live: Any) -> None:
        """Register a counter block to bracket around future spans."""
        self.probes[name] = live

    def adopt(self, context: Optional[Dict[str, str]]):
        """Make ``context`` the calling thread's inherited parent: spans
        opened on this thread with an empty stack nest under it.  Worker
        pools call this around each task with the scattering span's
        :meth:`context`.  Returns a token for :meth:`release`."""
        previous = getattr(self._tls, "inherited", None)
        self._tls.inherited = context
        return previous

    def release(self, token) -> None:
        """Restore the inherited context replaced by :meth:`adopt`."""
        self._tls.inherited = token

    def span(self, name: str, context: Optional[Dict[str, str]] = None, **attrs: Any):
        """Open a span.  ``context`` (a :meth:`context` dict from a remote
        caller) grafts this span into the caller's trace."""
        stack = self._thread_stack()
        if not stack and context is None:
            context = getattr(self._tls, "inherited", None)
        if stack:
            parent = stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif context is not None:
            trace_id = context["trace_id"]
            parent_id = context["span_id"]
        else:
            trace_id = "t%d" % next(self._trace_ids)
            parent_id = None
        span = Span(name, attrs, trace_id, "s%d" % next(self._ids), parent_id)
        return _ActiveSpan(self, span)

    @property
    def current(self) -> Optional[Span]:
        stack = self._thread_stack()
        return stack[-1] if stack else None

    def context(self) -> Optional[Dict[str, str]]:
        """The current span's identity, as a dict that can cross a
        process/network boundary (the thread's adopted context when no
        span is open on it; None outside any span)."""
        span = self.current
        if span is None:
            return getattr(self._tls, "inherited", None)
        return {"trace_id": span.trace_id, "span_id": span.span_id}

    def last_root(self) -> Optional[Span]:
        return self.root_spans[-1] if self.root_spans else None

    def clear(self) -> None:
        self.root_spans = []

    def __repr__(self) -> str:
        return "Tracer(%d roots, %d open, probes=%s)" % (
            len(self.root_spans),
            len(self._open),
            sorted(self.probes),
        )


class NullTracer:
    """The disabled tracer: every operation is a no-op and no span is ever
    allocated.  ``span()`` returns the tracer itself, which doubles as the
    context manager *and* the yielded span -- one shared object, zero
    garbage on the hot path."""

    enabled = False
    root_spans = ()  # type: tuple

    def span(self, name: str, context: Optional[Dict[str, str]] = None, **attrs: Any):
        return self

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullTracer":
        return self

    def add_probe(self, name: str, live: Any) -> None:
        pass

    def adopt(self, context: Optional[Dict[str, str]]) -> None:
        return None

    def release(self, token) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    def context(self) -> None:
        return None

    def last_root(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


class TraceSampler:
    """A bounded tail-sampler of *interesting* query traces.

    Head sampling (decide before running) cannot know which queries will
    matter; this sampler decides at the **tail**, once the outcome is
    known: a query that was slow, degraded or budget-breached is always
    kept (its ``reasons`` say why), and clean queries are kept with
    probability ``sample_rate`` (seeded -- deterministic per process).
    ``sample_rate=0`` keeps only the interesting tail, which is the
    production default: the sampler then does no RNG draw at all on the
    clean path.

    Retention is a ring of ``capacity`` sampled traces (newest wins);
    each sample carries the query text, latency, reasons and -- when the
    service traces -- the full span tree, so ``/traces`` exports
    joinable evidence for every slow-log line.
    """

    def __init__(self, capacity: int = 64, sample_rate: float = 0.0, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        #: Queries offered / retained since construction.
        self.offered = 0
        self.kept = 0

    def offer(
        self,
        root: Optional["Span"],
        elapsed: float,
        query_text: str = "",
        trace_id: Optional[str] = None,
        reasons: Sequence[str] = (),
    ) -> bool:
        """Tail-decide one finished query; returns whether it was kept.

        ``root`` is the query's root span (None when tracing is off --
        the sample then carries metadata only); ``reasons`` is the
        outcome evidence ("slow", "degraded", "budget", ...)."""
        keep_reasons = list(reasons)
        with self._lock:
            self.offered += 1
            if not keep_reasons:
                if self.sample_rate <= 0.0:
                    return False
                if self._rng.random() >= self.sample_rate:
                    return False
                keep_reasons = ["sampled"]
            sample: Dict[str, Any] = {
                "trace_id": trace_id or (root.trace_id if root is not None else None),
                "query": query_text,
                "elapsed_s": elapsed,
                "reasons": keep_reasons,
                "spans": root.as_dict() if root is not None else None,
            }
            self._ring.append(sample)
            self.kept += 1
            return True

    def traces(self) -> List[Dict[str, Any]]:
        """The retained samples, oldest first."""
        with self._lock:
            return [dict(sample) for sample in self._ring]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return "TraceSampler(%d/%d retained, offered=%d, rate=%g)" % (
            len(self), self.capacity, self.offered, self.sample_rate,
        )


#: The process-wide disabled tracer (the default everywhere).
NULL_TRACER = NullTracer()
