"""Benchmark telemetry: machine-readable ``BENCH_<experiment>.json`` files.

The benchmarks already print paper-style tables; this module persists the
same rows (plus wall-clock timings) so the performance trajectory can be
tracked across commits.  Each experiment gets one JSON document:

.. code-block:: json

    {
      "schema_version": 1,
      "experiment": "e13_boolean",
      "tables": {"E13: ...": [{"op": "and", "entries": 2000, ...}, ...]},
      "timings_s": {"count": 12, "total": 0.81, "max": 0.2},
      "meta": {"page_size": 16}
    }

:class:`BenchEmitter` merges repeated :meth:`~BenchEmitter.emit` calls for
the same experiment within one process run (a benchmark may record several
tables), always rewriting the whole file.  The output directory defaults
to ``benchmarks/results`` and honours ``REPRO_BENCH_DIR``.
:func:`validate_bench` is the well-formedness check CI's benchmark-smoke
job (and the tests) run against produced artifacts.

:func:`compare_bench` is the regression gate on top of the same schema:
given a baseline document and a fresh one it reports every row field that
moved the wrong way beyond a tolerance.  Fields are classified by name --
*timing* fields (``ms/query``, ``total_s``, ...) are wall-clock noise on
shared CI runners and are only gated when an explicit
``timing_tolerance`` is supplied; everything else (page counts, message
counts, hit rates, answers) is deterministic for a fixed seed and *is*
gated.  :func:`diff_bench_dirs` lifts the comparison to whole artifact
directories, which is what ``python -m repro bench-diff`` and the CI
perf-gate job run.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "BenchEmitter",
    "validate_bench",
    "load_bench",
    "compare_bench",
    "diff_bench_dirs",
    "DEFAULT_BENCH_DIR",
    "DEFAULT_BASELINE_DIR",
]

SCHEMA_VERSION = 1
DEFAULT_BENCH_DIR = os.path.join("benchmarks", "results")
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")

_EXPERIMENT_RE = re.compile(r"^[A-Za-z0-9_.-]+$")

#: Row fields whose values are wall-clock measurements.  They are noisy
#: on shared runners, so the gate skips them unless asked not to.
_TIMING_FIELD_RE = re.compile(
    r"(^|[^a-z])(ms|s|sec|secs|seconds|time|latency|wall|speedup)([^a-z]|$)"
    r"|ms/|/s$|_ms$|_s$",
    re.IGNORECASE,
)

#: Deterministic fields where *larger* is the good direction; everything
#: else numeric (page transfers, messages, bytes shipped, sizes) is
#: treated as a cost where smaller is better.
_HIGHER_IS_BETTER_RE = re.compile(
    r"speedup|hit|availability|saved|exact|answered|coverage|recall",
    re.IGNORECASE,
)


def is_timing_field(name: str) -> bool:
    """Whether a row field holds a wall-clock measurement (by name)."""
    return bool(_TIMING_FIELD_RE.search(name))


def _direction(name: str) -> int:
    """+1 when larger values are better for this field, -1 when smaller."""
    return 1 if _HIGHER_IS_BETTER_RE.search(name) else -1


class BenchEmitter:
    """Accumulates one process run's benchmark tables and writes them as
    ``BENCH_<experiment>.json`` documents."""

    def __init__(self, out_dir: Optional[str] = None):
        self.out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR", DEFAULT_BENCH_DIR)
        self._payloads: Dict[str, Dict[str, Any]] = {}

    def path_for(self, experiment: str) -> str:
        return os.path.join(self.out_dir, "BENCH_%s.json" % experiment)

    def _payload(self, experiment: str) -> Dict[str, Any]:
        if not _EXPERIMENT_RE.match(experiment):
            raise ValueError("bad experiment name %r" % experiment)
        return self._payloads.setdefault(
            experiment,
            {
                "schema_version": SCHEMA_VERSION,
                "experiment": experiment,
                "tables": {},
                "timings_s": {"count": 0, "total": 0.0, "max": 0.0},
                "meta": {},
            },
        )

    def add_timing(self, experiment: str, elapsed: float) -> None:
        """Fold one measured wall-clock duration into the experiment's
        latency summary (no file write; :meth:`emit` persists)."""
        timings = self._payload(experiment)["timings_s"]
        timings["count"] += 1
        timings["total"] += elapsed
        timings["max"] = max(timings["max"], elapsed)

    def emit(
        self,
        experiment: str,
        title: Optional[str] = None,
        rows: Optional[Sequence[Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Merge a table (and/or metadata) into the experiment's document
        and write it out; returns the file path."""
        payload = self._payload(experiment)
        if title is not None:
            payload["tables"][title] = list(rows or [])
        if meta:
            payload["meta"].update(meta)
        os.makedirs(self.out_dir, exist_ok=True)
        path = self.path_for(experiment)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        return path


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def validate_bench(payload: Dict[str, Any]) -> List[str]:
    """Well-formedness problems of a BENCH document ([] when valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            "schema_version %r != %d" % (payload.get("schema_version"), SCHEMA_VERSION)
        )
    experiment = payload.get("experiment")
    if not isinstance(experiment, str) or not _EXPERIMENT_RE.match(experiment or ""):
        problems.append("bad experiment name %r" % (experiment,))
    tables = payload.get("tables")
    if not isinstance(tables, dict) or not tables:
        problems.append("tables missing or empty")
    else:
        for title, rows in tables.items():
            if not isinstance(rows, list) or not rows:
                problems.append("table %r has no rows" % title)
                continue
            for row in rows:
                if not isinstance(row, dict):
                    problems.append("table %r has a non-object row" % title)
                    break
    timings = payload.get("timings_s")
    if not isinstance(timings, dict) or not {"count", "total", "max"} <= set(
        timings or ()
    ):
        problems.append("timings_s missing count/total/max")
    return problems


def compare_bench(
    old: Dict[str, Any],
    new: Dict[str, Any],
    tolerance: float = 0.1,
    timing_tolerance: Optional[float] = None,
) -> Dict[str, Any]:
    """Compare a fresh BENCH document against a baseline.

    Walks every table/row/field of ``old`` and checks the matching cell
    of ``new`` (rows are matched positionally within same-titled tables,
    which is stable because the benchmarks emit rows in a fixed order).
    A *regression* is:

    - a table, row or field present in the baseline but missing now;
    - a non-numeric field (the paper-table ``answer`` strings, operator
      names, ...) whose value changed at all;
    - a numeric non-timing field that moved in its bad direction by more
      than ``tolerance`` (relative);
    - with ``timing_tolerance`` set, a timing field that did the same by
      more than ``timing_tolerance``.

    New tables/rows/fields only in ``new`` are reported as ``added`` but
    never fail the gate.  Returns a report dict; the gate is
    ``report["regressions"]``.
    """
    regressions: List[Dict[str, Any]] = []
    improvements: List[Dict[str, Any]] = []
    added: List[str] = []
    skipped_timing = 0
    compared = 0

    old_tables = old.get("tables") or {}
    new_tables = new.get("tables") or {}
    experiment = old.get("experiment") or new.get("experiment")

    for title in new_tables:
        if title not in old_tables:
            added.append("table %r" % title)

    for title, old_rows in old_tables.items():
        new_rows = new_tables.get(title)
        if new_rows is None:
            regressions.append(
                {"table": title, "problem": "table missing from new artifact"}
            )
            continue
        if len(new_rows) < len(old_rows):
            regressions.append(
                {
                    "table": title,
                    "problem": "row count shrank from %d to %d"
                    % (len(old_rows), len(new_rows)),
                }
            )
        elif len(new_rows) > len(old_rows):
            added.append("table %r rows %d..%d" % (title, len(old_rows), len(new_rows)))
        for index, old_row in enumerate(old_rows):
            if index >= len(new_rows):
                break
            new_row = new_rows[index]
            for field, old_value in old_row.items():
                if field not in new_row:
                    regressions.append(
                        {
                            "table": title,
                            "row": index,
                            "field": field,
                            "problem": "field missing from new artifact",
                            "old": old_value,
                        }
                    )
                    continue
                new_value = new_row[field]
                entry = _compare_field(
                    title, index, field, old_value, new_value,
                    tolerance, timing_tolerance,
                )
                if entry is None:
                    compared += 1
                    continue
                if entry == "skipped-timing":
                    skipped_timing += 1
                    continue
                compared += 1
                if entry.pop("_improved", False):
                    improvements.append(entry)
                else:
                    regressions.append(entry)

    return {
        "experiment": experiment,
        "tolerance": tolerance,
        "timing_tolerance": timing_tolerance,
        "compared_fields": compared,
        "skipped_timing_fields": skipped_timing,
        "regressions": regressions,
        "improvements": improvements,
        "added": added,
    }


def _compare_field(
    title: str,
    index: int,
    field: str,
    old_value: Any,
    new_value: Any,
    tolerance: float,
    timing_tolerance: Optional[float],
):
    """One cell of the diff: None (within tolerance), the string
    ``"skipped-timing"``, or an entry dict (``_improved`` marks the good
    direction)."""
    numeric = isinstance(old_value, (int, float)) and not isinstance(old_value, bool)
    if not numeric or not isinstance(new_value, (int, float)):
        if old_value != new_value:
            return {
                "table": title,
                "row": index,
                "field": field,
                "problem": "value changed",
                "old": old_value,
                "new": new_value,
            }
        return None
    timing = is_timing_field(field)
    if timing and timing_tolerance is None:
        return "skipped-timing"
    bound = timing_tolerance if timing else tolerance
    if old_value == 0:
        change = 0.0 if new_value == 0 else float("inf")
    else:
        change = (new_value - old_value) / abs(old_value)
    # A positive `signed` change is movement in the *bad* direction.
    signed = change * -_direction(field)
    if abs(change) <= bound:
        return None
    entry = {
        "table": title,
        "row": index,
        "field": field,
        "old": old_value,
        "new": new_value,
        "change": round(change, 6) if change != float("inf") else "inf",
    }
    if timing:
        entry["timing"] = True
    if signed <= 0:
        entry["_improved"] = True
    return entry


def diff_bench_dirs(
    old_dir: str,
    new_dir: str,
    tolerance: float = 0.1,
    timing_tolerance: Optional[float] = None,
) -> Dict[str, Any]:
    """Compare every ``BENCH_*.json`` baseline in ``old_dir`` against its
    namesake in ``new_dir``; a baseline with no counterpart is a
    regression.  Extra artifacts in ``new_dir`` are reported as added."""
    old_names = sorted(
        name for name in os.listdir(old_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    new_names = sorted(
        name for name in os.listdir(new_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    ) if os.path.isdir(new_dir) else []
    artifacts: List[Dict[str, Any]] = []
    total = 0
    for name in old_names:
        new_path = os.path.join(new_dir, name)
        if not os.path.exists(new_path):
            artifacts.append(
                {
                    "artifact": name,
                    "regressions": [
                        {"problem": "artifact missing from %s" % new_dir}
                    ],
                }
            )
            total += 1
            continue
        report = compare_bench(
            load_bench(os.path.join(old_dir, name)),
            load_bench(new_path),
            tolerance=tolerance,
            timing_tolerance=timing_tolerance,
        )
        report["artifact"] = name
        artifacts.append(report)
        total += len(report["regressions"])
    return {
        "old_dir": old_dir,
        "new_dir": new_dir,
        "tolerance": tolerance,
        "timing_tolerance": timing_tolerance,
        "artifacts": artifacts,
        "added_artifacts": [n for n in new_names if n not in old_names],
        "regressions_total": total,
    }
