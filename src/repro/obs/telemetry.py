"""Benchmark telemetry: machine-readable ``BENCH_<experiment>.json`` files.

The benchmarks already print paper-style tables; this module persists the
same rows (plus wall-clock timings) so the performance trajectory can be
tracked across commits.  Each experiment gets one JSON document:

.. code-block:: json

    {
      "schema_version": 1,
      "experiment": "e13_boolean",
      "tables": {"E13: ...": [{"op": "and", "entries": 2000, ...}, ...]},
      "timings_s": {"count": 12, "total": 0.81, "max": 0.2},
      "meta": {"page_size": 16}
    }

:class:`BenchEmitter` merges repeated :meth:`~BenchEmitter.emit` calls for
the same experiment within one process run (a benchmark may record several
tables), always rewriting the whole file.  The output directory defaults
to ``benchmarks/results`` and honours ``REPRO_BENCH_DIR``.
:func:`validate_bench` is the well-formedness check CI's benchmark-smoke
job (and the tests) run against produced artifacts.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["BenchEmitter", "validate_bench", "load_bench", "DEFAULT_BENCH_DIR"]

SCHEMA_VERSION = 1
DEFAULT_BENCH_DIR = os.path.join("benchmarks", "results")

_EXPERIMENT_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


class BenchEmitter:
    """Accumulates one process run's benchmark tables and writes them as
    ``BENCH_<experiment>.json`` documents."""

    def __init__(self, out_dir: Optional[str] = None):
        self.out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR", DEFAULT_BENCH_DIR)
        self._payloads: Dict[str, Dict[str, Any]] = {}

    def path_for(self, experiment: str) -> str:
        return os.path.join(self.out_dir, "BENCH_%s.json" % experiment)

    def _payload(self, experiment: str) -> Dict[str, Any]:
        if not _EXPERIMENT_RE.match(experiment):
            raise ValueError("bad experiment name %r" % experiment)
        return self._payloads.setdefault(
            experiment,
            {
                "schema_version": SCHEMA_VERSION,
                "experiment": experiment,
                "tables": {},
                "timings_s": {"count": 0, "total": 0.0, "max": 0.0},
                "meta": {},
            },
        )

    def add_timing(self, experiment: str, elapsed: float) -> None:
        """Fold one measured wall-clock duration into the experiment's
        latency summary (no file write; :meth:`emit` persists)."""
        timings = self._payload(experiment)["timings_s"]
        timings["count"] += 1
        timings["total"] += elapsed
        timings["max"] = max(timings["max"], elapsed)

    def emit(
        self,
        experiment: str,
        title: Optional[str] = None,
        rows: Optional[Sequence[Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Merge a table (and/or metadata) into the experiment's document
        and write it out; returns the file path."""
        payload = self._payload(experiment)
        if title is not None:
            payload["tables"][title] = list(rows or [])
        if meta:
            payload["meta"].update(meta)
        os.makedirs(self.out_dir, exist_ok=True)
        path = self.path_for(experiment)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        return path


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def validate_bench(payload: Dict[str, Any]) -> List[str]:
    """Well-formedness problems of a BENCH document ([] when valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            "schema_version %r != %d" % (payload.get("schema_version"), SCHEMA_VERSION)
        )
    experiment = payload.get("experiment")
    if not isinstance(experiment, str) or not _EXPERIMENT_RE.match(experiment or ""):
        problems.append("bad experiment name %r" % (experiment,))
    tables = payload.get("tables")
    if not isinstance(tables, dict) or not tables:
        problems.append("tables missing or empty")
    else:
        for title, rows in tables.items():
            if not isinstance(rows, list) or not rows:
                problems.append("table %r has no rows" % title)
                continue
            for row in rows:
                if not isinstance(row, dict):
                    problems.append("table %r has a non-object row" % title)
                    break
    timings = payload.get("timings_s")
    if not isinstance(timings, dict) or not {"count", "total", "max"} <= set(
        timings or ()
    ):
        problems.append("timings_s missing count/total/max")
    return problems
