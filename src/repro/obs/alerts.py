"""Declarative alert rules evaluated over the metric history.

A rule names a measurement over :class:`~repro.obs.history.MetricHistory`
and a breach condition; the engine runs every rule each evaluation round
and drives a small state machine per rule::

    ok --(breached for `for_samples` consecutive rounds)--> firing
    firing --(one non-breached round)--> ok      (a "resolved" transition)

Three rule shapes cover the operational questions the stack raises:

- :class:`ThresholdRule` -- a level check on the newest sample, e.g.
  ``p95(repro_planner_qerror) > 4`` (the planner is mis-estimating) or
  ``max`` over ``repro_replication_lag_records`` (a replica fell
  behind);
- :class:`RateRule` -- a derivative check over a window, e.g. error
  rates climbing;
- :class:`RatioRule` -- one label's share of a counter, e.g. the cache
  hit rate dropping under a floor (guarded by ``min_denominator`` so an
  idle service never pages).

Rules can also be written as text via :func:`parse_rule`:
``"p95(repro_planner_qerror) > 4"``,
``"rate(repro_searches_total, 60) > 100"``,
``"repro_cache_lookups_total{outcome=hit} / total < 0.5 min 20"``, with
an optional ``for N`` suffix for the consecutive-breach requirement.

Transitions are structured-logged (``alert.firing`` at warning,
``alert.resolved`` at info), counted in
``repro_alert_transitions_total{rule,to}``, and the number of currently
firing rules is the ``repro_alerts_firing`` gauge; the service folds
:meth:`AlertEngine.firing` into ``/healthz`` as ``status: degraded``.
Everything is deterministic under the history's injected clock -- no
wall-clock reads happen here except through it.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Dict, List, Optional

from .log import NULL_LOGGER
from .metrics import get_registry

__all__ = [
    "AlertEngine",
    "AlertRule",
    "RateRule",
    "RatioRule",
    "ThresholdRule",
    "default_rules",
    "parse_rule",
]

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


class AlertRule:
    """One named breach condition; subclasses define the measurement."""

    def __init__(
        self,
        name: str,
        op: str,
        threshold: float,
        severity: str = "warning",
        for_samples: int = 1,
    ):
        if op not in _OPS:
            raise ValueError("op must be one of %s, got %r" % (sorted(_OPS), op))
        if for_samples < 1:
            raise ValueError("for_samples must be positive")
        self.name = name
        self.op = op
        self.threshold = float(threshold)
        self.severity = severity
        self.for_samples = for_samples

    def measure(self, history) -> Optional[float]:
        """The rule's current measurement, or None when the history cannot
        answer yet (no data is never a breach)."""
        raise NotImplementedError

    def breached(self, value: Optional[float]) -> bool:
        return value is not None and _OPS[self.op](value, self.threshold)

    def condition(self) -> str:
        return "%s %s %g" % (self._expr(), self.op, self.threshold)

    def _expr(self) -> str:
        return self.name

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "condition": self.condition(),
            "severity": self.severity,
            "for_samples": self.for_samples,
        }

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.condition())


def _render_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join(
        "%s=%s" % pair for pair in sorted(labels.items())
    )


class ThresholdRule(AlertRule):
    """Level check on the newest sample: ``field(metric{labels}) OP t``."""

    def __init__(
        self,
        name: str,
        metric: str,
        op: str,
        threshold: float,
        field: str = "value",
        labels: Optional[Dict[str, str]] = None,
        agg: str = "sum",
        **kw: Any,
    ):
        super().__init__(name, op, threshold, **kw)
        self.metric = metric
        self.field = field
        self.labels = dict(labels) if labels else None
        self.agg = agg

    def measure(self, history) -> Optional[float]:
        return history.value(self.metric, self.field, self.labels, self.agg)

    def _expr(self) -> str:
        target = "%s%s" % (self.metric, _render_labels(self.labels))
        if self.field != "value":
            return "%s(%s)" % (self.field, target)
        if self.agg != "sum":
            return "%s(%s)" % (self.agg, target)
        return target


class RateRule(AlertRule):
    """Windowed per-second rate: ``rate(metric{labels}, window) OP t``."""

    def __init__(
        self,
        name: str,
        metric: str,
        op: str,
        threshold: float,
        window_s: float,
        field: str = "value",
        labels: Optional[Dict[str, str]] = None,
        agg: str = "sum",
        **kw: Any,
    ):
        super().__init__(name, op, threshold, **kw)
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.metric = metric
        self.window_s = float(window_s)
        self.field = field
        self.labels = dict(labels) if labels else None
        self.agg = agg

    def measure(self, history) -> Optional[float]:
        return history.rate(
            self.metric, self.window_s, self.field, self.labels, self.agg
        )

    def _expr(self) -> str:
        return "rate(%s%s, %g)" % (
            self.metric,
            _render_labels(self.labels),
            self.window_s,
        )


class RatioRule(AlertRule):
    """One label combination's share of a counter's total, e.g. the cache
    hit rate (``outcome=hit`` over all outcomes).  With ``window_s`` the
    ratio is over the window's deltas (recent behaviour); without, over
    lifetime totals.  ``min_denominator`` suppresses the rule until the
    denominator has enough observations to make the ratio meaningful."""

    def __init__(
        self,
        name: str,
        metric: str,
        numerator_labels: Dict[str, str],
        op: str,
        threshold: float,
        min_denominator: float = 1.0,
        window_s: Optional[float] = None,
        field: str = "value",
        **kw: Any,
    ):
        super().__init__(name, op, threshold, **kw)
        if not numerator_labels:
            raise ValueError("numerator_labels must name at least one label")
        self.metric = metric
        self.numerator_labels = dict(numerator_labels)
        self.min_denominator = min_denominator
        self.window_s = window_s
        self.field = field

    def _read(self, history, labels: Optional[Dict[str, str]]) -> Optional[float]:
        if self.window_s is not None:
            return history.delta(self.metric, self.window_s, self.field, labels)
        return history.value(self.metric, self.field, labels)

    def measure(self, history) -> Optional[float]:
        denominator = self._read(history, None)
        if denominator is None or denominator < self.min_denominator:
            return None
        numerator = self._read(history, self.numerator_labels) or 0.0
        return numerator / denominator

    def _expr(self) -> str:
        expr = "%s%s / total" % (
            self.metric,
            _render_labels(self.numerator_labels),
        )
        if self.window_s is not None:
            expr = "delta[%g](%s)" % (self.window_s, expr)
        return expr

    def condition(self) -> str:
        return "%s %s %g min %g" % (
            self._expr(),
            self.op,
            self.threshold,
            self.min_denominator,
        )


# -- the text grammar ------------------------------------------------------

_METRIC = r"(?P<metric>[A-Za-z_:][A-Za-z0-9_:]*)(?:\{(?P<labels>[^}]*)\})?"
_RULE_RE = re.compile(
    r"^\s*(?:(?P<func>[a-z0-9_]+)\(\s*" + _METRIC + r"\s*"
    r"(?:,\s*(?P<window>[0-9.]+)\s*)?\)"
    r"|" + _METRIC.replace("metric", "bare_metric").replace("labels", "bare_labels")
    + r")"
    r"(?P<ratio>\s*/\s*total)?"
    r"\s*(?P<op>>=|<=|>|<)\s*(?P<threshold>-?[0-9.]+)"
    r"(?:\s+min\s+(?P<min>[0-9.]+))?"
    r"(?:\s+for\s+(?P<for>\d+))?\s*$"
)

_FUNC_FIELDS = ("p50", "p95", "p99", "sum", "count", "value")
_FUNC_AGGS = ("max", "min")


def _parse_labels(text: Optional[str]) -> Optional[Dict[str, str]]:
    if not text or not text.strip():
        return None
    labels = {}
    for pair in text.split(","):
        name, _, value = pair.partition("=")
        if not _:
            raise ValueError("malformed label %r (expected name=value)" % pair)
        labels[name.strip()] = value.strip().strip('"')
    return labels


def parse_rule(text: str, name: Optional[str] = None, **kw: Any) -> AlertRule:
    """Build a rule from its text form.  Examples::

        p95(repro_planner_qerror) > 4
        max(repro_replication_lag_records) > 8
        rate(repro_searches_total, 60) > 100 for 2
        repro_cache_lookups_total{outcome=hit} / total < 0.5 min 20

    ``name`` defaults to the rule text; keyword arguments (``severity``,
    ``for_samples``) pass through to the rule (an explicit ``for N`` in
    the text wins)."""
    match = _RULE_RE.match(text)
    if match is None:
        raise ValueError("cannot parse alert rule %r" % text)
    groups = match.groupdict()
    func = groups["func"]
    metric = groups["metric"] or groups["bare_metric"]
    labels = _parse_labels(groups["labels"] or groups["bare_labels"])
    op = groups["op"]
    threshold = float(groups["threshold"])
    if groups["for"]:
        kw["for_samples"] = int(groups["for"])
    rule_name = name if name is not None else text.strip()
    if groups["ratio"]:
        if func is not None:
            raise ValueError("ratio rules take no function: %r" % text)
        if labels is None:
            raise ValueError("ratio rules need numerator labels: %r" % text)
        minimum = float(groups["min"]) if groups["min"] else 1.0
        return RatioRule(
            rule_name, metric, labels, op, threshold,
            min_denominator=minimum, **kw,
        )
    if groups["min"]:
        raise ValueError("'min' only applies to ratio rules: %r" % text)
    if func == "rate":
        if not groups["window"]:
            raise ValueError("rate() needs a window: rate(metric, seconds)")
        return RateRule(
            rule_name, metric, op, threshold, float(groups["window"]),
            labels=labels, **kw,
        )
    if groups["window"]:
        raise ValueError("only rate() takes a window argument: %r" % text)
    if func in (None, "value"):
        return ThresholdRule(rule_name, metric, op, threshold, labels=labels, **kw)
    if func in _FUNC_FIELDS:
        return ThresholdRule(
            rule_name, metric, op, threshold, field=func, labels=labels, **kw
        )
    if func in _FUNC_AGGS:
        return ThresholdRule(
            rule_name, metric, op, threshold, labels=labels, agg=func, **kw
        )
    raise ValueError("unknown function %r in alert rule %r" % (func, text))


def default_rules() -> List[AlertRule]:
    """The stack's stock rules: planner estimation quality, replication
    lag, and the cache hit-rate floor."""
    return [
        ThresholdRule(
            "planner-qerror-p95",
            "repro_planner_qerror",
            ">",
            4.0,
            field="p95",
        ),
        ThresholdRule(
            "replication-lag",
            "repro_replication_lag_records",
            ">",
            8,
            agg="max",
        ),
        RatioRule(
            "cache-hit-rate-floor",
            "repro_cache_lookups_total",
            {"outcome": "hit"},
            "<",
            0.1,
            min_denominator=50,
        ),
    ]


class AlertEngine:
    """Evaluates rules over one history and tracks firing state."""

    #: Transitions retained for ``/alerts`` (newest last).
    KEEP_TRANSITIONS = 64

    def __init__(self, history, rules: List[AlertRule], log=None, metrics=None):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate rule names: %s" % names)
        self.history = history
        self.rules = list(rules)
        self.log = log if log is not None else NULL_LOGGER
        registry = metrics if metrics is not None else get_registry()
        self._m_transitions = registry.counter(
            "repro_alert_transitions_total",
            "Alert state transitions",
            labelnames=("rule", "to"),
        )
        self._m_firing = registry.gauge(
            "repro_alerts_firing", "Alert rules currently firing"
        )
        self._lock = threading.Lock()
        self._states: Dict[str, Dict[str, Any]] = {
            rule.name: {"state": "ok", "streak": 0, "since": None, "value": None}
            for rule in self.rules
        }
        self.transitions: List[Dict[str, Any]] = []
        #: Evaluation rounds run.
        self.evaluations = 0

    def evaluate(self) -> List[Dict[str, Any]]:
        """Run every rule against the history once; returns the transitions
        this round caused (empty when nothing changed state)."""
        latest = self.history.latest()
        now = latest.ts if latest is not None else None
        changed: List[Dict[str, Any]] = []
        with self._lock:
            self.evaluations += 1
            for rule in self.rules:
                state = self._states[rule.name]
                value = rule.measure(self.history)
                state["value"] = value
                if rule.breached(value):
                    state["streak"] += 1
                    if state["state"] == "ok" and state["streak"] >= rule.for_samples:
                        state["state"] = "firing"
                        state["since"] = now
                        changed.append(self._transition(rule, "firing", value, now))
                else:
                    state["streak"] = 0
                    if state["state"] == "firing":
                        state["state"] = "ok"
                        state["since"] = None
                        changed.append(self._transition(rule, "resolved", value, now))
            firing = sum(
                1 for s in self._states.values() if s["state"] == "firing"
            )
        self._m_firing.set(firing)
        for transition in changed:
            self._m_transitions.inc(rule=transition["rule"], to=transition["to"])
            if self.log.enabled:
                emit = (
                    self.log.warning
                    if transition["to"] == "firing"
                    else self.log.info
                )
                emit(
                    "alert.%s" % transition["to"],
                    rule=transition["rule"],
                    condition=transition["condition"],
                    value=transition["value"],
                    severity=transition["severity"],
                )
        return changed

    def _transition(
        self, rule: AlertRule, to: str, value: Optional[float], ts: Optional[float]
    ) -> Dict[str, Any]:
        transition = {
            "rule": rule.name,
            "to": to,
            "condition": rule.condition(),
            "severity": rule.severity,
            "value": value,
            "ts": ts,
        }
        self.transitions.append(transition)
        if len(self.transitions) > self.KEEP_TRANSITIONS:
            del self.transitions[: -self.KEEP_TRANSITIONS]
        return transition

    def firing(self) -> List[Dict[str, Any]]:
        """The rules currently firing, as JSON-ready dicts."""
        with self._lock:
            return [
                dict(
                    rule.describe(),
                    state="firing",
                    value=self._states[rule.name]["value"],
                    since=self._states[rule.name]["since"],
                )
                for rule in self.rules
                if self._states[rule.name]["state"] == "firing"
            ]

    def status(self) -> Dict[str, Any]:
        """The whole engine as one JSON-ready dict (the ``/alerts``
        payload)."""
        with self._lock:
            rules = [
                dict(
                    rule.describe(),
                    state=self._states[rule.name]["state"],
                    streak=self._states[rule.name]["streak"],
                    value=self._states[rule.name]["value"],
                    since=self._states[rule.name]["since"],
                )
                for rule in self.rules
            ]
        return {
            "evaluations": self.evaluations,
            "firing": [r["name"] for r in rules if r["state"] == "firing"],
            "rules": rules,
            "transitions": list(self.transitions[-self.KEEP_TRANSITIONS:]),
        }

    def __repr__(self) -> str:
        return "AlertEngine(%d rules, %d firing)" % (
            len(self.rules),
            len(self.firing()),
        )
