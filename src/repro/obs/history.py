"""Metric history: a ring of registry snapshots, and rates over them.

The metrics registry (:mod:`repro.obs.metrics`) answers "what is the
total *now*"; alerting and capacity questions need "how is it *moving*".
:class:`MetricHistory` samples the whole registry into a bounded ring of
:class:`MetricSample` points and computes windowed deltas and per-second
rates across them -- the same derivative a Prometheus ``rate()`` takes,
but in-process and dependency-free.

Sampling is **pull**, not a background thread: the service calls
:meth:`MetricHistory.maybe_sample` opportunistically on its search path
(rate-limited by ``min_interval_s``), and tests / the CLI call
:meth:`sample` directly.  The clock is injectable, so a test can march
time forward sample by sample and every rate, window and alert
transition computed over the history is exactly reproducible.

Each sample flattens the registry: counters and gauges to their scalar
``value`` per label combination, histograms to ``sum``/``count`` plus
the interpolated ``p50``/``p95``/``p99``.  Lookups
(:meth:`~MetricHistory.value`, :meth:`~MetricHistory.rate`,
:meth:`~MetricHistory.delta`) select series by a label *subset* and
aggregate across the matches (``sum``/``max``/``min``) -- enough to ask
"p95 of the Q-error histogram" or "rate of cache misses" in one call,
which is the vocabulary the alert rules (:mod:`repro.obs.alerts`) are
written in.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry

__all__ = ["MetricHistory", "MetricSample"]

LabelKey = Tuple[Tuple[str, str], ...]

_AGGS = {"sum": sum, "max": max, "min": min}


class MetricSample:
    """One point-in-time flattening of the registry."""

    __slots__ = ("ts", "values")

    def __init__(self, ts: float, values: Dict[str, Dict[str, Any]]):
        self.ts = ts
        #: metric name -> {"kind": ..., "series": {labelkey: {field: value}}}
        self.values = values

    def get(
        self,
        metric: str,
        field: str = "value",
        labels: Optional[Dict[str, str]] = None,
        agg: str = "sum",
    ) -> Optional[float]:
        """The ``field`` of ``metric`` aggregated across every series whose
        labels contain ``labels`` (all series when None).  Returns None
        when the metric has no matching series or none carries the field
        (e.g. quantiles of an empty histogram)."""
        if agg not in _AGGS:
            raise ValueError("agg must be one of %s" % sorted(_AGGS))
        entry = self.values.get(metric)
        if entry is None:
            return None
        wanted = tuple(sorted((labels or {}).items()))
        matched: List[float] = []
        for labelkey, fields in entry["series"].items():
            if wanted and not set(wanted) <= set(labelkey):
                continue
            value = fields.get(field)
            if value is not None:
                matched.append(value)
        if not matched:
            return None
        return _AGGS[agg](matched)

    def as_dict(self, metric: Optional[str] = None) -> Dict[str, Any]:
        names = [metric] if metric else sorted(self.values)
        metrics = {}
        for name in names:
            entry = self.values.get(name)
            if entry is None:
                continue
            metrics[name] = {
                "kind": entry["kind"],
                "series": [
                    dict(fields, labels=dict(labelkey))
                    for labelkey, fields in sorted(entry["series"].items())
                ],
            }
        return {"ts": self.ts, "metrics": metrics}

    def __repr__(self) -> str:
        return "MetricSample(ts=%r, %d metrics)" % (self.ts, len(self.values))


def _capture(registry: MetricsRegistry) -> Dict[str, Dict[str, Any]]:
    values: Dict[str, Dict[str, Any]] = {}
    for name in registry.names():
        instrument = registry.get(name)
        if instrument is None:
            continue
        dumped = instrument.as_dict()
        kind = dumped.get("kind", "untyped")
        series: Dict[LabelKey, Dict[str, Any]] = {}
        if kind == "histogram":
            for row in dumped["values"]:
                fields: Dict[str, Any] = {
                    "sum": row["sum"],
                    "count": row["count"],
                }
                if row.get("quantiles"):
                    fields.update(row["quantiles"])
                series[tuple(sorted(row["labels"].items()))] = fields
        else:
            for row in dumped["values"]:
                series[tuple(sorted(row["labels"].items()))] = {
                    "value": row["value"]
                }
        values[name] = {"kind": kind, "series": series}
    return values


class MetricHistory:
    """A bounded ring of :class:`MetricSample` points over one registry."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capacity: int = 128,
        clock: Callable[[], float] = time.time,
    ):
        if capacity < 2:
            raise ValueError("capacity must be at least 2 (rates need two points)")
        self.registry = registry if registry is not None else get_registry()
        self.capacity = capacity
        self._clock = clock
        self._samples: Deque[MetricSample] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Lifetime samples taken (>= len(self) once the ring wrapped).
        self.taken = 0

    # -- sampling ----------------------------------------------------------

    def sample(self) -> MetricSample:
        """Snapshot the registry now and append it to the ring."""
        ts = self._clock()
        point = MetricSample(ts, _capture(self.registry))
        with self._lock:
            self._samples.append(point)
            self.taken += 1
        return point

    def maybe_sample(self, min_interval_s: float = 1.0) -> Optional[MetricSample]:
        """Sample only if at least ``min_interval_s`` passed since the last
        point (or the ring is empty); the service's search path calls
        this so history accrues without a background thread."""
        with self._lock:
            if self._samples and self._clock() - self._samples[-1].ts < min_interval_s:
                return None
        return self.sample()

    # -- access ------------------------------------------------------------

    def latest(self) -> Optional[MetricSample]:
        with self._lock:
            return self._samples[-1] if self._samples else None

    def snapshots(self) -> List[MetricSample]:
        with self._lock:
            return list(self._samples)

    def window(self, window_s: float) -> List[MetricSample]:
        """Samples within ``window_s`` of the newest one, oldest first."""
        with self._lock:
            if not self._samples:
                return []
            horizon = self._samples[-1].ts - window_s
            return [s for s in self._samples if s.ts >= horizon]

    def value(
        self,
        metric: str,
        field: str = "value",
        labels: Optional[Dict[str, str]] = None,
        agg: str = "sum",
    ) -> Optional[float]:
        """``field`` of ``metric`` at the newest sample (see
        :meth:`MetricSample.get`)."""
        latest = self.latest()
        return latest.get(metric, field, labels, agg) if latest else None

    def delta(
        self,
        metric: str,
        window_s: float,
        field: str = "value",
        labels: Optional[Dict[str, str]] = None,
        agg: str = "sum",
    ) -> Optional[float]:
        """Newest minus oldest value inside the window; None without two
        usable points."""
        points = self.window(window_s)
        if len(points) < 2:
            return None
        last = points[-1].get(metric, field, labels, agg)
        first = points[0].get(metric, field, labels, agg)
        if last is None or first is None:
            return None
        return last - first

    def rate(
        self,
        metric: str,
        window_s: float,
        field: str = "value",
        labels: Optional[Dict[str, str]] = None,
        agg: str = "sum",
    ) -> Optional[float]:
        """Per-second rate of change across the window (a counter's
        ``rate()``); None without two usable points or zero elapsed."""
        points = self.window(window_s)
        if len(points) < 2:
            return None
        elapsed = points[-1].ts - points[0].ts
        if elapsed <= 0:
            return None
        last = points[-1].get(metric, field, labels, agg)
        first = points[0].get(metric, field, labels, agg)
        if last is None or first is None:
            return None
        return (last - first) / elapsed

    def as_dicts(
        self, limit: int = 0, metric: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The newest ``limit`` samples (all when 0) as JSON-ready dicts,
        oldest first, optionally restricted to one metric."""
        points = self.snapshots()
        if limit:
            points = points[-limit:]
        return [point.as_dict(metric) for point in points]

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def __repr__(self) -> str:
        return "MetricHistory(%d/%d samples)" % (len(self), self.capacity)
