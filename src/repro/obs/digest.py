"""The query digest table: pg_stat_statements for the directory.

Process-wide counters say how the *service* is doing; the digest table
says which *query shapes* are responsible.  Every finished search folds
into one :class:`QueryDigest` row keyed by the semantic cache's
ACD-normal-form fingerprint (:func:`repro.cache.keys.fingerprint`), so
two spellings of the same query -- reordered set operands, collapsed
duplicates -- aggregate into one row, exactly like
``pg_stat_statements`` collapses statements by normalized query id.

Per row: call count, how the calls were served (engine / cache hit /
superset hit / federation), latency and logical-page aggregates, result
sizes, and the planner's Q-error (max and mean) -- the row-level view of
the ``repro_planner_qerror`` histogram.

The table is **bounded** (``capacity`` rows): when a new fingerprint
arrives at a full table, the row with the fewest calls (ties: least
recently seen) is evicted and counted, so a scan of one-off shapes
cannot push the dominant workload out.  All operations take the table
lock; rows are plain slotted objects, cheap to update on the search
path.

The clock is injectable (``first_seen``/``last_seen`` stamps), which
keeps tests and the alert/benchmark harness deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["QueryDigest", "QueryDigestTable"]

#: How a search was served, as recorded by the service.
VIAS = ("engine", "cache", "superset", "federation")


class QueryDigest:
    """Aggregates for one normalized query shape."""

    __slots__ = (
        "key",
        "text",
        "calls",
        "cache_hits",
        "superset_hits",
        "federated",
        "elapsed_total",
        "elapsed_max",
        "pages_total",
        "entries_total",
        "entries_max",
        "qerror_sum",
        "qerror_max",
        "qerror_count",
        "first_seen",
        "last_seen",
    )

    def __init__(self, key: str, text: str, now: float):
        self.key = key
        #: One representative concrete spelling (first seen wins).
        self.text = text
        self.calls = 0
        self.cache_hits = 0
        self.superset_hits = 0
        self.federated = 0
        self.elapsed_total = 0.0
        self.elapsed_max = 0.0
        self.pages_total = 0
        self.entries_total = 0
        self.entries_max = 0
        self.qerror_sum = 0.0
        self.qerror_max = 0.0
        self.qerror_count = 0
        self.first_seen = now
        self.last_seen = now

    def observe(
        self,
        elapsed_s: float,
        pages: int,
        entries: int,
        via: str,
        qerror: Optional[float],
        now: float,
    ) -> None:
        self.calls += 1
        if via == "cache":
            self.cache_hits += 1
        elif via == "superset":
            self.superset_hits += 1
        elif via == "federation":
            self.federated += 1
        self.elapsed_total += elapsed_s
        if elapsed_s > self.elapsed_max:
            self.elapsed_max = elapsed_s
        self.pages_total += pages
        self.entries_total += entries
        if entries > self.entries_max:
            self.entries_max = entries
        if qerror is not None:
            self.qerror_sum += qerror
            self.qerror_count += 1
            if qerror > self.qerror_max:
                self.qerror_max = qerror
        self.last_seen = now

    # -- derived -----------------------------------------------------------

    @property
    def hits(self) -> int:
        """Calls served without evaluating (exact + superset)."""
        return self.cache_hits + self.superset_hits

    @property
    def mean_elapsed(self) -> float:
        return self.elapsed_total / self.calls if self.calls else 0.0

    @property
    def mean_pages(self) -> float:
        return self.pages_total / self.calls if self.calls else 0.0

    @property
    def mean_entries(self) -> float:
        return self.entries_total / self.calls if self.calls else 0.0

    @property
    def mean_qerror(self) -> Optional[float]:
        if not self.qerror_count:
            return None
        return self.qerror_sum / self.qerror_count

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "query": self.text,
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "superset_hits": self.superset_hits,
            "federated": self.federated,
            "hit_rate": round(self.hits / self.calls, 4) if self.calls else 0.0,
            "elapsed_total_s": round(self.elapsed_total, 6),
            "elapsed_mean_s": round(self.mean_elapsed, 6),
            "elapsed_max_s": round(self.elapsed_max, 6),
            "pages_total": self.pages_total,
            "pages_mean": round(self.mean_pages, 2),
            "entries_mean": round(self.mean_entries, 2),
            "entries_max": self.entries_max,
            "qerror_mean": (
                round(self.mean_qerror, 3) if self.qerror_count else None
            ),
            "qerror_max": round(self.qerror_max, 3) if self.qerror_count else None,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
        }

    def __repr__(self) -> str:
        return "QueryDigest(%r, calls=%d)" % (self.text, self.calls)


#: ``top(by=...)`` sort keys (all descending).
_ORDERINGS: Dict[str, Callable[[QueryDigest], Any]] = {
    "calls": lambda d: (d.calls, d.elapsed_total),
    "time": lambda d: (d.elapsed_total, d.calls),
    "mean_time": lambda d: (d.mean_elapsed, d.calls),
    "pages": lambda d: (d.pages_total, d.calls),
    "qerror": lambda d: (d.qerror_max, d.calls),
}


class QueryDigestTable:
    """A bounded, thread-safe table of per-fingerprint digests."""

    def __init__(self, capacity: int = 256, clock: Callable[[], float] = time.time):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._rows: Dict[str, QueryDigest] = {}
        self._lock = threading.Lock()
        #: Lifetime observations, including ones folded into since-evicted
        #: rows (``sum(row.calls) <= observed`` once anything was evicted).
        self.observed = 0
        #: Rows pushed out by the fewest-calls bound.
        self.evicted = 0

    def observe(
        self,
        key: str,
        text: str,
        elapsed_s: float,
        pages: int = 0,
        entries: int = 0,
        via: str = "engine",
        qerror: Optional[float] = None,
    ) -> QueryDigest:
        """Fold one finished search into the row for ``key`` (creating and
        possibly evicting to make room).  Returns the updated row."""
        if via not in VIAS:
            raise ValueError("via must be one of %s, got %r" % (VIAS, via))
        now = self._clock()
        with self._lock:
            row = self._rows.get(key)
            if row is None:
                if len(self._rows) >= self.capacity:
                    self._evict_locked()
                row = QueryDigest(key, text, now)
                self._rows[key] = row
            row.observe(elapsed_s, pages, entries, via, qerror, now)
            self.observed += 1
            return row

    def _evict_locked(self) -> None:
        victim = min(self._rows.values(), key=lambda d: (d.calls, d.last_seen))
        del self._rows[victim.key]
        self.evicted += 1

    def get(self, key: str) -> Optional[QueryDigest]:
        with self._lock:
            return self._rows.get(key)

    def top(self, n: int = 10, by: str = "calls") -> List[QueryDigest]:
        """The ``n`` heaviest rows by ``by`` (one of ``calls``, ``time``,
        ``mean_time``, ``pages``, ``qerror``), descending."""
        try:
            order = _ORDERINGS[by]
        except KeyError:
            raise ValueError(
                "by must be one of %s, got %r" % (sorted(_ORDERINGS), by)
            )
        with self._lock:
            rows = list(self._rows.values())
        rows.sort(key=order, reverse=True)
        return rows[:n]

    def snapshot(self, n: int = 0, by: str = "calls") -> Dict[str, Any]:
        """JSON-ready view: table counters plus the top rows (all rows
        when ``n`` is 0)."""
        with self._lock:
            size = len(self._rows)
        rows = self.top(n or size, by=by)
        return {
            "rows": size,
            "capacity": self.capacity,
            "observed": self.observed,
            "evicted": self.evicted,
            "by": by,
            "top": [row.as_dict() for row in rows],
        }

    def reset(self) -> None:
        with self._lock:
            self._rows.clear()
            self.observed = 0
            self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __repr__(self) -> str:
        return "QueryDigestTable(%d/%d rows, observed=%d)" % (
            len(self),
            self.capacity,
            self.observed,
        )
