"""The HTTP admin endpoint: scrape the operations plane from outside.

Everything PR 2 made measurable in-process becomes reachable over HTTP,
with no dependency beyond the stdlib (``http.server`` on a daemon
thread):

==========  ============================================================
path        payload
==========  ============================================================
/metrics    the metrics registry in Prometheus text exposition format --
            byte-identical to ``MetricsRegistry.to_prometheus()`` (the
            same function ``python -m repro metrics`` prints through)
/healthz    liveness JSON: status, uptime, plus whatever the owner's
            ``health`` callable reports (entry counts, compactions, ...)
/slowlog    the slow-query ring as JSON, newest last, with a latency
            summary (p50/p95/p99 interpolated from the search-latency
            histogram when one is registered)
/traces     the :class:`~repro.obs.trace.TraceSampler`'s retained tail
            samples (slow / degraded / budget-breached queries) as JSON
==========  ============================================================

:class:`AdminServer` serves a *snapshot view*: handlers only read the
registry, ring and sampler under their own locks, so scrapes never block
query traffic.  ``port=0`` binds an ephemeral port (tests);
:attr:`AdminServer.url` is the resolved base URL.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from .log import NULL_LOGGER
from .metrics import Histogram, MetricsRegistry, get_registry

__all__ = ["AdminServer"]

#: The histogram ``/slowlog`` summarises (the service's latency metric).
SEARCH_LATENCY_METRIC = "repro_search_seconds"


class AdminServer:
    """The operations-plane HTTP endpoint, on a daemon thread.

    :param registry: metrics registry to expose (process default when
        omitted).
    :param slow_queries: a :class:`~repro.obs.slowlog.SlowQueryLog`
        (``/slowlog`` serves an empty ring without one).
    :param sampler: a :class:`~repro.obs.trace.TraceSampler`
        (``/traces`` serves an empty list without one).
    :param health: zero-argument callable returning extra ``/healthz``
        fields.
    :param log: an :class:`~repro.obs.log.EventLogger`; requests are
        logged at debug level.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        slow_queries=None,
        sampler=None,
        health: Optional[Callable[[], Dict[str, Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        log=None,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.slow_queries = slow_queries
        self.sampler = sampler
        self.health = health
        self.log = log if log is not None else NULL_LOGGER
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AdminServer":
        """Bind and serve on a daemon thread; returns self (the bound
        address is in :attr:`address`/:attr:`url`)."""
        if self._httpd is not None:
            raise RuntimeError("admin server already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-admin",
            daemon=True,
        )
        self._thread.start()
        if self.log.enabled:
            self.log.info("admin.start", url=self.url)
        return self

    def stop(self) -> None:
        """Shut the endpoint down (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None
        if self.log.enabled:
            self.log.info("admin.stop")

    close = stop

    def __enter__(self) -> "AdminServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def address(self):
        """The bound ``(host, port)`` (None before :meth:`start`)."""
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return (host, port)

    @property
    def url(self) -> Optional[str]:
        address = self.address
        if address is None:
            return None
        return "http://%s:%d" % address

    # -- payloads ----------------------------------------------------------

    def metrics_text(self) -> str:
        return self.registry.to_prometheus()

    def healthz(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_at, 3),
        }
        if self.health is not None:
            payload.update(self.health())
        return payload

    def slowlog(self) -> Dict[str, Any]:
        log = self.slow_queries
        payload: Dict[str, Any] = {
            "threshold_s": getattr(log, "threshold_seconds", None),
            "total": getattr(log, "total", 0),
            "records": log.as_dicts() if log is not None else [],
        }
        histogram = self.registry.get(SEARCH_LATENCY_METRIC)
        if isinstance(histogram, Histogram):
            payload["latency_quantiles"] = histogram.quantiles()
        return payload

    def traces(self) -> Dict[str, Any]:
        sampler = self.sampler
        return {
            "offered": getattr(sampler, "offered", 0),
            "kept": getattr(sampler, "kept", 0),
            "traces": sampler.traces() if sampler is not None else [],
        }

    def __repr__(self) -> str:
        return "AdminServer(%s)" % (self.url or "stopped")


def _make_handler(server: AdminServer):
    """The request handler class bound to one :class:`AdminServer`."""

    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self) -> None:  # noqa: N802 - http.server naming
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    body = server.metrics_text().encode("utf-8")
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/healthz":
                    body = _json_body(server.healthz())
                    content_type = "application/json"
                elif path == "/slowlog":
                    body = _json_body(server.slowlog())
                    content_type = "application/json"
                elif path == "/traces":
                    body = _json_body(server.traces())
                    content_type = "application/json"
                else:
                    self._reply(
                        404,
                        _json_body({"error": "no such endpoint", "path": path}),
                        "application/json",
                    )
                    return
            except Exception as exc:  # defensive: a scrape must not kill serving
                self._reply(
                    500,
                    _json_body({"error": "%s: %s" % (type(exc).__name__, exc)}),
                    "application/json",
                )
                return
            self._reply(200, body, content_type)

        def _reply(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            if server.log.enabled:
                server.log.debug(
                    "admin.request", path=self.path, status=status,
                    bytes=len(body),
                )

        def log_message(self, format: str, *args: Any) -> None:
            # http.server's stderr chatter is replaced by the event log.
            pass

    return _Handler


def _json_body(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
