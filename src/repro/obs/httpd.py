"""The HTTP admin endpoint: scrape the operations plane from outside.

Everything the obs plane makes measurable in-process becomes reachable
over HTTP, with no dependency beyond the stdlib (``http.server`` on a
daemon thread):

==========  ============================================================
path        payload
==========  ============================================================
/metrics    the metrics registry in Prometheus text exposition format --
            byte-identical to ``MetricsRegistry.to_prometheus()`` (the
            same function ``python -m repro metrics`` prints through)
/healthz    liveness JSON: status, uptime, plus whatever the owner's
            ``health`` callable reports (entry counts, compactions, ...)
/slowlog    the slow-query ring as JSON, newest last, with a latency
            summary (p50/p95/p99 interpolated from the search-latency
            histogram when one is registered)
/traces     the :class:`~repro.obs.trace.TraceSampler`'s retained tail
            samples (slow / degraded / budget-breached queries) as JSON
/digest     the :class:`~repro.obs.digest.QueryDigestTable`'s top rows
            (``?n=10&by=calls|time|mean_time|pages|qerror``)
/heatmap    the :class:`~repro.obs.heatmap.SubtreeHeatMap`'s hottest
            subtrees (``?n=10&by=heat|reads|writes|pages|shipped``)
/history    the :class:`~repro.obs.history.MetricHistory` ring
            (``?limit=16&metric=repro_searches_total``)
/alerts     the :class:`~repro.obs.alerts.AlertEngine` status: per-rule
            state, firing set, recent transitions
==========  ============================================================

Response discipline (hardened): every payload carries an explicit
``Content-Type`` and ``Content-Length``; errors are JSON bodies -- 404
for unknown paths, 400 for malformed query parameters, 405 (with an
``Allow: GET, HEAD`` header) for write methods, 500 if a payload raises.
``HEAD`` returns the same headers as ``GET`` with no body.  Workload
endpoints whose collaborator is absent serve an explicit
``{"enabled": false}`` payload rather than 404, so scrapers can probe
capability cheaply.

:class:`AdminServer` serves a *snapshot view*: handlers only read the
registry, rings and tables under their own locks, so scrapes never block
query traffic.  ``port=0`` binds an ephemeral port (tests);
:attr:`AdminServer.url` is the resolved base URL.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from .log import NULL_LOGGER
from .metrics import Histogram, MetricsRegistry, get_registry

__all__ = ["AdminServer"]

#: The histogram ``/slowlog`` summarises (the service's latency metric).
SEARCH_LATENCY_METRIC = "repro_search_seconds"

JSON_TYPE = "application/json"
PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _BadParameter(ValueError):
    """A malformed query parameter (rendered as a 400)."""


def _int_param(params: Dict[str, List[str]], name: str, default: int) -> int:
    values = params.get(name)
    if not values:
        return default
    try:
        value = int(values[-1])
    except ValueError:
        raise _BadParameter("%s must be an integer, got %r" % (name, values[-1]))
    if value < 0:
        raise _BadParameter("%s must be non-negative, got %d" % (name, value))
    return value


def _str_param(
    params: Dict[str, List[str]], name: str, default: Optional[str]
) -> Optional[str]:
    values = params.get(name)
    return values[-1] if values else default


def _choice_param(
    params: Dict[str, List[str]],
    name: str,
    default: str,
    choices: Tuple[str, ...],
) -> str:
    """Like :func:`_str_param` but 400s on values outside ``choices`` --
    validated here so a bogus ordering is rejected even when the backing
    collaborator is absent and would never see it."""
    value = _str_param(params, name, default)
    if value not in choices:
        raise _BadParameter(
            "%s must be one of %s, got %r" % (name, sorted(choices), value)
        )
    return value


#: ``by=`` orderings accepted by ``/digest`` and ``/heatmap`` (mirrors
#: what QueryDigestTable.top / SubtreeHeatMap.hottest accept).
DIGEST_ORDERINGS = ("calls", "time", "mean_time", "pages", "qerror")
HEATMAP_ORDERINGS = ("heat", "reads", "writes", "pages", "shipped")


class AdminServer:
    """The operations-plane HTTP endpoint, on a daemon thread.

    :param registry: metrics registry to expose (process default when
        omitted).
    :param slow_queries: a :class:`~repro.obs.slowlog.SlowQueryLog`
        (``/slowlog`` serves an empty ring without one).
    :param sampler: a :class:`~repro.obs.trace.TraceSampler`
        (``/traces`` serves an empty list without one).
    :param health: zero-argument callable returning extra ``/healthz``
        fields.
    :param digest: a :class:`~repro.obs.digest.QueryDigestTable` for
        ``/digest``.
    :param heatmap: a :class:`~repro.obs.heatmap.SubtreeHeatMap` for
        ``/heatmap``.
    :param history: a :class:`~repro.obs.history.MetricHistory` for
        ``/history``.
    :param alerts: an :class:`~repro.obs.alerts.AlertEngine` for
        ``/alerts``.
    :param log: an :class:`~repro.obs.log.EventLogger`; requests are
        logged at debug level.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        slow_queries=None,
        sampler=None,
        health: Optional[Callable[[], Dict[str, Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        log=None,
        digest=None,
        heatmap=None,
        history=None,
        alerts=None,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.slow_queries = slow_queries
        self.sampler = sampler
        self.health = health
        self.digest = digest
        self.heatmap = heatmap
        self.history = history
        self.alerts = alerts
        self.log = log if log is not None else NULL_LOGGER
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AdminServer":
        """Bind and serve on a daemon thread; returns self (the bound
        address is in :attr:`address`/:attr:`url`)."""
        if self._httpd is not None:
            raise RuntimeError("admin server already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-admin",
            daemon=True,
        )
        self._thread.start()
        if self.log.enabled:
            self.log.info("admin.start", url=self.url)
        return self

    def stop(self) -> None:
        """Shut the endpoint down (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None
        if self.log.enabled:
            self.log.info("admin.stop")

    close = stop

    def __enter__(self) -> "AdminServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def address(self):
        """The bound ``(host, port)`` (None before :meth:`start`)."""
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return (host, port)

    @property
    def url(self) -> Optional[str]:
        address = self.address
        if address is None:
            return None
        return "http://%s:%d" % address

    # -- payloads ----------------------------------------------------------

    def metrics_text(self) -> str:
        return self.registry.to_prometheus()

    def healthz(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_at, 3),
        }
        if self.health is not None:
            payload.update(self.health())
        return payload

    def slowlog(self) -> Dict[str, Any]:
        log = self.slow_queries
        payload: Dict[str, Any] = {
            "threshold_s": getattr(log, "threshold_seconds", None),
            "total": getattr(log, "total", 0),
            "records": log.as_dicts() if log is not None else [],
        }
        histogram = self.registry.get(SEARCH_LATENCY_METRIC)
        if isinstance(histogram, Histogram):
            payload["latency_quantiles"] = histogram.quantiles()
        return payload

    def traces(self) -> Dict[str, Any]:
        sampler = self.sampler
        return {
            "offered": getattr(sampler, "offered", 0),
            "kept": getattr(sampler, "kept", 0),
            "traces": sampler.traces() if sampler is not None else [],
        }

    def digest_payload(self, n: int = 10, by: str = "calls") -> Dict[str, Any]:
        if self.digest is None:
            return {"enabled": False, "rows": 0, "top": []}
        return dict(self.digest.snapshot(n, by=by), enabled=True)

    def heatmap_payload(self, n: int = 10, by: str = "heat") -> Dict[str, Any]:
        if self.heatmap is None:
            return {"enabled": False, "cells": 0, "hottest": []}
        return dict(self.heatmap.snapshot(n, by=by), enabled=True)

    def history_payload(
        self, limit: int = 16, metric: Optional[str] = None
    ) -> Dict[str, Any]:
        if self.history is None:
            return {"enabled": False, "samples": []}
        return {
            "enabled": True,
            "capacity": self.history.capacity,
            "taken": self.history.taken,
            "retained": len(self.history),
            "samples": self.history.as_dicts(limit=limit, metric=metric),
        }

    def alerts_payload(self) -> Dict[str, Any]:
        if self.alerts is None:
            return {"enabled": False, "rules": [], "firing": []}
        return dict(self.alerts.status(), enabled=True)

    # -- routing -----------------------------------------------------------

    def routes(self) -> List[str]:
        """Every served path (the 404 body lists them)."""
        return sorted(self._route_table())

    def _route_table(self) -> Dict[str, Callable[[Dict[str, List[str]]], "tuple"]]:
        return {
            "/metrics": self._r_metrics,
            "/healthz": self._r_healthz,
            "/slowlog": self._r_slowlog,
            "/traces": self._r_traces,
            "/digest": self._r_digest,
            "/heatmap": self._r_heatmap,
            "/history": self._r_history,
            "/alerts": self._r_alerts,
        }

    def _r_metrics(self, params):
        return self.metrics_text().encode("utf-8"), PROMETHEUS_TYPE

    def _r_healthz(self, params):
        return _json_body(self.healthz()), JSON_TYPE

    def _r_slowlog(self, params):
        return _json_body(self.slowlog()), JSON_TYPE

    def _r_traces(self, params):
        return _json_body(self.traces()), JSON_TYPE

    def _r_digest(self, params):
        payload = self.digest_payload(
            n=_int_param(params, "n", 10),
            by=_choice_param(params, "by", "calls", DIGEST_ORDERINGS),
        )
        return _json_body(payload), JSON_TYPE

    def _r_heatmap(self, params):
        payload = self.heatmap_payload(
            n=_int_param(params, "n", 10),
            by=_choice_param(params, "by", "heat", HEATMAP_ORDERINGS),
        )
        return _json_body(payload), JSON_TYPE

    def _r_history(self, params):
        payload = self.history_payload(
            limit=_int_param(params, "limit", 16),
            metric=_str_param(params, "metric", None),
        )
        return _json_body(payload), JSON_TYPE

    def _r_alerts(self, params):
        return _json_body(self.alerts_payload()), JSON_TYPE

    def __repr__(self) -> str:
        return "AdminServer(%s)" % (self.url or "stopped")


def _make_handler(server: AdminServer):
    """The request handler class bound to one :class:`AdminServer`."""

    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self) -> None:  # noqa: N802 - http.server naming
            self._serve(send_body=True)

        def do_HEAD(self) -> None:  # noqa: N802
            self._serve(send_body=False)

        def _serve(self, send_body: bool) -> None:
            raw_path, _, query = self.path.partition("?")
            path = raw_path.rstrip("/") or "/"
            route = server._route_table().get(path)
            if route is None:
                self._reply(
                    404,
                    _json_body({
                        "error": "no such endpoint",
                        "path": path,
                        "endpoints": server.routes(),
                    }),
                    JSON_TYPE,
                    send_body,
                )
                return
            try:
                params = parse_qs(query, keep_blank_values=True)
                body, content_type = route(params)
            except _BadParameter as exc:
                self._reply(
                    400,
                    _json_body({"error": str(exc), "path": path}),
                    JSON_TYPE,
                    send_body,
                )
                return
            except ValueError as exc:
                # A payload rejecting a parameter value (unknown ordering
                # etc.) is the client's fault, not a server error.
                self._reply(
                    400,
                    _json_body({"error": str(exc), "path": path}),
                    JSON_TYPE,
                    send_body,
                )
                return
            except Exception as exc:  # defensive: a scrape must not kill serving
                self._reply(
                    500,
                    _json_body({"error": "%s: %s" % (type(exc).__name__, exc)}),
                    JSON_TYPE,
                    send_body,
                )
                return
            self._reply(200, body, content_type, send_body)

        def _method_not_allowed(self) -> None:
            # Drain any request body so a keep-alive connection stays in
            # sync for its next request.
            length = int(self.headers.get("Content-Length") or 0)
            while length > 0:
                chunk = self.rfile.read(min(length, 65536))
                if not chunk:
                    break
                length -= len(chunk)
            body = _json_body({
                "error": "method not allowed",
                "method": self.command,
                "allow": "GET, HEAD",
            })
            self.send_response(405)
            self.send_header("Allow", "GET, HEAD")
            self.send_header("Content-Type", JSON_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            self._log_request(405, len(body))

        # The admin plane is read-only: every write method gets the same
        # explicit JSON 405 instead of http.server's HTML 501.
        do_POST = _method_not_allowed  # noqa: N815 - http.server naming
        do_PUT = _method_not_allowed  # noqa: N815
        do_DELETE = _method_not_allowed  # noqa: N815
        do_PATCH = _method_not_allowed  # noqa: N815

        def _reply(
            self, status: int, body: bytes, content_type: str, send_body: bool = True
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if send_body:
                self.wfile.write(body)
            self._log_request(status, len(body))

        def _log_request(self, status: int, size: int) -> None:
            if server.log.enabled:
                server.log.debug(
                    "admin.request", method=self.command, path=self.path,
                    status=status, bytes=size,
                )

        def log_message(self, format: str, *args: Any) -> None:
            # http.server's stderr chatter is replaced by the event log.
            pass

    return _Handler


def _json_body(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
