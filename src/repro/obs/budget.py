"""Per-query resource budgets: cancel runaway queries at operator
boundaries.

The evaluation-complexity literature (nesting depth of operators) is
blunt about directory queries: most are a handful of page transfers, a
few -- deep ``dc``/``eragg`` towers over big subtrees -- are explosive.
A service that must stay responsive for everyone cannot let one of the
explosive ones monopolise the pager, so a :class:`QueryBudget` puts hard
ceilings on what a single evaluation may consume:

- ``max_pages`` -- logical page I/O (the paper's cost unit, via the
  pager's :class:`~repro.storage.pager.IOStats` bracketing);
- ``max_wall_s`` -- wall-clock seconds;
- ``max_entries`` -- the size of any materialised intermediate result.

Enforcement piggybacks on the engine's existing operator bracketing:
after every query-tree node the engine charges the live
:class:`BudgetTracker`, which raises a structured :class:`BudgetExceeded`
on breach.  The engine guarantees the cancellation is *leak-free* --
every intermediate :class:`~repro.storage.runs.Run` materialised so far
is freed before the error propagates, so
:attr:`~repro.storage.pager.Pager.live_pages` returns to its pre-query
value.  Budgets are enforced between operators, not inside one, so a
breach is detected within one operator's worth of work of the ceiling.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

__all__ = ["BudgetExceeded", "QueryBudget", "BudgetTracker"]


class BudgetExceeded(RuntimeError):
    """A query crossed its resource budget and was cancelled.

    Structured: ``resource`` names the breached ceiling (one of
    :attr:`PAGES`/:attr:`WALL_CLOCK`/:attr:`ENTRIES`), ``limit`` the
    configured bound and ``used`` the observed consumption at the breach.
    ``query_text`` and ``trace_id`` are filled in by the layer that knows
    them (the service), so the error joins the slow-query log and the
    trace export.
    """

    PAGES = "pages"
    WALL_CLOCK = "wall_clock"
    ENTRIES = "entries"

    def __init__(
        self,
        resource: str,
        limit: float,
        used: float,
        query_text: Optional[str] = None,
        trace_id: Optional[str] = None,
    ):
        super().__init__(
            "query budget exceeded: %s used %s of at most %s"
            % (resource, _short(used), _short(limit))
        )
        self.resource = resource
        self.limit = limit
        self.used = used
        self.query_text = query_text
        self.trace_id = trace_id

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "resource": self.resource,
            "limit": self.limit,
            "used": self.used,
        }
        if self.query_text is not None:
            payload["query"] = self.query_text
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload

    def __repr__(self) -> str:
        return "BudgetExceeded(%s, used=%s, limit=%s)" % (
            self.resource, _short(self.used), _short(self.limit),
        )


def _short(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return "%d" % int(value)
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


class QueryBudget:
    """Immutable ceilings for one query's evaluation (None = unlimited).

    A budget object is reusable and thread-safe (it holds no mutable
    state); :meth:`start` creates the per-run :class:`BudgetTracker`.
    """

    __slots__ = ("max_pages", "max_wall_s", "max_entries")

    def __init__(
        self,
        max_pages: Optional[int] = None,
        max_wall_s: Optional[float] = None,
        max_entries: Optional[int] = None,
    ):
        for name, value in (
            ("max_pages", max_pages),
            ("max_wall_s", max_wall_s),
            ("max_entries", max_entries),
        ):
            if value is not None and value < 0:
                raise ValueError("%s must be non-negative" % name)
        if max_pages is None and max_wall_s is None and max_entries is None:
            raise ValueError("a budget needs at least one ceiling")
        self.max_pages = max_pages
        self.max_wall_s = max_wall_s
        self.max_entries = max_entries

    def start(self, stats, clock=time.perf_counter) -> "BudgetTracker":
        """Begin tracking one evaluation against ``stats`` (a live
        :class:`~repro.storage.pager.IOStats`-like counter block)."""
        return BudgetTracker(self, stats, clock=clock)

    def as_dict(self) -> Dict[str, Any]:
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if getattr(self, name) is not None
        }

    def __repr__(self) -> str:
        limits = ", ".join(
            "%s=%s" % (k, v) for k, v in sorted(self.as_dict().items())
        )
        return "QueryBudget(%s)" % limits


class BudgetTracker:
    """One evaluation's consumption against a :class:`QueryBudget`.

    Created by :meth:`QueryBudget.start`; the engine calls
    :meth:`charge` after each operator.  The tracker never mutates the
    counters it watches -- it brackets them with the shared
    snapshot/since protocol.
    """

    __slots__ = ("budget", "_stats", "_clock", "_before", "_started")

    def __init__(self, budget: QueryBudget, stats, clock=time.perf_counter):
        self.budget = budget
        self._stats = stats
        self._clock = clock
        self._before = stats.snapshot() if stats is not None else None
        self._started = clock()

    def pages_used(self) -> int:
        if self._stats is None or self._before is None:
            return 0
        return self._stats.since(self._before).logical_total

    def elapsed(self) -> float:
        return self._clock() - self._started

    def charge(self, result_entries: int = 0) -> None:
        """Check every ceiling; raises :class:`BudgetExceeded` on the
        first breach.  ``result_entries`` is the size of the operator
        result just materialised."""
        budget = self.budget
        if budget.max_pages is not None:
            used = self.pages_used()
            if used > budget.max_pages:
                raise BudgetExceeded(BudgetExceeded.PAGES, budget.max_pages, used)
        if budget.max_wall_s is not None:
            elapsed = self.elapsed()
            if elapsed > budget.max_wall_s:
                raise BudgetExceeded(
                    BudgetExceeded.WALL_CLOCK, budget.max_wall_s, elapsed
                )
        if budget.max_entries is not None and result_entries > budget.max_entries:
            raise BudgetExceeded(
                BudgetExceeded.ENTRIES, budget.max_entries, result_entries
            )

    def usage(self) -> Dict[str, Any]:
        """Point-in-time consumption (for logs and error reports)."""
        return {
            "pages": self.pages_used(),
            "wall_s": round(self.elapsed(), 6),
        }

    def __repr__(self) -> str:
        return "BudgetTracker(%r, %s)" % (self.budget, self.usage())
