"""A process-wide metrics registry with Prometheus and JSON exposition.

Three instrument kinds, in the Prometheus data model:

- :class:`Counter` -- monotonically increasing totals
  (``repro_searches_total``);
- :class:`Gauge` -- point-in-time values (``repro_buffer_hit_rate``);
- :class:`Histogram` -- fixed-bucket distributions
  (``repro_search_seconds``), exposed as the standard cumulative
  ``_bucket``/``_sum``/``_count`` series.

Instruments support a fixed set of label names declared at creation;
observations pass label *values* as keyword arguments and each distinct
label combination gets its own series.  Registration is idempotent:
asking the registry for an instrument that already exists returns it
(mismatched kind or labels raise), so any layer can declare the metrics
it needs without coordination.

:func:`get_registry` returns the process-wide default registry; services
accept an explicit registry for isolation (tests, multi-tenant).

Thread safety: registration (get-or-create) and every observation
(``inc``/``set``/``observe``) are guarded by locks -- one per registry
for the instrument table, one per instrument for its series -- so
concurrent workers (the federation's scatter-gather pool) never lose
increments or race two creations of the same instrument.  Exposition
reads under the same locks and therefore sees consistent totals.

Swapping the default registry (:func:`set_registry`) *adopts* the
previous registry's instruments by default: handles created before the
swap stay registered -- same objects, same totals -- in the new default,
so long-lived layers that cached a counter keep being scraped instead of
silently writing into a stranded registry.  Pass ``adopt=False`` for a
hermetic swap (tests that want fresh counts); :func:`use_registry` is
the context-manager form that restores the previous default on exit.
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default latency buckets, in seconds (tuned for an in-process engine).
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labelnames: Sequence[str], labels: Dict[str, Any]) -> LabelKey:
    if set(labels) != set(labelnames):
        raise ValueError(
            "expected labels %s, got %s" % (sorted(labelnames), sorted(labels))
        )
    return tuple((name, str(labels[name])) for name in labelnames)


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join('%s="%s"' % (name, _escape(value)) for name, value in pairs)
    return "{%s}" % body


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return "%d" % int(value)
    return repr(value)


class _Instrument:
    """Common shape: a name, help text and declared label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        #: Guards this instrument's series maps (updates and exposition).
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> LabelKey:
        return _label_key(self.labelnames, labels)

    def expose(self) -> List[str]:
        raise NotImplementedError

    def as_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _header(self) -> List[str]:
        return [
            "# HELP %s %s" % (self.name, self.help_text),
            "# TYPE %s %s" % (self.name, self.kind),
        ]


class Counter(_Instrument):
    """A monotonically increasing total (per label combination)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % amount)
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def expose(self) -> List[str]:
        lines = self._header()
        with self._lock:
            values = dict(self._values)
        for key in sorted(values):
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(key), _format_value(values[key]))
            )
        if not values and not self.labelnames:
            lines.append("%s 0" % self.name)
        return lines

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "kind": self.kind,
            "help": self.help_text,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(values.items())
            ],
        }


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def expose(self) -> List[str]:
        lines = self._header()
        with self._lock:
            values = dict(self._values)
        for key in sorted(values):
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(key), _format_value(values[key]))
            )
        if not values and not self.labelnames:
            lines.append("%s 0" % self.name)
        return lines

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "kind": self.kind,
            "help": self.help_text,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(values.items())
            ],
        }


class Histogram(_Instrument):
    """A fixed-bucket distribution (cumulative buckets, Prometheus
    style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # per label key: [per-bound counts..., +Inf count], sum, count
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.bounds) + 1))
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            return self._totals.get(key, 0)

    #: The quantiles :meth:`quantiles` and :meth:`as_dict` report.
    REPORTED_QUANTILES = (0.5, 0.95, 0.99)

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """The estimated ``q``-quantile, linearly interpolated inside the
        fixed buckets (the ``histogram_quantile`` estimator).  Values in
        the overflow (+Inf) bucket clamp to the top bound; returns None
        with no observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            total = self._totals.get(key, 0)
            if counts is None or total == 0:
                return None
            counts = list(counts)
        rank = q * total
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            in_bucket = counts[i]
            if cumulative + in_bucket >= rank and in_bucket > 0:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                fraction = (rank - cumulative) / in_bucket
                return lower + (bound - lower) * fraction
            cumulative += in_bucket
        return float(self.bounds[-1])

    def quantiles(self, **labels: Any) -> Optional[Dict[str, float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` or None when empty."""
        estimates = {}
        for q in self.REPORTED_QUANTILES:
            value = self.quantile(q, **labels)
            if value is None:
                return None
            estimates["p%g" % (q * 100)] = value
        return estimates

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def expose(self) -> List[str]:
        lines = self._header()
        with self._lock:
            series = {key: list(self._counts[key]) for key in self._counts}
            sums = dict(self._sums)
            totals = dict(self._totals)
        for key in sorted(series):
            counts = series[key]
            cumulative = 0
            for bound, count in zip(self.bounds, counts):
                cumulative += count
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        self.name,
                        _render_labels(key, (("le", _format_value(bound)),)),
                        cumulative,
                    )
                )
            cumulative += counts[-1]
            lines.append(
                "%s_bucket%s %d"
                % (self.name, _render_labels(key, (("le", "+Inf"),)), cumulative)
            )
            lines.append(
                "%s_sum%s %s"
                % (self.name, _render_labels(key), _format_value(sums[key]))
            )
            lines.append(
                "%s_count%s %d" % (self.name, _render_labels(key), totals[key])
            )
        return lines

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            series = {key: list(self._counts[key]) for key in self._counts}
            sums = dict(self._sums)
            totals = dict(self._totals)
        return {
            "kind": self.kind,
            "help": self.help_text,
            "buckets": list(self.bounds),
            "values": [
                {
                    "labels": dict(key),
                    "counts": series[key],
                    "sum": sums[key],
                    "count": totals[key],
                    "quantiles": self.quantiles(**dict(key)),
                }
                for key in sorted(series)
            ],
        }


class MetricsRegistry:
    """A named collection of instruments with unified exposition.

    Get-or-create (:meth:`counter`/:meth:`gauge`/:meth:`histogram`) is
    atomic: two threads asking for the same name always receive the same
    instrument, never two instruments racing for the slot.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.RLock()

    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                if type(existing) is not type(instrument) or (
                    existing.labelnames != instrument.labelnames
                ):
                    raise ValueError(
                        "metric %r already registered as %s%s"
                        % (instrument.name, existing.kind, list(existing.labelnames))
                    )
                return existing
            self._instruments[instrument.name] = instrument
            return instrument

    def adopt(self, other: "MetricsRegistry") -> int:
        """Register every instrument of ``other`` not already present here
        (same objects, totals preserved).  Returns how many were adopted.
        This is what keeps live handles visible across a default-registry
        swap."""
        adopted = 0
        with other._lock:
            instruments = dict(other._instruments)
        with self._lock:
            for name, instrument in instruments.items():
                if name not in self._instruments:
                    self._instruments[name] = instrument
                    adopted += 1
        return adopted

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, buckets, labelnames)
        )

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def to_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        with self._lock:
            instruments = dict(self._instruments)
        lines: List[str] = []
        for name in sorted(instruments):
            lines.extend(instruments[name].expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].as_dict() for name in sorted(instruments)}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return "MetricsRegistry(%d instruments)" % len(self._instruments)


#: The process-wide default registry.
_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (every layer's fallback)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry, adopt: bool = True) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    By default the new registry adopts the previous registry's
    instruments (same objects, totals preserved), so handles cached by
    long-lived layers are not stranded: they keep being exposed by the
    new default.  Pass ``adopt=False`` for a hermetic swap where the new
    registry starts empty (old handles then write into the previous
    registry only -- deliberate test isolation)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY
        if adopt and registry is not previous:
            registry.adopt(previous)
        _REGISTRY = registry
        return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None, adopt: bool = False):
    """Temporarily make ``registry`` (default: a fresh, empty one) the
    process-wide default; restores the previous default on exit.  The
    hermetic ``adopt=False`` is the default here because the scoped form
    exists for isolation."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry, adopt=adopt)
    try:
        yield registry
    finally:
        set_registry(previous, adopt=False)
