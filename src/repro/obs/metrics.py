"""A process-wide metrics registry with Prometheus and JSON exposition.

Three instrument kinds, in the Prometheus data model:

- :class:`Counter` -- monotonically increasing totals
  (``repro_searches_total``);
- :class:`Gauge` -- point-in-time values (``repro_buffer_hit_rate``);
- :class:`Histogram` -- fixed-bucket distributions
  (``repro_search_seconds``), exposed as the standard cumulative
  ``_bucket``/``_sum``/``_count`` series.

Instruments support a fixed set of label names declared at creation;
observations pass label *values* as keyword arguments and each distinct
label combination gets its own series.  Registration is idempotent:
asking the registry for an instrument that already exists returns it
(mismatched kind or labels raise), so any layer can declare the metrics
it needs without coordination.

:func:`get_registry` returns the process-wide default registry; services
accept an explicit registry for isolation (tests, multi-tenant).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: Default latency buckets, in seconds (tuned for an in-process engine).
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labelnames: Sequence[str], labels: Dict[str, Any]) -> LabelKey:
    if set(labels) != set(labelnames):
        raise ValueError(
            "expected labels %s, got %s" % (sorted(labelnames), sorted(labels))
        )
    return tuple((name, str(labels[name])) for name in labelnames)


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join('%s="%s"' % (name, _escape(value)) for name, value in pairs)
    return "{%s}" % body


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return "%d" % int(value)
    return repr(value)


class _Instrument:
    """Common shape: a name, help text and declared label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)

    def _key(self, labels: Dict[str, Any]) -> LabelKey:
        return _label_key(self.labelnames, labels)

    def expose(self) -> List[str]:
        raise NotImplementedError

    def as_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _header(self) -> List[str]:
        return [
            "# HELP %s %s" % (self.name, self.help_text),
            "# TYPE %s %s" % (self.name, self.kind),
        ]


class Counter(_Instrument):
    """A monotonically increasing total (per label combination)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % amount)
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0)

    def expose(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(key), _format_value(self._values[key]))
            )
        if not self._values and not self.labelnames:
            lines.append("%s 0" % self.name)
        return lines

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help_text,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0)

    def expose(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(key), _format_value(self._values[key]))
            )
        if not self._values and not self.labelnames:
            lines.append("%s 0" % self.name)
        return lines

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help_text,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class Histogram(_Instrument):
    """A fixed-bucket distribution (cumulative buckets, Prometheus
    style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # per label key: [per-bound counts..., +Inf count], sum, count
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.bounds) + 1))
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        return self._totals.get(self._key(labels), 0)

    def sum(self, **labels: Any) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def expose(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._counts):
            counts = self._counts[key]
            cumulative = 0
            for bound, count in zip(self.bounds, counts):
                cumulative += count
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        self.name,
                        _render_labels(key, (("le", _format_value(bound)),)),
                        cumulative,
                    )
                )
            cumulative += counts[-1]
            lines.append(
                "%s_bucket%s %d"
                % (self.name, _render_labels(key, (("le", "+Inf"),)), cumulative)
            )
            lines.append(
                "%s_sum%s %s"
                % (self.name, _render_labels(key), _format_value(self._sums[key]))
            )
            lines.append(
                "%s_count%s %d" % (self.name, _render_labels(key), self._totals[key])
            )
        return lines

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help_text,
            "buckets": list(self.bounds),
            "values": [
                {
                    "labels": dict(key),
                    "counts": list(self._counts[key]),
                    "sum": self._sums[key],
                    "count": self._totals[key],
                }
                for key in sorted(self._counts)
            ],
        }


class MetricsRegistry:
    """A named collection of instruments with unified exposition."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, instrument: _Instrument) -> _Instrument:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if type(existing) is not type(instrument) or (
                existing.labelnames != instrument.labelnames
            ):
                raise ValueError(
                    "metric %r already registered as %s%s"
                    % (instrument.name, existing.kind, list(existing.labelnames))
                )
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, buckets, labelnames)
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def to_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for name in self.names():
            lines.extend(self._instruments[name].expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Any]:
        return {name: self._instruments[name].as_dict() for name in self.names()}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return "MetricsRegistry(%d instruments)" % len(self._instruments)


#: The process-wide default registry.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (every layer's fallback)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
