"""The slow-query log: a bounded ring of searches that crossed a latency
threshold.

Aggregates (the latency histogram) tell you the tail exists; the slow log
tells you *which queries* are in it.  :class:`DirectoryService` records
every search here; entries past the threshold are kept (newest last, the
ring drops the oldest) with the query text, latency, page I/O and cache
disposition -- enough to re-run the offender under EXPLAIN ``--analyze``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["SlowQueryLog", "SlowQueryRecord"]


class SlowQueryRecord:
    """One over-threshold search.

    ``retries`` and ``warnings`` carry the federated degradation story
    (remote attempts beyond the first; stale/replica/partial notes) --
    zero/empty for ordinary local searches, and omitted from
    :meth:`as_dict` in that case so existing consumers see no change.
    ``trace_id`` (set when the service runs under a live tracer) joins a
    slow-log hit to its sampled span tree in the ``/traces`` export; it
    is likewise omitted when absent.
    """

    __slots__ = (
        "query_text", "elapsed", "io_total", "cached", "result_size",
        "retries", "warnings", "trace_id", "qerror",
    )

    def __init__(
        self,
        query_text: str,
        elapsed: float,
        io_total: int,
        cached: bool,
        result_size: int,
        retries: int = 0,
        warnings: Tuple[str, ...] = (),
        trace_id: Optional[str] = None,
        qerror: Optional[float] = None,
    ):
        self.query_text = query_text
        self.elapsed = elapsed
        self.io_total = io_total
        self.cached = cached
        self.result_size = result_size
        self.retries = retries
        self.warnings = tuple(warnings)
        self.trace_id = trace_id
        #: Planner Q-error of the run (None when the search bypassed the
        #: planner: cache hits, federated fan-outs, planner="none").  A
        #: slow query with a high Q-error is a *mis-planned* query --
        #: re-run it under ``repro plan`` / EXPLAIN ``--analyze`` for the
        #: routed rewrite hint.
        self.qerror = qerror

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "query": self.query_text,
            "elapsed_s": self.elapsed,
            "io_total": self.io_total,
            "cached": self.cached,
            "result_size": self.result_size,
        }
        if self.retries:
            payload["retries"] = self.retries
        if self.warnings:
            payload["warnings"] = list(self.warnings)
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.qerror is not None:
            payload["qerror"] = self.qerror
        return payload

    def __repr__(self) -> str:
        return "SlowQueryRecord(%r, %.3fms, io=%d)" % (
            self.query_text,
            self.elapsed * 1e3,
            self.io_total,
        )


class SlowQueryLog:
    """Record searches slower than ``threshold_seconds`` (None disables).

    Safe under concurrent recording: the ring append and the ``total``
    increment happen atomically, so the invariant ``total >= len(log)``
    (with equality until the ring wraps) holds under any interleaving.
    """

    def __init__(self, threshold_seconds: Optional[float] = None, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        self._records: Deque[SlowQueryRecord] = deque(maxlen=capacity)
        #: Total over-threshold searches ever seen (the ring may have
        #: dropped some).
        self.total = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_seconds is not None

    def record(
        self,
        query_text: str,
        elapsed: float,
        io_total: int = 0,
        cached: bool = False,
        result_size: int = 0,
        retries: int = 0,
        warnings: Tuple[str, ...] = (),
        trace_id: Optional[str] = None,
        qerror: Optional[float] = None,
    ) -> Optional[SlowQueryRecord]:
        """Log the search if it crossed the threshold; returns the record
        (or None when under threshold / disabled)."""
        if self.threshold_seconds is None or elapsed < self.threshold_seconds:
            return None
        record = SlowQueryRecord(
            query_text, elapsed, io_total, cached, result_size,
            retries=retries, warnings=warnings, trace_id=trace_id,
            qerror=qerror,
        )
        with self._lock:
            self._records.append(record)
            self.total += 1
        return record

    def records(self) -> List[SlowQueryRecord]:
        """The retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [record.as_dict() for record in self.records()]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self):
        return iter(self.records())

    def __repr__(self) -> str:
        return "SlowQueryLog(threshold=%s, %d retained, %d total)" % (
            self.threshold_seconds,
            len(self._records),
            self.total,
        )
