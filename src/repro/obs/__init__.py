"""Observability: span tracing, unified metrics, benchmark telemetry.

The paper proves per-operator I/O bounds; this package makes them
*measurable* in a running system, end to end:

- :mod:`repro.obs.stats` -- the snapshot/delta protocol every counter
  block (:class:`~repro.storage.pager.IOStats`,
  :class:`~repro.cache.stats.CacheStats`) implements;
- :mod:`repro.obs.trace` -- hierarchical spans with wall time and exact
  per-operator page-I/O attribution (no-op and allocation-free when
  disabled, which is the default);
- :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges and fixed-bucket histograms with Prometheus text and JSON
  exposition;
- :mod:`repro.obs.slowlog` -- the bounded slow-query log;
- :mod:`repro.obs.telemetry` -- the ``BENCH_<experiment>.json`` emitter
  behind the benchmark suite, plus the bench-regression gate
  (:func:`~repro.obs.telemetry.compare_bench`);
- :mod:`repro.obs.log` -- JSON-lines structured event logging with
  trace/span correlation (no-op by default, like the tracer);
- :mod:`repro.obs.budget` -- per-query resource budgets enforced at
  operator boundaries;
- :mod:`repro.obs.httpd` -- the stdlib HTTP admin endpoint
  (``/metrics``, ``/healthz``, ``/slowlog``, ``/traces``, plus the
  workload plane's ``/digest``, ``/heatmap``, ``/history``,
  ``/alerts``);
- :mod:`repro.obs.digest` -- the per-query-shape digest table
  (pg_stat_statements style, keyed by the cache's normal-form
  fingerprint);
- :mod:`repro.obs.heatmap` -- EWMA-decayed load accounting over
  reversed-DN subtree prefixes (the shard-placement signal);
- :mod:`repro.obs.history` -- a bounded ring of registry snapshots with
  windowed rates/deltas on an injectable clock;
- :mod:`repro.obs.alerts` -- declarative threshold/rate/ratio alert
  rules with firing/resolved transitions over the history.
"""

from .alerts import (
    AlertEngine,
    AlertRule,
    RateRule,
    RatioRule,
    ThresholdRule,
    default_rules,
    parse_rule,
)
from .budget import BudgetExceeded, BudgetTracker, QueryBudget
from .digest import QueryDigest, QueryDigestTable
from .heatmap import SubtreeHeatMap
from .history import MetricHistory, MetricSample
from .httpd import AdminServer
from .log import CapturingLogger, EventLogger, NULL_LOGGER, NullLogger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .stats import StatCounters
from .telemetry import (
    BenchEmitter,
    compare_bench,
    diff_bench_dirs,
    load_bench,
    validate_bench,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceSampler, Tracer

__all__ = [
    "AdminServer",
    "AlertEngine",
    "AlertRule",
    "BenchEmitter",
    "BudgetExceeded",
    "BudgetTracker",
    "CapturingLogger",
    "Counter",
    "EventLogger",
    "Gauge",
    "Histogram",
    "MetricHistory",
    "MetricSample",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_TRACER",
    "NullLogger",
    "NullTracer",
    "QueryBudget",
    "QueryDigest",
    "QueryDigestTable",
    "RateRule",
    "RatioRule",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "StatCounters",
    "SubtreeHeatMap",
    "ThresholdRule",
    "TraceSampler",
    "Tracer",
    "compare_bench",
    "default_rules",
    "diff_bench_dirs",
    "get_registry",
    "load_bench",
    "parse_rule",
    "set_registry",
    "validate_bench",
]
