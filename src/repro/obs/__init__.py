"""Observability: span tracing, unified metrics, benchmark telemetry.

The paper proves per-operator I/O bounds; this package makes them
*measurable* in a running system, end to end:

- :mod:`repro.obs.stats` -- the snapshot/delta protocol every counter
  block (:class:`~repro.storage.pager.IOStats`,
  :class:`~repro.cache.stats.CacheStats`) implements;
- :mod:`repro.obs.trace` -- hierarchical spans with wall time and exact
  per-operator page-I/O attribution (no-op and allocation-free when
  disabled, which is the default);
- :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges and fixed-bucket histograms with Prometheus text and JSON
  exposition;
- :mod:`repro.obs.slowlog` -- the bounded slow-query log;
- :mod:`repro.obs.telemetry` -- the ``BENCH_<experiment>.json`` emitter
  behind the benchmark suite.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .stats import StatCounters
from .telemetry import BenchEmitter, load_bench, validate_bench
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BenchEmitter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "StatCounters",
    "Tracer",
    "get_registry",
    "load_bench",
    "set_registry",
    "validate_bench",
]
