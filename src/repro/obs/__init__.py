"""Observability: span tracing, unified metrics, benchmark telemetry.

The paper proves per-operator I/O bounds; this package makes them
*measurable* in a running system, end to end:

- :mod:`repro.obs.stats` -- the snapshot/delta protocol every counter
  block (:class:`~repro.storage.pager.IOStats`,
  :class:`~repro.cache.stats.CacheStats`) implements;
- :mod:`repro.obs.trace` -- hierarchical spans with wall time and exact
  per-operator page-I/O attribution (no-op and allocation-free when
  disabled, which is the default);
- :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges and fixed-bucket histograms with Prometheus text and JSON
  exposition;
- :mod:`repro.obs.slowlog` -- the bounded slow-query log;
- :mod:`repro.obs.telemetry` -- the ``BENCH_<experiment>.json`` emitter
  behind the benchmark suite, plus the bench-regression gate
  (:func:`~repro.obs.telemetry.compare_bench`);
- :mod:`repro.obs.log` -- JSON-lines structured event logging with
  trace/span correlation (no-op by default, like the tracer);
- :mod:`repro.obs.budget` -- per-query resource budgets enforced at
  operator boundaries;
- :mod:`repro.obs.httpd` -- the stdlib HTTP admin endpoint
  (``/metrics``, ``/healthz``, ``/slowlog``, ``/traces``).
"""

from .budget import BudgetExceeded, BudgetTracker, QueryBudget
from .httpd import AdminServer
from .log import CapturingLogger, EventLogger, NULL_LOGGER, NullLogger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .stats import StatCounters
from .telemetry import (
    BenchEmitter,
    compare_bench,
    diff_bench_dirs,
    load_bench,
    validate_bench,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceSampler, Tracer

__all__ = [
    "AdminServer",
    "BenchEmitter",
    "BudgetExceeded",
    "BudgetTracker",
    "CapturingLogger",
    "Counter",
    "EventLogger",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_TRACER",
    "NullLogger",
    "NullTracer",
    "QueryBudget",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "StatCounters",
    "TraceSampler",
    "Tracer",
    "compare_bench",
    "diff_bench_dirs",
    "get_registry",
    "load_bench",
    "set_registry",
    "validate_bench",
]
