"""A bounded worker pool with deterministic ordered gather.

The federation's scatter-gather (remote atomic sub-queries fanned out to
their owning servers) and the engine's optional parallel evaluation of
independent boolean subtrees both run through one :class:`WorkerPool`.
The pool's contract is deliberately narrow:

- :meth:`WorkerPool.map_ordered` runs one callable per item and returns
  the results **in item order** -- the gather barrier.  Whatever the
  threads did in between, the caller observes the same deterministic
  sequence it would have seen running the items one by one.
- ``max_workers=1`` (the default everywhere) executes inline on the
  calling thread: no executor, no threads, no queue -- the historical
  sequential behaviour, bit for bit.
- A task that itself calls :meth:`map_ordered` (a parallel boolean
  subtree whose atomic leaf scatter-gathers again) runs the nested batch
  inline on its own worker thread, so a bounded pool can never deadlock
  waiting for itself.
- If any task raises, the gather still waits for **every** task to
  finish before re-raising the first error (in item order) -- no task is
  left running against shared state after the barrier returns.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

__all__ = ["WorkerPool"]


class WorkerPool:
    """A lazily started, bounded thread pool (``max_workers=1`` = inline)."""

    def __init__(self, max_workers: int = 1, name: str = "repro-exec"):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.name = name
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._tls = threading.local()
        #: Batches that actually fanned out to threads (inline runs do not
        #: count) -- the zero-overhead checks assert this stays 0.
        self.parallel_batches = 0

    @property
    def parallel(self) -> bool:
        """Whether this pool can run tasks concurrently at all."""
        return self.max_workers > 1

    @property
    def in_task(self) -> bool:
        """Whether the calling thread is currently executing a pool task."""
        return getattr(self._tls, "in_task", False)

    def _executor_or_create(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self.name,
                )
            return self._executor

    def map_ordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> List[Any]:
        """Run ``fn`` over ``items``; return results in item order.

        Inline (and therefore in exactly the sequential order) when the
        pool is single-worker, when there is at most one item, or when
        called from inside another task of this pool."""
        work: Sequence[Any] = list(items)
        if not self.parallel or len(work) <= 1 or self.in_task:
            return [fn(item) for item in work]
        executor = self._executor_or_create()
        with self._lock:
            self.parallel_batches += 1
        futures = [executor.submit(self._run_task, fn, item) for item in work]
        results: List[Any] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # gather everything, then re-raise
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def _run_task(self, fn: Callable[[Any], Any], item: Any) -> Any:
        self._tls.in_task = True
        try:
            return fn(item)
        finally:
            self._tls.in_task = False

    def close(self) -> None:
        """Shut the executor down (idempotent; inline pools are no-ops)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return "WorkerPool(max_workers=%d%s)" % (
            self.max_workers,
            "" if self._executor is None else ", started",
        )
