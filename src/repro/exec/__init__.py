"""Bounded worker-pool execution for the federation and the engine.

One :class:`WorkerPool` per federation (or engine) bounds the concurrency;
``max_workers=1`` -- the default everywhere -- is the inline sequential
path with zero threading overhead.  See docs/ARCHITECTURE.md, "Concurrency
model", for what is shared, what is per-worker and where the gather
barrier sits.
"""

from .pool import WorkerPool

__all__ = ["WorkerPool"]
