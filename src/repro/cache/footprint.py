"""Static read footprints: which DN ranges can a query's result depend on?

The system invariant (docs/ARCHITECTURE.md) is that every subtree is one
contiguous range of the reverse-dn key order.  A query plan therefore has
a finite read set: each atomic leaf reads the contiguous range of its
``(base, scope)``, and every composite operator combines only the entries
its operands produced.  A :class:`Footprint` describes that read set as a
set of ranges, each either one dn (a *point*) or a whole subtree, and
answers the only question invalidation needs: *can an update at dn ``u``
change this query's result?*

Soundness argument, by induction over the AST:

- an entry at ``u`` can match ``(base ? scope ? filter)`` only if ``u``
  lies in the scope range of ``base`` -- a point for ``base`` scope, the
  base's subtree for ``one``/``sub``;
- every composite operator (boolean, hierarchical, aggregate,
  embedded-reference) is a function of its operands' result sets and the
  attribute values of entries *in* those sets, and each operand's result
  is contained in its own footprint -- so the union of operand footprints
  already covers every influencing dn.

On top of that sufficient union we widen conservatively, mirroring what
the operator algorithms physically traverse: ancestor-directed operators
(``p``/``a``/``ac``) add the ancestor chains of their ranges,
descendant-directed ones (``c``/``d``/``dc``) close points downward into
subtrees, aggregate variants take both closures, and the L3
embedded-reference operators -- whose dn-valued attributes may point at
arbitrary naming contexts -- widen to everything.  Widening never loses
precision soundness (it only invalidates more) and keeps footprints tiny:
``O(|Q| * depth)`` ranges.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple, Union

from ..model.dn import DN, ROOT_DN
from ..query.ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    QueryError,
    Scope,
    SimpleAggSelect,
)

__all__ = ["Footprint", "query_footprint"]

#: One range: (root dn, whole-subtree?).  A point covers exactly its dn; a
#: subtree range covers the dn and every descendant (one contiguous key
#: range in the master order).
Range = Tuple[DN, bool]


class Footprint:
    """An immutable set of DN ranges (points and subtrees)."""

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[Range] = ()):
        self._ranges = _prune(ranges)

    # -- construction -------------------------------------------------------

    @classmethod
    def point(cls, dn: Union[DN, str]) -> "Footprint":
        return cls([(_as_dn(dn), False)])

    @classmethod
    def subtree(cls, dn: Union[DN, str]) -> "Footprint":
        return cls([(_as_dn(dn), True)])

    @classmethod
    def everything(cls) -> "Footprint":
        """The whole namespace (the null dn's subtree)."""
        return cls([(ROOT_DN, True)])

    def union(self, other: "Footprint") -> "Footprint":
        return Footprint(self._ranges | other._ranges)

    __or__ = union

    # -- closures ----------------------------------------------------------

    def ancestor_closure(self) -> "Footprint":
        """Add the proper-ancestor chain of every range root (each ancestor
        is a single dn, so the closure adds only points)."""
        ranges = set(self._ranges)
        for dn, _subtree in self._ranges:
            for ancestor in dn.ancestors():
                ranges.add((ancestor, False))
        return Footprint(ranges)

    def descendant_closure(self) -> "Footprint":
        """Close every point downward into its whole subtree."""
        return Footprint((dn, True) for dn, _subtree in self._ranges)

    # -- the invalidation question ------------------------------------------

    def covers(self, dn: Union[DN, str]) -> bool:
        """Can an update of the single entry at ``dn`` be read by this
        footprint?"""
        dn = _as_dn(dn)
        for root, subtree in self._ranges:
            if subtree:
                if root.is_prefix_of(dn):
                    return True
            elif root == dn:
                return True
        return False

    def intersects_subtree(self, dn: Union[DN, str]) -> bool:
        """Does this footprint intersect the whole subtree at ``dn`` (the
        region a recursive delete updates)?"""
        dn = _as_dn(dn)
        for root, subtree in self._ranges:
            if dn.is_prefix_of(root):
                return True
            if subtree and root.is_prefix_of(dn):
                return True
        return False

    def touches(self, dn: Union[DN, str], subtree: bool = False) -> bool:
        """Dispatch on the shape of the updated region."""
        return self.intersects_subtree(dn) if subtree else self.covers(dn)

    # -- introspection -----------------------------------------------------

    @property
    def ranges(self) -> FrozenSet[Range]:
        return self._ranges

    def __len__(self) -> int:
        return len(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Footprint):
            return NotImplemented
        return self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(self._ranges)

    def __repr__(self) -> str:
        parts = sorted(
            ("%s%s" % (str(dn) or "(root)", "/**" if subtree else ""))
            for dn, subtree in self._ranges
        )
        return "Footprint{%s}" % ", ".join(parts)


def _prune(ranges: Iterable[Range]) -> FrozenSet[Range]:
    """Drop ranges subsumed by a subtree range already present."""
    ranges = set(ranges)
    subtree_roots = {dn for dn, subtree in ranges if subtree}
    kept = set()
    for dn, subtree in ranges:
        if subtree:
            subsumed = any(
                root != dn and root.is_prefix_of(dn) for root in subtree_roots
            )
        else:
            subsumed = any(root.is_prefix_of(dn) for root in subtree_roots)
        if not subsumed:
            kept.add((dn, subtree))
    return frozenset(kept)


def _as_dn(dn: Union[DN, str]) -> DN:
    return DN.parse(dn) if isinstance(dn, str) else dn


def query_footprint(query: Query) -> Footprint:
    """The static read footprint of ``query`` (see module docstring)."""
    if isinstance(query, AtomicQuery):
        if query.scope == Scope.BASE:
            return Footprint.point(query.base)
        # one/sub: conservatively the base's whole contiguous subtree range.
        return Footprint.subtree(query.base)

    if isinstance(query, (And, Or, Diff)):
        return query_footprint(query.left) | query_footprint(query.right)

    if isinstance(query, HierarchySelect):
        combined = query_footprint(query.first) | query_footprint(query.second)
        if query.third is not None:
            combined = combined | query_footprint(query.third)
        if query.op in ("p", "a", "ac"):
            combined = combined.ancestor_closure()
        if query.op in ("c", "d", "dc"):
            combined = combined.descendant_closure()
        if query.agg is not None:
            combined = combined.ancestor_closure().descendant_closure()
        return combined

    if isinstance(query, SimpleAggSelect):
        # (g Q AggSel): aggregates only over the operand entries' own
        # attributes ($1), so the operand's footprint is the read set.
        return query_footprint(query.operand)

    if isinstance(query, EmbeddedRef):
        # vd/dv: dn-valued attributes may reference any naming context, so
        # the read set conservatively widens to the whole namespace.
        return Footprint.everything()

    raise QueryError("unknown query node %r" % (query,))
