"""Cache observability: counters plus saved-I/O accounting.

Mirrors the style of :class:`repro.storage.pager.IOStats`: plain integer
counters with snapshot/delta helpers, so benchmarks can bracket a phase
and report exactly what the cache did for it.
"""

from __future__ import annotations

from ..obs.stats import StatCounters

__all__ = ["CacheStats"]


class CacheStats(StatCounters):
    """Counters of cache activity.

    ``saved_logical_io`` accumulates, per hit, the logical page I/O the
    original (missing) evaluation cost -- the work the cache avoided.

    ``snapshot()``/``since()``/``delta()``/``as_dict()`` come from the
    shared :class:`~repro.obs.stats.StatCounters` protocol.
    """

    __slots__ = (
        "hits",
        "misses",
        "insertions",
        "evictions",
        "invalidations",
        "patched",
        "rejected",
        "superset_hits",
        "saved_logical_io",
    )

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        insertions: int = 0,
        evictions: int = 0,
        invalidations: int = 0,
        patched: int = 0,
        rejected: int = 0,
        superset_hits: int = 0,
        saved_logical_io: int = 0,
    ):
        self.hits = hits
        self.misses = misses
        self.insertions = insertions
        self.evictions = evictions
        self.invalidations = invalidations
        #: Residents updated in place by incremental maintenance (the
        #: evictions that did not happen).
        self.patched = patched
        #: Results too large for the byte budget (never admitted).
        self.rejected = rejected
        #: Hits served by *containment*: the exact fingerprint missed but a
        #: resident covering subtree answered (counted in ``hits`` too).
        self.superset_hits = superset_hits
        self.saved_logical_io = saved_logical_io

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def __repr__(self) -> str:
        return (
            "CacheStats(hits=%d, misses=%d, evictions=%d, invalidations=%d, "
            "saved_io=%d)"
            % (
                self.hits,
                self.misses,
                self.evictions,
                self.invalidations,
                self.saved_logical_io,
            )
        )
