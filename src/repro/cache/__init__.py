"""Subtree-keyed semantic query cache with precise update-log invalidation.

Directory workloads are read-heavy and repetitive (white pages, QoS
policy lookup, call routing), yet each ``search`` re-runs the full
external-memory pipeline.  This package adds the missing layer:

- :mod:`~repro.cache.keys` -- canonical query fingerprints via the AST
  normalizer, so syntactically different but ACD-equivalent queries share
  one cache slot;
- :mod:`~repro.cache.footprint` -- static analysis of a query into the
  set of DN-subtree key ranges it can read.  The system invariant
  (reverse-dn order makes every subtree one contiguous range) makes this
  a finite description of a plan's read set;
- :mod:`~repro.cache.store` -- a bounded result store with a byte budget
  and cost-aware eviction (GreedyDual-Size over saved logical page I/Os,
  so expensive aggregates outlive cheap lookups);
- :mod:`~repro.cache.invalidation` -- subscribes a cache to an
  :class:`~repro.storage.maintenance.UpdatableDirectory`'s update log:
  the baseline invalidator evicts exactly the entries whose footprint
  intersects the updated dn's range, the incremental maintainer patches
  locally-decidable results in place; everything else survives
  compaction;
- :mod:`~repro.cache.stats` -- hit/miss/eviction/invalidation counters
  and saved-I/O accounting.
"""

from .footprint import Footprint, query_footprint
from .invalidation import IncrementalCacheMaintainer, UpdateLogInvalidator
from .keys import atomic_fingerprint, canonical_text, fingerprint
from .stats import CacheStats
from .store import CachedResult, QueryCache

__all__ = [
    "CacheStats",
    "CachedResult",
    "Footprint",
    "IncrementalCacheMaintainer",
    "QueryCache",
    "UpdateLogInvalidator",
    "atomic_fingerprint",
    "canonical_text",
    "fingerprint",
    "query_footprint",
]
