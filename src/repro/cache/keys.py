"""Canonical query fingerprints.

Two queries that are equal modulo the boolean set identities
(associativity, commutativity, idempotence -- everything
:func:`repro.query.normalize.normalize` canonicalises) denote the same
result set, so they must share one cache slot.  The fingerprint is the
rendered text of the normalised AST, hashed to a fixed-width key.

The hash is for key compactness only; collisions would serve a wrong
result, so we use a cryptographic digest (SHA-1 over the canonical text),
whose collision probability is negligible at any realistic cache size.
"""

from __future__ import annotations

import hashlib
from typing import Union

from ..query.ast import AtomicQuery, Query
from ..query.normalize import normalize
from ..query.parser import parse_query

__all__ = ["canonical_text", "fingerprint", "atomic_fingerprint"]


def canonical_text(query: Union[Query, str]) -> str:
    """The rendered normal form: identical for ACD-equivalent queries."""
    if isinstance(query, str):
        query = parse_query(query)
    return str(normalize(query))


def fingerprint(query: Union[Query, str]) -> str:
    """A fixed-width cache key for ``query``."""
    text = canonical_text(query)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def atomic_fingerprint(query: AtomicQuery) -> str:
    """Fingerprint of one atomic leaf (the unit the federation ships)."""
    if not isinstance(query, AtomicQuery):
        raise TypeError("atomic_fingerprint wants an AtomicQuery, got %r" % (query,))
    return fingerprint(query)
