"""Precise invalidation from the update log.

The :class:`~repro.storage.maintenance.UpdatableDirectory` publishes every
validated mutation to its update listeners as ``(kind, dn, subtree)``:
``kind`` is ``"add"``/``"delete"``/``"modify"``, and ``subtree`` is True
only for recursive deletes (the updated region is the dn's whole
subtree).  :class:`UpdateLogInvalidator` forwards each event to a
:class:`~repro.cache.store.QueryCache`, which evicts exactly the cached
results whose footprint touches the updated region.

Because invalidation happens at *log-append* time -- not at compaction --
a cached result that survives a burst of updates is still valid after the
log folds into a fresh master run: compaction changes the physical image,
never the logical content the log already described.  Nothing is flushed
wholesale.
"""

from __future__ import annotations

from typing import Union

from ..model.dn import DN
from ..storage.maintenance import UpdatableDirectory
from .store import QueryCache

__all__ = ["UpdateLogInvalidator"]


class UpdateLogInvalidator:
    """Subscribes a query cache to a directory's update log."""

    def __init__(self, directory: UpdatableDirectory, cache: QueryCache):
        self.directory = directory
        self.cache = cache
        directory.add_update_listener(self._on_update)

    def _on_update(self, kind: str, dn: Union[DN, str], subtree: bool) -> None:
        self.cache.invalidate(dn, subtree=subtree)

    def detach(self) -> None:
        """Stop receiving updates (idempotent)."""
        self.directory.remove_update_listener(self._on_update)

    def __repr__(self) -> str:
        return "UpdateLogInvalidator(%r -> %r)" % (self.directory, self.cache)
