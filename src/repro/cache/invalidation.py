"""Cache maintenance from the update log: evict precisely, or patch.

The :class:`~repro.storage.maintenance.UpdatableDirectory` publishes every
validated mutation to its update listeners as ``(kind, dn, subtree)``:
``kind`` is ``"add"``/``"delete"``/``"modify"``, and ``subtree`` is True
only for recursive deletes (the updated region is the dn's whole
subtree).  Two maintenance policies consume that stream:

- :class:`UpdateLogInvalidator` (the baseline) forwards each event to a
  :class:`~repro.cache.store.QueryCache`, which evicts exactly the cached
  results whose footprint touches the updated region;
- :class:`IncrementalCacheMaintainer` subscribes to the richer
  change-record stream and *patches* touched results in place whenever
  membership is locally decidable: an L0 query (atomic + boolean) admits
  or rejects one entry by re-evaluating ``scope_admits`` and the filter
  against the record's post-image, so an add inserts one row (at its
  reverse-dn position, preserving run order), a delete removes rows, and
  a modify replaces one -- no re-evaluation, no eviction.  Results whose
  query is unknown or not locally decidable (hierarchy, aggregates,
  embedded references) fall back to precise eviction; so does a patched
  result that outgrows the byte budget.

Because maintenance happens at *log-append* time -- not at compaction --
a cached result that survives a burst of updates is still valid after the
log folds into a fresh master run: compaction changes the physical image,
never the logical content the log already described.  Nothing is flushed
wholesale.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Tuple, Union

from ..model.dn import DN
from ..model.entry import Entry
from ..obs.metrics import get_registry
from ..query.ast import And, AtomicQuery, Diff, Or, Query
from ..storage.maintenance import UpdatableDirectory
from ..txn.records import ChangeRecord
from .store import CachedResult, QueryCache

__all__ = ["IncrementalCacheMaintainer", "UpdateLogInvalidator"]


class UpdateLogInvalidator:
    """Subscribes a query cache to a directory's update log."""

    def __init__(self, directory: UpdatableDirectory, cache: QueryCache):
        self.directory = directory
        self.cache = cache
        directory.add_update_listener(self._on_update)

    def _on_update(self, kind: str, dn: Union[DN, str], subtree: bool) -> None:
        self.cache.invalidate(dn, subtree=subtree)

    def detach(self) -> None:
        """Stop receiving updates (idempotent)."""
        self.directory.remove_update_listener(self._on_update)

    def __repr__(self) -> str:
        return "UpdateLogInvalidator(%r -> %r)" % (self.directory, self.cache)


class IncrementalCacheMaintainer:
    """Applies change records to cached sublists as row-level deltas.

    The decision rule, per touched resident:

    1. no parsed query attached, or the query is not L0 -> **evict**
       (membership cannot be re-decided from one entry);
    2. the delta provably leaves the result unchanged (an add/modify the
       query rejects and no resident row removed) -> **keep** untouched;
    3. otherwise -> **patch**: apply the one-row delta in place
       (falling back to eviction if the patched result no longer fits).
    """

    def __init__(
        self,
        directory: UpdatableDirectory,
        cache: QueryCache,
        metrics=None,
    ):
        self.directory = directory
        self.cache = cache
        self.schema = directory.schema
        registry = metrics if metrics is not None else get_registry()
        self._m_actions = registry.counter(
            "repro_cache_maintenance_total",
            "Incremental cache maintenance outcomes per touched resident",
            labelnames=("action",),
        )
        directory.add_record_listener(self._on_record)

    def detach(self) -> None:
        """Stop receiving records (idempotent)."""
        self.directory.remove_record_listener(self._on_record)

    # -- record application --------------------------------------------------

    def _on_record(self, record: ChangeRecord) -> None:
        for cached in self.cache:  # iteration snapshots under the lock
            if not cached.footprint.touches(record.dn, subtree=record.subtree):
                continue
            action, rows = self._delta(cached, record)
            if action == "evict":
                self.cache.drop(cached.key)
                self._m_actions.inc(action="evicted")
            elif action == "keep":
                self._m_actions.inc(action="kept")
            else:
                if self.cache.patch(cached.key, rows) is not None:
                    self._m_actions.inc(action="patched")
                else:
                    self._m_actions.inc(action="evicted")

    def _delta(
        self, cached: CachedResult, record: ChangeRecord
    ) -> Tuple[str, Optional[List[Entry]]]:
        query = cached.query
        if query is None or not _locally_decidable(query):
            return ("evict", None)
        rows = list(cached.entries)
        if record.kind == "delete":
            if record.subtree:
                kept = [e for e in rows if not record.dn.is_prefix_of(e.dn)]
            else:
                kept = [e for e in rows if e.dn != record.dn]
            if len(kept) == len(rows):
                return ("keep", None)
            return ("patch", kept)
        # add / modify: the record carries the post-image.
        admitted = _admits(query, record.entry, self.schema)
        kept = [e for e in rows if e.dn != record.dn]
        if admitted:
            keys = [e.dn.key() for e in kept]
            kept.insert(bisect_left(keys, record.entry.dn.key()), record.entry)
        elif len(kept) == len(rows):
            return ("keep", None)  # rejected and was not resident: no-op
        return ("patch", kept)

    def __repr__(self) -> str:
        return "IncrementalCacheMaintainer(%r -> %r)" % (
            self.directory,
            self.cache,
        )


def _locally_decidable(query: Query) -> bool:
    """True when per-entry membership is decidable without touching the
    store: every node is atomic or boolean (the L0 fragment)."""
    return all(
        isinstance(node, (AtomicQuery, And, Or, Diff)) for node in query.walk()
    )


def _admits(query: Query, entry: Entry, schema) -> bool:
    """Whether ``entry`` belongs to the result of an L0 ``query``
    (membership distributes over the boolean operators)."""
    from ..engine.atomic import scope_admits

    if isinstance(query, AtomicQuery):
        return scope_admits(query.base, query.scope, entry.dn) and query.filter.matches(
            entry, schema
        )
    if isinstance(query, And):
        return _admits(query.left, entry, schema) and _admits(query.right, entry, schema)
    if isinstance(query, Or):
        return _admits(query.left, entry, schema) or _admits(query.right, entry, schema)
    if isinstance(query, Diff):
        return _admits(query.left, entry, schema) and not _admits(
            query.right, entry, schema
        )
    raise TypeError("not an L0 query node: %r" % (query,))
