"""The bounded result store: byte budget, cost-aware eviction.

Cached results are wildly heterogeneous -- a white-pages point lookup
costs a handful of page reads, a hierarchical aggregate over a big
subtree costs thousands -- so plain LRU (which only knows recency) evicts
exactly the entries that are most expensive to recompute.  We use
**GreedyDual-Size** (Cao & Irani, USENIX 1997): each resident entry has a
priority ``H = L + cost / size`` where ``cost`` is the logical page I/O
the original evaluation spent (the work a future hit saves), ``size`` is
the entry's byte estimate, and ``L`` is a monotonically inflating floor
set to the priority of the last eviction.  A hit refreshes ``H`` against
the current ``L``, which is how recency re-enters; eviction removes the
minimum-``H`` entry.  GreedyDual-Size degenerates to LRU when all costs
and sizes are equal, and to cost-ordered eviction when recency is equal
-- precisely the "cost-aware LRU" blend wanted here.

Entries carry their :class:`~repro.cache.footprint.Footprint` and an
optional opaque *tag* (the federation tags remote sublists with the
owning server), so :meth:`QueryCache.invalidate` can evict precisely the
footprint-intersecting entries and :meth:`QueryCache.invalidate_tag` can
drop one origin wholesale.
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..model.entry import Entry
from ..query.ast import AtomicQuery, Scope
from .footprint import Footprint
from .stats import CacheStats

__all__ = ["CachedResult", "QueryCache"]


class CachedResult:
    """One cached query result (the pre-ACL entry list plus bookkeeping)."""

    __slots__ = (
        "key",
        "query_text",
        "entries",
        "footprint",
        "cost_io",
        "size_bytes",
        "tag",
        "query",
        "hits",
        "priority",
    )

    def __init__(
        self,
        key: str,
        query_text: str,
        entries: Sequence[Entry],
        footprint: Footprint,
        cost_io: int,
        tag: Optional[str] = None,
        query=None,
    ):
        self.key = key
        self.query_text = query_text
        self.entries: Tuple[Entry, ...] = tuple(entries)
        self.footprint = footprint
        #: Logical page I/O the original evaluation cost == saved per hit.
        self.cost_io = cost_io
        self.size_bytes = _approx_bytes(self.entries)
        self.tag = tag
        #: The parsed query AST, when the producer supplies it -- the
        #: incremental maintainer re-evaluates membership against it.
        self.query = query
        self.hits = 0
        self.priority = 0.0

    def __repr__(self) -> str:
        return "CachedResult(%s, %d entries, cost=%d, %dB)" % (
            self.query_text,
            len(self.entries),
            self.cost_io,
            self.size_bytes,
        )


class QueryCache:
    """A bounded map from fingerprint to :class:`CachedResult`.

    Thread-safe: lookups, admissions (including the GreedyDual-Size
    eviction loop and its floor/heap state) and invalidations run under
    one reentrant lock, which is also attached to :attr:`stats` so
    bracketed cache-stat snapshots are consistent.  Without the lock a
    concurrent ``put``/``put`` pair can double-count resident bytes and
    evict for ever, and ``get``/``invalidate`` can resurrect a heap entry
    for a removed key.
    """

    def __init__(
        self,
        byte_budget: int = 512 * 1024,
        stats: Optional[CacheStats] = None,
        log=None,
    ):
        if byte_budget < 1:
            raise ValueError("byte_budget must be positive")
        self.byte_budget = byte_budget
        #: Structured event logger (``cache.evict`` / ``cache.invalidate``
        #: at debug level); None/no-op by default.
        self.log = log
        self._lock = threading.RLock()
        self.stats = stats or CacheStats()
        self.stats.attach_lock(self._lock)
        self._entries: Dict[str, CachedResult] = {}
        self._bytes = 0
        #: Bumped by every write-driven mutation (invalidate / patch /
        #: drop / clear).  A reader captures it before evaluating and
        #: passes it to :meth:`put` as ``if_epoch``: if any invalidation
        #: ran in between, the result may predate the write and is not
        #: admitted (the stale result is in flight, not resident, so the
        #: invalidation itself cannot evict it).
        self._invalidation_epoch = 0
        # GreedyDual-Size state: the inflating floor and a lazy min-heap of
        # (priority, key) candidates (stale heap items are skipped).
        self._floor = 0.0
        self._heap: List[Tuple[float, str]] = []

    # -- lookups -----------------------------------------------------------

    def get(self, key: str) -> Optional[CachedResult]:
        """The cached result for ``key``, or None; counts hit/miss and
        refreshes the entry's eviction priority."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.saved_logical_io += entry.cost_io
            entry.hits += 1
            self._reprioritise(entry)
            return entry

    def find_superset(self, base, filter_text: str) -> Optional[CachedResult]:
        """A resident whose query provably *contains* ``(base ? sub ?
        filter)``: same filter, sub scope, base a proper ancestor of
        ``base``.  Subtree semantics make containment syntactic -- the
        wider subtree's matches restricted to ``subtree(base)`` are
        exactly the narrower query's result -- so the planner can serve
        the narrow query by filtering the resident's entries, no page I/O
        at all.  Picks the deepest (smallest) covering resident and
        accounts it as a hit."""
        with self._lock:
            best: Optional[CachedResult] = None
            for entry in self._entries.values():
                query = entry.query
                if not (
                    isinstance(query, AtomicQuery)
                    and query.scope == Scope.SUB
                    and str(query.filter) == filter_text
                    and query.base.is_prefix_of(base)
                    and query.base != base
                ):
                    continue
                if best is None or best.query.base.is_prefix_of(query.base):
                    best = entry
            if best is None:
                return None
            self.stats.hits += 1
            self.stats.superset_hits += 1
            self.stats.saved_logical_io += best.cost_io
            best.hits += 1
            self._reprioritise(best)
            return best

    def peek(self, key: str) -> Optional[CachedResult]:
        """Like :meth:`get` but without touching any accounting."""
        with self._lock:
            return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[CachedResult]:
        with self._lock:
            return iter(list(self._entries.values()))

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def invalidation_epoch(self) -> int:
        """Capture before evaluating; pass to :meth:`put` as ``if_epoch``."""
        with self._lock:
            return self._invalidation_epoch

    # -- admission ----------------------------------------------------------

    def put(
        self,
        key: str,
        query_text: str,
        entries: Sequence[Entry],
        footprint: Footprint,
        cost_io: int,
        tag: Optional[str] = None,
        query=None,
        if_epoch: Optional[int] = None,
    ) -> Optional[CachedResult]:
        """Admit a result; evicts minimum-priority residents to make room.
        Results larger than the whole budget are rejected (returns None).
        Passing the parsed ``query`` AST makes the entry eligible for
        in-place patching by the incremental maintainer.  ``if_epoch``
        (the :attr:`invalidation_epoch` captured before the evaluation)
        rejects the admission when any invalidation ran in between -- the
        result may predate a concurrent write and serving it would be a
        silent staleness hole."""
        entry = CachedResult(
            key, query_text, entries, footprint, cost_io, tag, query=query
        )
        with self._lock:
            if if_epoch is not None and if_epoch != self._invalidation_epoch:
                self.stats.rejected += 1
                return None
            if entry.size_bytes > self.byte_budget:
                self.stats.rejected += 1
                return None
            if key in self._entries:
                self._remove(key)
            while self._bytes + entry.size_bytes > self.byte_budget:
                self._evict_one()
            self._entries[key] = entry
            self._bytes += entry.size_bytes
            self._reprioritise(entry)
            self.stats.insertions += 1
            return entry

    # -- incremental maintenance --------------------------------------------

    def patch(self, key: str, entries: Sequence[Entry]) -> Optional[CachedResult]:
        """Replace a resident result's entry list in place (the delta was
        applied by the caller), re-account its bytes and keep it resident
        if it still fits; returns the patched result, or None if ``key``
        was not resident or the patched result no longer fits."""
        with self._lock:
            # A patch reflects a write: in-flight pre-write evaluations
            # must not overwrite the patched (newer) entry.
            self._invalidation_epoch += 1
            entry = self._entries.get(key)
            if entry is None:
                return None
            new_entries: Tuple[Entry, ...] = tuple(entries)
            new_bytes = _approx_bytes(new_entries)
            if self._bytes - entry.size_bytes + new_bytes > self.byte_budget:
                # Patching must not trigger an eviction storm against
                # innocent residents; a grown result that no longer fits
                # falls back to invalidation.
                self._remove(key)
                self.stats.invalidations += 1
                return None
            self._bytes += new_bytes - entry.size_bytes
            entry.entries = new_entries
            entry.size_bytes = new_bytes
            self._reprioritise(entry)
            self.stats.patched += 1
            if self.log is not None and self.log.enabled_for("debug"):
                self.log.debug(
                    "cache.patch", query=entry.query_text,
                    rows=len(new_entries), bytes=new_bytes,
                )
            return entry

    def drop(self, key: str) -> bool:
        """Invalidate one resident by key (the maintainer's precise
        fallback); returns whether it was resident."""
        with self._lock:
            self._invalidation_epoch += 1
            if key not in self._entries:
                return False
            self._remove(key)
            self.stats.invalidations += 1
            return True

    # -- invalidation --------------------------------------------------------

    def invalidate(self, dn, subtree: bool = False) -> int:
        """Evict exactly the entries whose footprint touches the updated
        region (one dn, or its whole subtree for recursive deletes).
        Returns how many were evicted."""
        with self._lock:
            self._invalidation_epoch += 1
            doomed = [
                entry.key
                for entry in self._entries.values()
                if entry.footprint.touches(dn, subtree=subtree)
            ]
            for key in doomed:
                self._remove(key)
            self.stats.invalidations += len(doomed)
            if doomed and self.log is not None and self.log.enabled_for("debug"):
                self.log.debug(
                    "cache.invalidate", dn=str(dn), subtree=subtree,
                    dropped=len(doomed),
                )
            return len(doomed)

    def invalidate_tag(self, tag: str) -> int:
        """Evict every entry carrying ``tag`` (e.g. one origin server)."""
        with self._lock:
            self._invalidation_epoch += 1
            doomed = [e.key for e in self._entries.values() if e.tag == tag]
            for key in doomed:
                self._remove(key)
            self.stats.invalidations += len(doomed)
            if doomed and self.log is not None and self.log.enabled_for("debug"):
                self.log.debug("cache.invalidate", tag=tag, dropped=len(doomed))
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            self._invalidation_epoch += 1
            count = len(self._entries)
            self._entries.clear()
            self._heap = []
            self._bytes = 0
            self.stats.invalidations += count
            return count

    # -- internals ---------------------------------------------------------

    def _reprioritise(self, entry: CachedResult) -> None:
        entry.priority = self._floor + entry.cost_io / max(entry.size_bytes, 1)
        heapq.heappush(self._heap, (entry.priority, entry.key))

    def _evict_one(self) -> None:
        while self._heap:
            priority, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry.priority != priority:
                continue  # stale heap item (entry refreshed or removed)
            self._remove(key)
            self._floor = priority
            self.stats.evictions += 1
            if self.log is not None and self.log.enabled_for("debug"):
                self.log.debug(
                    "cache.evict", query=entry.query_text,
                    priority=round(priority, 6), bytes=entry.size_bytes,
                )
            return
        raise RuntimeError("eviction requested from an empty cache")

    def _remove(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.size_bytes

    def __repr__(self) -> str:
        return "QueryCache(%d entries, %d/%d bytes, %r)" % (
            len(self._entries),
            self._bytes,
            self.byte_budget,
            self.stats,
        )


def _approx_bytes(entries: Sequence[Entry]) -> int:
    """A stable, platform-independent byte estimate of a result list:
    per entry a fixed overhead plus the text sizes of its dn and pairs."""
    total = 0
    for entry in entries:
        total += 64 + len(str(entry.dn))
        for attr, value in entry.pairs():
            total += len(attr) + len(str(value)) + 16
    return total
