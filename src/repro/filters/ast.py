"""Atomic filters (Section 4.1) and LDAP-style boolean filter combinations.

An entry ``r`` satisfies an atomic filter ``F`` (written ``r |= F``) if at
least one (attribute, value) pair of ``val(r)`` satisfies it.  The paper
gives three representative forms, which we implement together with their
obvious relatives:

- presence      ``a=*``
- comparison    ``a < v`` (and ``<=``, ``>``, ``>=``, ``=`` on ints)
- equality      ``a = v`` (typed: string, int or distinguishedName)
- substring     ``a = *v2*`` (wildcard patterns over strings)

The boolean combinations (:class:`FilterAnd`, :class:`FilterOr`,
:class:`FilterNot`) exist for the **LDAP baseline** of Section 8: in LDAP
only *filters* compose, under a single base and scope, whereas in L0 whole
*queries* compose.  The L0+ languages use only atomic filters at the leaves.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence

from ..model.dn import DN, DNSyntaxError
from ..model.entry import Entry
from ..model.schema import DirectorySchema
from ..obs.metrics import get_registry

__all__ = [
    "Filter",
    "Presence",
    "Equality",
    "Substring",
    "Comparison",
    "MatchAll",
    "FilterAnd",
    "FilterOr",
    "FilterNot",
    "FilterError",
]


class FilterError(ValueError):
    """Raised for ill-formed filters (bad operator, bad pattern)."""


class Filter:
    """Base class.  Subclasses implement :meth:`matches`."""

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s %s>" % (type(self).__name__, self)


class MatchAll(Filter):
    """The ``objectClass=*`` idiom: satisfied by every entry (every entry
    has at least one class, hence at least one objectClass value)."""

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        return True

    def __str__(self) -> str:
        return "objectClass=*"

    def __eq__(self, other):
        return isinstance(other, MatchAll)

    def __hash__(self):
        return hash("MatchAll")


class Presence(Filter):
    """``a=*`` -- some value exists for attribute ``a``."""

    def __init__(self, attribute: str):
        self.attribute = attribute

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        return entry.has(self.attribute)

    def __str__(self) -> str:
        return "%s=*" % self.attribute

    def __eq__(self, other):
        return isinstance(other, Presence) and other.attribute == self.attribute

    def __hash__(self):
        return hash(("Presence", self.attribute))


class Equality(Filter):
    """``a = v`` with no wildcards.

    Values are compared after string-normalisation for string attributes,
    numerically for ints, and structurally for DN-valued attributes, so the
    filter works uniformly whether or not a schema is supplied."""

    def __init__(self, attribute: str, value: Any):
        self.attribute = attribute
        self.value = value

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        target = self.value
        for value in entry.values(self.attribute):
            if _values_equal(value, target):
                return True
        return False

    def __str__(self) -> str:
        return "%s=%s" % (self.attribute, self.value)

    def __eq__(self, other):
        return (
            isinstance(other, Equality)
            and other.attribute == self.attribute
            and str(other.value) == str(self.value)
        )

    def __hash__(self):
        return hash(("Equality", self.attribute, str(self.value)))


class Substring(Filter):
    """Wildcard comparison over string values, e.g. ``commonName=*jag*``.

    The pattern is a sequence of literal segments separated by ``*``.  The
    paper's formal definition (``v = v1 v2 v3``) is the two-sided wildcard;
    we support arbitrary patterns like LDAP's substring filters."""

    def __init__(self, attribute: str, pattern: str):
        if "*" not in pattern:
            raise FilterError(
                "substring pattern %r has no wildcard; use Equality" % pattern
            )
        self.attribute = attribute
        self.pattern = pattern
        regex = "".join(
            ".*" if piece == "*" else re.escape(piece)
            for piece in re.split(r"(\*)", pattern)
        )
        self._regex = re.compile("^%s$" % regex)

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        if schema is not None and schema.has_attribute(self.attribute):
            if schema.type_name_of(self.attribute) != "string":
                return False  # tau(a) = string is required (Section 4.1)
        for value in entry.values(self.attribute):
            if isinstance(value, str) and self._regex.match(value):
                return True
        return False

    def __str__(self) -> str:
        return "%s=%s" % (self.attribute, self.pattern)

    def __eq__(self, other):
        return (
            isinstance(other, Substring)
            and other.attribute == self.attribute
            and other.pattern == self.pattern
        )

    def __hash__(self):
        return hash(("Substring", self.attribute, self.pattern))


#: Comparison operators admitted on int attributes.
_COMPARATORS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Filter):
    """``a OP v`` for ``OP`` in ``< <= > >=`` over int attributes, e.g.
    ``SLARulePriority < 3``."""

    def __init__(self, attribute: str, op: str, value: int):
        if op not in _COMPARATORS:
            raise FilterError("unknown comparison operator %r" % op)
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise FilterError("comparison needs an int bound, got %r" % (value,))
        self.attribute = attribute
        self.op = op
        self.value = value

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        if schema is not None and schema.has_attribute(self.attribute):
            if schema.type_name_of(self.attribute) != "int":
                return False  # tau(a) = int is required (Section 4.1)
        compare = _COMPARATORS[self.op]
        for value in entry.values(self.attribute):
            if isinstance(value, int) and not isinstance(value, bool):
                if compare(value, self.value):
                    return True
        return False

    def __str__(self) -> str:
        return "%s%s%s" % (self.attribute, self.op, self.value)

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and (other.attribute, other.op, other.value)
            == (self.attribute, self.op, self.value)
        )

    def __hash__(self):
        return hash(("Comparison", self.attribute, self.op, self.value))


# -- boolean combinations (LDAP baseline only) --------------------------------


def _grouped(filter_: Filter) -> str:
    """Render an operand with exactly one level of parentheses."""
    text = str(filter_)
    if text.startswith("(") and text.endswith(")"):
        return text
    return "(%s)" % text


class FilterAnd(Filter):
    """LDAP ``(&(f1)(f2)...)``."""

    def __init__(self, operands: Sequence[Filter]):
        if not operands:
            raise FilterError("(&) needs at least one operand")
        self.operands: List[Filter] = list(operands)

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        return all(f.matches(entry, schema) for f in self.operands)

    def __str__(self) -> str:
        return "(&%s)" % "".join(_grouped(f) for f in self.operands)


class FilterOr(Filter):
    """LDAP ``(|(f1)(f2)...)``."""

    def __init__(self, operands: Sequence[Filter]):
        if not operands:
            raise FilterError("(|) needs at least one operand")
        self.operands: List[Filter] = list(operands)

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        return any(f.matches(entry, schema) for f in self.operands)

    def __str__(self) -> str:
        return "(|%s)" % "".join(_grouped(f) for f in self.operands)


class FilterNot(Filter):
    """LDAP ``(!(f))``.  Not part of L0's query-level operators (L0 has set
    difference instead), but part of the LDAP filter language."""

    def __init__(self, operand: Filter):
        self.operand = operand

    def matches(self, entry: Entry, schema: Optional[DirectorySchema] = None) -> bool:
        return not self.operand.matches(entry, schema)

    def __str__(self) -> str:
        return "(!%s)" % _grouped(self.operand)


def _count_eval_error(kind: str) -> None:
    """Count one silently-absorbed evaluation failure.  The registry is
    looked up per call (errors are rare) so a :func:`set_registry` swap
    is always observed."""
    get_registry().counter(
        "repro_filter_eval_errors_total",
        "Filter evaluations that failed to coerce a value and matched false",
        labelnames=("kind",),
    ).inc(kind=kind)


def _values_equal(value: Any, target: Any) -> bool:
    """Typed equality across the three built-in domains.

    A value that cannot be coerced to the comparison domain compares
    unequal -- but only the *expected* coercion failure is absorbed
    (``DNSyntaxError`` here, ``TypeError``/``ValueError`` for ints
    below), and each absorption is counted in
    ``repro_filter_eval_errors_total``; a bare ``except`` used to hide
    genuine bugs as empty results."""
    if isinstance(value, DN) or isinstance(target, DN):
        try:
            left = value if isinstance(value, DN) else DN.parse(str(value))
            right = target if isinstance(target, DN) else DN.parse(str(target))
        except DNSyntaxError:
            _count_eval_error("dn-coerce")
            return False
        return left == right
    if isinstance(value, int) and not isinstance(value, bool):
        try:
            return value == int(target)
        except (TypeError, ValueError):
            _count_eval_error("int-coerce")
            return False
    return str(value) == str(target)
