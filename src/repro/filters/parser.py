"""Parser for filter strings.

Two entry points:

- :func:`parse_atomic_filter` -- the atomic filters of Section 4.1, the only
  filters admitted at the leaves of L0--L3 queries:
  ``a=*``, ``a=v``, ``a=*v*`` (wildcards), ``a<v``, ``a<=v``, ``a>v``,
  ``a>=v``.
- :func:`parse_filter` -- the full LDAP filter language (RFC 2254 style),
  additionally allowing ``(&...)``, ``(|...)`` and ``(!...)`` combinations,
  used by the LDAP baseline.
"""

from __future__ import annotations

from typing import Tuple

from .ast import (
    Comparison,
    Equality,
    Filter,
    FilterAnd,
    FilterError,
    FilterNot,
    FilterOr,
    MatchAll,
    Presence,
    Substring,
)

__all__ = ["parse_filter", "parse_atomic_filter", "FilterParseError"]


class FilterParseError(FilterError):
    """Raised when a filter string cannot be parsed."""


def parse_atomic_filter(text: str) -> Filter:
    """Parse one atomic filter, with or without surrounding parentheses."""
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1].strip()
        if inner[:1] in "&|!":
            raise FilterParseError(
                "boolean filter %r is not atomic; L0 composes *queries*, "
                "not filters" % text
            )
        text = inner
    return _parse_simple(text)


def parse_filter(text: str) -> Filter:
    """Parse a full LDAP filter (atomic or boolean combination)."""
    text = text.strip()
    if not text:
        raise FilterParseError("empty filter")
    if not text.startswith("("):
        return _parse_simple(text)
    node, rest = _parse_parenthesised(text)
    if rest.strip():
        raise FilterParseError("trailing garbage after filter: %r" % rest)
    return node


def _parse_parenthesised(text: str) -> Tuple[Filter, str]:
    """Parse one ``(...)`` group at the head of ``text``; return the filter
    and the remaining text."""
    if not text.startswith("("):
        raise FilterParseError("expected '(' at %r" % text[:20])
    body, rest = _matching_paren(text)
    body = body.strip()
    if not body:
        raise FilterParseError("empty () group")
    head = body[0]
    if head == "&" or head == "|":
        operands = []
        remainder = body[1:].strip()
        while remainder:
            operand, remainder = _parse_parenthesised(remainder)
            operands.append(operand)
            remainder = remainder.strip()
        if head == "&":
            return FilterAnd(operands), rest
        return FilterOr(operands), rest
    if head == "!":
        operand, remainder = _parse_parenthesised(body[1:].strip())
        if remainder.strip():
            raise FilterParseError("(!) takes exactly one operand")
        return FilterNot(operand), rest
    return _parse_simple(body), rest


def _matching_paren(text: str) -> Tuple[str, str]:
    """Given text starting with '(', return (body, remainder-after-close)."""
    depth = 0
    for index, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return text[1:index], text[index + 1 :]
    raise FilterParseError("unbalanced parentheses in %r" % text)


def _parse_simple(text: str) -> Filter:
    """Parse an atomic ``attr OP value`` filter body."""
    text = text.strip()
    # Two-character operators first so 'a<=3' is not read as 'a<' '=3'.
    for op in ("<=", ">="):
        if op in text:
            attr, _sep, value = text.partition(op)
            return Comparison(attr.strip(), op, _int_bound(value, text))
    for op in ("<", ">"):
        if op in text:
            attr, _sep, value = text.partition(op)
            return Comparison(attr.strip(), op, _int_bound(value, text))
    if "=" in text:
        attr, _sep, value = text.partition("=")
        attr = attr.strip()
        value = value.strip()
        if not attr:
            raise FilterParseError("missing attribute name in %r" % text)
        if value == "*":
            if attr == "objectClass":
                # objectClass is mandatory on every entry, so objectClass=*
                # is the match-everything filter of Section 8.1.
                return MatchAll()
            return Presence(attr)
        if "*" in value:
            return Substring(attr, value)
        return Equality(attr, value)
    raise FilterParseError("cannot parse atomic filter %r" % text)


def _int_bound(value: str, context: str) -> int:
    try:
        return int(value.strip())
    except ValueError:
        raise FilterParseError(
            "comparison bound must be an integer in %r" % context
        ) from None
