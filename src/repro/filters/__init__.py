"""Atomic and LDAP filters (Section 4.1)."""

from .ast import (
    Comparison,
    Equality,
    Filter,
    FilterAnd,
    FilterError,
    FilterNot,
    FilterOr,
    MatchAll,
    Presence,
    Substring,
)
from .parser import FilterParseError, parse_atomic_filter, parse_filter

__all__ = [
    "Comparison",
    "Equality",
    "Filter",
    "FilterAnd",
    "FilterError",
    "FilterNot",
    "FilterOr",
    "MatchAll",
    "Presence",
    "Substring",
    "FilterParseError",
    "parse_atomic_filter",
    "parse_filter",
]
