"""The on-"disk" directory: master layout plus sparse index.

A :class:`DirectoryStore` lays a :class:`~repro.model.instance.DirectoryInstance`
out on the simulated block device as one master run of entries in
reverse-dn order -- the clustering every algorithm in the paper assumes.
Because the order is hierarchical, the subtree below any base dn occupies a
*contiguous page range*; a small sparse index (the first dn key of each
page) locates that range without touching the data pages, playing the role
of the upper levels of the B-tree the paper assumes for dn filters (their
traversal I/O is logarithmic and absorbed into the atomic-query cost the
theorems take as given).

Secondary attribute indices live in :mod:`repro.storage.btree` and
:mod:`repro.storage.strindex` and are attached via :meth:`DirectoryStore.build_indices`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Optional, Tuple

from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from ..model.schema import DirectorySchema
from .pager import Pager
from .runs import Run, RunWriter

__all__ = ["DirectoryStore"]


class DirectoryStore:
    """A read-optimised directory image on the simulated device."""

    def __init__(self, pager: Pager, schema: DirectorySchema, master: Run):
        self.pager = pager
        self.schema = schema
        self.master = master
        # Sparse index: first dn key per master page (in memory, stands in
        # for the resident upper levels of the dn B-tree).
        self._page_first_keys: List[Tuple[str, ...]] = []
        for page_id in master.page_ids:
            records = pager.read(page_id)
            if records:
                self._page_first_keys.append(records[0].dn.key())
        self.int_indices = {}
        self.string_indices = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_instance(
        cls,
        instance: DirectoryInstance,
        pager: Optional[Pager] = None,
        page_size: int = 16,
        buffer_pages: int = 8,
    ) -> "DirectoryStore":
        """Bulk-load an instance (already sorted) into a fresh store."""
        pager = pager or Pager(page_size=page_size, buffer_pages=buffer_pages)
        writer = RunWriter(pager)
        writer.extend(instance)  # DirectoryInstance iterates in sorted order
        master = writer.close()
        return cls(pager, instance.schema, master)

    def build_indices(
        self,
        int_attributes: Tuple[str, ...] = (),
        string_attributes: Tuple[str, ...] = (),
    ) -> None:
        """Build secondary indices over the master run.

        Int attributes get a paged B+tree supporting range scans; string
        attributes get a sorted-distinct-value index supporting equality,
        presence and wildcard filters.  (The paper cites B-trees, tries and
        suffix trees; see DESIGN.md for the substitution note.)
        """
        from .btree import BPlusTree
        from .strindex import StringIndex

        int_pairs = {attr: [] for attr in int_attributes}
        str_pairs = {attr: [] for attr in string_attributes}
        for position, entry in enumerate(self.master):
            for attr in int_attributes:
                for value in entry.values(attr):
                    if isinstance(value, int) and not isinstance(value, bool):
                        int_pairs[attr].append((value, position))
            for attr in string_attributes:
                for value in entry.values(attr):
                    str_pairs[attr].append((str(value), position))
        for attr in int_attributes:
            self.int_indices[attr] = BPlusTree.bulk_load(
                self.pager, sorted(int_pairs[attr])
            )
        for attr in string_attributes:
            self.string_indices[attr] = StringIndex.build(
                self.pager, str_pairs[attr]
            )

    # -- positional access ----------------------------------------------------

    def __len__(self) -> int:
        return self.master.length

    @property
    def page_count(self) -> int:
        return self.master.page_count

    def entry_at(self, position: int) -> Entry:
        """Fetch the entry at a master-run position (one page read unless
        buffered)."""
        page_index = position // self.pager.page_size
        offset = position % self.pager.page_size
        records = self.pager.read(self.master.page_ids[page_index])
        return records[offset]

    def fetch_positions(self, positions: List[int]) -> List[Entry]:
        """Fetch entries by sorted position list, page at a time."""
        out = []
        for position in sorted(set(positions)):
            out.append(self.entry_at(position))
        return out

    # -- hierarchical range scans ------------------------------------------

    def page_range_for_subtree(self, base: DN) -> Tuple[int, int]:
        """The half-open master page-index range whose pages can contain
        entries of the subtree rooted at ``base`` (including ``base``
        itself).  Located via the in-memory sparse index: no data I/O."""
        if base.is_null():
            return 0, self.master.page_count
        prefix = base.key()
        # First page whose successor page starts at or before the prefix.
        start = bisect_right(self._page_first_keys, prefix) - 1
        if start < 0:
            start = 0
        # Upper sentinel: smallest key strictly above every key with this
        # prefix.
        sentinel = prefix[:-1] + (prefix[-1] + "￿",)
        end = bisect_right(self._page_first_keys, sentinel)
        return start, end

    def scan_subtree(self, base: DN) -> Iterator[Entry]:
        """Entries of the subtree at ``base`` (base included), in order,
        reading only the relevant contiguous page range."""
        start, end = self.page_range_for_subtree(base)
        for page_index in range(start, end):
            for entry in self.pager.read(self.master.page_ids[page_index]):
                if base.is_prefix_of(entry.dn):
                    yield entry

    def scan_all(self) -> Iterator[Entry]:
        """Full master scan, in order."""
        return iter(self.master)

    def __repr__(self) -> str:
        return "DirectoryStore(%d entries, %d pages, B=%d)" % (
            len(self),
            self.page_count,
            self.pager.page_size,
        )
