"""A paged B+tree for integer attribute indices.

Section 4.1 assumes atomic queries "can be evaluated with the help of
B-tree indices for integer and distinguishedName filters".  This B+tree
keeps its *leaf level* on the simulated device (every leaf visited costs a
page read) and its upper levels in memory, mirroring the standard
assumption that a B-tree's internal nodes are resident; the theorems charge
atomic evaluation by its output size, so what matters is that a lookup
reads only the ``t/B`` leaf pages holding its ``t`` results.

Keys are ints (attribute values); payloads are master-run positions.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Sequence, Tuple

from .pager import Pager

__all__ = ["BPlusTree"]


class BPlusTree:
    """Bulk-loaded, read-only B+tree over sorted (key, position) pairs."""

    def __init__(
        self,
        pager: Pager,
        leaf_page_ids: List[int],
        leaf_first_keys: List[int],
        length: int,
    ):
        self.pager = pager
        self._leaf_page_ids = leaf_page_ids
        self._leaf_first_keys = leaf_first_keys
        self.length = length

    @classmethod
    def bulk_load(
        cls, pager: Pager, sorted_pairs: Sequence[Tuple[int, int]]
    ) -> "BPlusTree":
        """Build from (key, position) pairs already sorted by key."""
        leaf_page_ids: List[int] = []
        leaf_first_keys: List[int] = []
        size = pager.page_size
        for start in range(0, len(sorted_pairs), size):
            chunk = list(sorted_pairs[start : start + size])
            leaf_page_ids.append(pager.append_page(chunk))
            leaf_first_keys.append(chunk[0][0])
        return cls(pager, leaf_page_ids, leaf_first_keys, len(sorted_pairs))

    # -- queries -----------------------------------------------------------

    def search(self, key: int) -> List[int]:
        """Positions of entries with exactly this key."""
        return list(self.range_scan(key, key, True, True))

    def range_scan(
        self,
        low: Optional[int],
        high: Optional[int],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Positions with key in the given (possibly open-ended) range,
        reading only the leaf pages that can contain them."""
        if not self._leaf_page_ids:
            return
        if low is None:
            start_leaf = 0
        else:
            # bisect_left: duplicates of ``low`` may span leaf boundaries,
            # so start at the last leaf whose first key is strictly below.
            start_leaf = max(0, bisect_left(self._leaf_first_keys, low) - 1)
        for leaf_index in range(start_leaf, len(self._leaf_page_ids)):
            if high is not None and self._leaf_first_keys[leaf_index] > high:
                break
            for key, position in self.pager.read(self._leaf_page_ids[leaf_index]):
                if low is not None:
                    if key < low or (key == low and not low_inclusive):
                        continue
                if high is not None:
                    if key > high or (key == high and not high_inclusive):
                        if key > high:
                            return
                        continue
                yield position

    @property
    def leaf_pages(self) -> int:
        return len(self._leaf_page_ids)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return "BPlusTree(%d keys, %d leaf pages)" % (self.length, self.leaf_pages)
