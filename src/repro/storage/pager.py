"""A simulated block device with a buffer pool and exact I/O accounting.

The paper states every complexity result in the external-memory (I/O)
model: the unit of cost is the transfer of one disk page holding ``B``
directory entries (``B`` is the *blocking factor*), and algorithms must run
in constant main memory.  This module makes that model executable:

- :class:`Pager` is the "disk": a map from page id to a list of at most
  ``page_size`` records, fronted by a bounded LRU buffer pool.
- Every page fault counts one read; every eviction of a dirty page (and the
  final flush) counts one write.  Buffer hits are free, exactly as in the
  model.
- The buffer pool size bounds main memory, so the constant-memory claims
  (Theorems 8.3/8.4) can be checked by running with a deliberately tiny
  pool and observing that nothing breaks and I/O stays linear.

Records are arbitrary Python objects; the simulation measures *page
transfers*, not bytes, which is what the theorems are about.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List

from ..obs.stats import StatCounters

__all__ = ["IOStats", "Pager", "PagerError"]


class PagerError(RuntimeError):
    """Raised on invalid page operations (bad id, oversized page, ...)."""


class IOStats(StatCounters):
    """Counters of page transfers.

    ``reads``/``writes`` are transfers between "disk" and the buffer pool.
    ``logical_reads``/``logical_writes`` count page requests regardless of
    buffer hits, so hit rates can be derived.

    ``snapshot()``/``since()``/``delta()``/``as_dict()`` come from the
    shared :class:`~repro.obs.stats.StatCounters` protocol; bracketing a
    phase with snapshot-then-since is how every layer (benchmarks, the
    tracer, EXPLAIN ``--analyze``) attributes page transfers to it.
    """

    __slots__ = ("reads", "writes", "logical_reads", "logical_writes", "allocated")

    def __init__(
        self,
        reads: int = 0,
        writes: int = 0,
        logical_reads: int = 0,
        logical_writes: int = 0,
        allocated: int = 0,
    ):
        self.reads = reads
        self.writes = writes
        self.logical_reads = logical_reads
        self.logical_writes = logical_writes
        self.allocated = allocated

    @property
    def total(self) -> int:
        """Total physical page transfers (the model's cost)."""
        return self.reads + self.writes

    @property
    def logical_total(self) -> int:
        """Total page requests regardless of buffer hits (the model-level
        cost benchmarks track)."""
        return self.logical_reads + self.logical_writes

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of logical reads served without a disk transfer."""
        if not self.logical_reads:
            return 0.0
        return 1.0 - self.reads / self.logical_reads

    def __repr__(self) -> str:
        return "IOStats(reads=%d, writes=%d, total=%d)" % (
            self.reads,
            self.writes,
            self.total,
        )


class Pager:
    """The simulated disk plus buffer pool.

    :param page_size: records per page (the blocking factor ``B``).
    :param buffer_pages: buffer pool capacity in pages (main memory).

    Thread safety: all page operations (and the stats increments they
    make) run under one reentrant :attr:`lock`, and the lock is attached
    to :attr:`stats` so bracketed snapshots are consistent.  A single
    pager therefore survives the federation's worker pool; the external-
    memory *model* is unchanged -- costs are counted identically, only
    the interleaving of concurrent operations is serialised.
    """

    def __init__(self, page_size: int = 16, buffer_pages: int = 8):
        if page_size < 1:
            raise PagerError("page_size must be >= 1")
        if buffer_pages < 1:
            raise PagerError("buffer_pages must be >= 1")
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.lock = threading.RLock()
        self.stats = IOStats()
        self.stats.attach_lock(self.lock)
        self._disk: Dict[int, List[Any]] = {}
        # page id -> (records, dirty); OrderedDict as LRU (front = oldest).
        self._pool: "OrderedDict[int, List[Any]]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}
        self._next_page = 0
        self._freed: set = set()

    # -- allocation ---------------------------------------------------------

    def allocate(self) -> int:
        """Allocate a fresh, empty page; returns its id.

        Allocation itself transfers nothing; the page materialises on first
        write-back."""
        with self.lock:
            page_id = self._next_page
            self._next_page += 1
            self.stats.allocated += 1
            self._install(page_id, [], dirty=True)
            return page_id

    def free(self, page_id: int) -> None:
        """Release a page.  Freeing discards buffered state without a
        write-back (the data is dead)."""
        with self.lock:
            self._check_id(page_id)
            self._pool.pop(page_id, None)
            self._dirty.pop(page_id, None)
            self._disk.pop(page_id, None)
            self._freed.add(page_id)

    # -- page access ----------------------------------------------------------

    def read(self, page_id: int) -> List[Any]:
        """Fetch a page's records (through the buffer pool).

        The returned list must be treated as read-only; use :meth:`write`
        to change a page."""
        with self.lock:
            self._check_id(page_id)
            self.stats.logical_reads += 1
            if page_id in self._pool:
                self._pool.move_to_end(page_id)
                return self._pool[page_id]
            if page_id not in self._disk:
                raise PagerError("page %d was never written" % page_id)
            self.stats.reads += 1
            records = list(self._disk[page_id])
            self._install(page_id, records, dirty=False)
            return records

    def write(self, page_id: int, records: List[Any]) -> None:
        """Replace a page's records (write-back is deferred to eviction or
        flush)."""
        with self.lock:
            self._check_id(page_id)
            if len(records) > self.page_size:
                raise PagerError(
                    "page overflow: %d records > page_size %d"
                    % (len(records), self.page_size)
                )
            self.stats.logical_writes += 1
            self._install(page_id, list(records), dirty=True)

    def append_page(self, records: List[Any]) -> int:
        """Allocate a page and fill it in one step (the common bulk path)."""
        with self.lock:
            page_id = self.allocate()
            self.write(page_id, records)
            return page_id

    def flush(self) -> None:
        """Write back every dirty buffered page."""
        with self.lock:
            for page_id in list(self._pool):
                if self._dirty.get(page_id):
                    self._write_back(page_id)
                    self._dirty[page_id] = False

    # -- internals ---------------------------------------------------------

    def _install(self, page_id: int, records: List[Any], dirty: bool) -> None:
        if page_id in self._pool:
            self._pool.move_to_end(page_id)
            self._pool[page_id] = records
            self._dirty[page_id] = self._dirty.get(page_id, False) or dirty
            return
        while len(self._pool) >= self.buffer_pages:
            victim, victim_records = self._pool.popitem(last=False)
            if self._dirty.pop(victim, False):
                self.stats.writes += 1
                self._disk[victim] = victim_records
        self._pool[page_id] = records
        self._dirty[page_id] = dirty

    def _write_back(self, page_id: int) -> None:
        self.stats.writes += 1
        self._disk[page_id] = list(self._pool[page_id])

    def _check_id(self, page_id: int) -> None:
        if page_id in self._freed:
            raise PagerError("use after free of page %d" % page_id)
        if not (0 <= page_id < self._next_page):
            raise PagerError("unknown page id %d" % page_id)

    # -- introspection ---------------------------------------------------------

    @property
    def pages_in_pool(self) -> int:
        return len(self._pool)

    @property
    def pages_on_disk(self) -> int:
        return len(self._disk)

    @property
    def live_pages(self) -> int:
        """Pages allocated and not yet freed.  The leak check: after any
        query -- including one cancelled mid-evaluation by a
        :class:`~repro.obs.budget.BudgetExceeded` -- this must return to
        its pre-query value."""
        with self.lock:
            return self._next_page - len(self._freed)

    def __repr__(self) -> str:
        return "Pager(B=%d, pool=%d/%d, %r)" % (
            self.page_size,
            len(self._pool),
            self.buffer_pages,
            self.stats,
        )
