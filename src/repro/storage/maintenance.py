"""Directory maintenance: updates against the read-optimised store.

Directories are read-mostly (the paper's engine is built around a
clustered, sorted master run), so updates follow the classic differential
scheme of that era: mutations accumulate in a validated, in-memory *update
log*; :meth:`UpdatableDirectory.compact` merges the log into a fresh
master run in one co-scan -- ``O((N + |log|)/B)`` page transfers plus the
log sort -- and rebuilds the secondary indices.  Queries always run
against a compacted image (:meth:`UpdatableDirectory.engine` compacts on
demand), so every complexity bound of the query engine is preserved.

Supported mutations:

- :meth:`~UpdatableDirectory.add` -- insert a new entry (validated against
  the schema exactly like :meth:`DirectoryInstance.add`);
- :meth:`~UpdatableDirectory.delete` -- remove an entry (optionally a
  whole subtree);
- :meth:`~UpdatableDirectory.modify` -- replace / add / remove attribute
  values of an existing entry (``objectClass`` cannot be modified; delete
  and re-add instead).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Union

from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance, InstanceError
from ..model.schema import OBJECT_CLASS, DirectorySchema
from ..obs.metrics import get_registry

from .runs import RunWriter
from .store import DirectoryStore

__all__ = ["UpdatableDirectory", "UpdateError", "UpdateListener"]


class UpdateError(InstanceError):
    """Raised for invalid updates, with a structured ``code`` so callers
    can map failures to protocol result codes without matching on the
    message text."""

    #: The dn names no current entry.
    NO_SUCH_ENTRY = "noSuchEntry"
    #: An add collided with an existing entry (dn is a key).
    ALREADY_EXISTS = "alreadyExists"
    #: A non-recursive delete hit an entry with children.
    HAS_CHILDREN = "hasChildren"
    #: A modify touched an RDN attribute or ``objectClass``.
    PROTECTED_ATTRIBUTE = "protectedAttribute"
    #: Anything else (schema violations surfaced as updates).
    OTHER = "other"

    def __init__(self, message: str, code: str = OTHER):
        super().__init__(message)
        self.code = code


#: An update-log observer: called as ``listener(kind, dn, subtree)`` for
#: every validated mutation (kind in "add"/"delete"/"modify"; subtree is
#: True only for recursive deletes).
UpdateListener = Callable[[str, DN, bool], None]


class UpdatableDirectory:
    """A directory store plus a pending update log."""

    def __init__(self, store: DirectoryStore, auto_compact_at: int = 1024, metrics=None):
        self.store = store
        self.schema = store.schema
        #: Compact automatically once this many mutations are pending.
        self.auto_compact_at = auto_compact_at
        self._adds: Dict[DN, Entry] = {}
        self._deletes: Set[DN] = set()
        self._delete_subtrees: Set[DN] = set()
        self.compactions = 0
        self._listeners: List[UpdateListener] = []
        #: Count of listener callbacks that raised (dispatch continues
        #: past failures; see :meth:`_notify`).
        self.listener_errors = 0
        self.metrics = metrics if metrics is not None else get_registry()
        self._compactions_metric = self.metrics.counter(
            "repro_compactions_total",
            "Update-log compactions merged into the master run",
        )
        self._listener_errors_metric = self.metrics.counter(
            "repro_update_listener_errors_total",
            "Update listeners that raised during dispatch (skipped, not fatal)",
            labelnames=("kind",),
        )

    # -- update log observers ---------------------------------------------

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Subscribe to validated mutations (query caches hook in here)."""
        self._listeners.append(listener)

    def remove_update_listener(self, listener: UpdateListener) -> None:
        """Unsubscribe (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, kind: str, dn: DN, subtree: bool = False) -> None:
        # A broken listener must not abort the (already validated) update
        # or starve the listeners after it: record the failure and move on.
        for listener in list(self._listeners):
            try:
                listener(kind, dn, subtree)
            except Exception:
                self.listener_errors += 1
                self._listener_errors_metric.inc(kind=kind)

    # -- building ------------------------------------------------------------

    @classmethod
    def from_instance(
        cls,
        instance: DirectoryInstance,
        page_size: int = 16,
        buffer_pages: int = 8,
        **options,
    ) -> "UpdatableDirectory":
        store = DirectoryStore.from_instance(
            instance, page_size=page_size, buffer_pages=buffer_pages
        )
        return cls(store, **options)

    # -- current-state lookups -------------------------------------------------

    def lookup(self, dn: Union[DN, str]) -> Optional[Entry]:
        """The entry at ``dn`` as of all pending updates."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        if dn in self._adds:
            return self._adds[dn]
        if self._is_deleted(dn):
            return None
        for entry in self.store.scan_subtree(dn):
            if entry.dn == dn:
                return entry
            break
        return None

    def _is_deleted(self, dn: DN) -> bool:
        if dn in self._deletes:
            return True
        return any(root.is_prefix_of(dn) for root in self._delete_subtrees)

    def pending(self) -> int:
        return len(self._adds) + len(self._deletes) + len(self._delete_subtrees)

    def __len__(self) -> int:
        """Exact only right after compaction; otherwise an O(pending)
        adjustment over the stored count (subtree deletes force compaction
        first)."""
        if self._delete_subtrees:
            self.compact()
        return len(self.store) + len(self._adds) - len(self._deletes)

    # -- mutations ----------------------------------------------------------

    def add(
        self,
        dn: Union[DN, str],
        classes: Iterable[str],
        attributes: Optional[Dict[str, Iterable[Any]]] = None,
        **kw_attributes: Any,
    ) -> Entry:
        """Insert a new entry (schema-validated)."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        if self.lookup(dn) is not None:
            raise UpdateError(
                "dn is a key: %s already present" % dn, UpdateError.ALREADY_EXISTS
            )
        entry = _validated_entry(self.schema, dn, classes, attributes, kw_attributes)
        self._deletes.discard(dn)
        self._adds[dn] = entry
        self._notify("add", dn)
        self._maybe_compact()
        return entry

    def delete(self, dn: Union[DN, str], recursive: bool = False) -> None:
        """Remove the entry at ``dn``; with ``recursive`` its subtree too."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        if self.lookup(dn) is None:
            raise UpdateError("no entry at %s" % dn, UpdateError.NO_SUCH_ENTRY)
        if recursive:
            self._delete_subtrees.add(dn)
            for pending_dn in [d for d in self._adds if dn.is_prefix_of(d)]:
                del self._adds[pending_dn]
        else:
            if any(True for _ in self._children_now(dn)):
                raise UpdateError(
                    "%s has children; pass recursive=True" % dn,
                    UpdateError.HAS_CHILDREN,
                )
            self._adds.pop(dn, None)
            self._deletes.add(dn)
        self._notify("delete", dn, subtree=recursive)
        self._maybe_compact()

    def modify(
        self,
        dn: Union[DN, str],
        replace: Optional[Dict[str, Iterable[Any]]] = None,
        add_values: Optional[Dict[str, Iterable[Any]]] = None,
        remove_values: Optional[Dict[str, Iterable[Any]]] = None,
    ) -> Entry:
        """Change attribute values of an existing entry.

        ``replace`` overwrites an attribute's whole value set (an empty
        iterable removes the attribute); ``add_values`` and
        ``remove_values`` adjust individual values.  The RDN attributes and
        ``objectClass`` cannot be touched."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        current = self.lookup(dn)
        if current is None:
            raise UpdateError("no entry at %s" % dn, UpdateError.NO_SUCH_ENTRY)
        protected = set(dn.rdn.attributes()) | {OBJECT_CLASS}
        values: Dict[str, List[Any]] = {
            attr: list(current.values(attr))
            for attr in current.attributes()
            if attr != OBJECT_CLASS
        }
        for attr, vals in (replace or {}).items():
            if attr in protected:
                raise UpdateError(
                    "cannot modify protected attribute %r" % attr,
                    UpdateError.PROTECTED_ATTRIBUTE,
                )
            vals = list(vals)
            if vals:
                values[attr] = vals
            else:
                values.pop(attr, None)
        for attr, vals in (add_values or {}).items():
            if attr in protected:
                raise UpdateError(
                    "cannot modify protected attribute %r" % attr,
                    UpdateError.PROTECTED_ATTRIBUTE,
                )
            values.setdefault(attr, []).extend(vals)
        for attr, vals in (remove_values or {}).items():
            if attr in protected:
                raise UpdateError(
                    "cannot modify protected attribute %r" % attr,
                    UpdateError.PROTECTED_ATTRIBUTE,
                )
            doomed = {str(v) for v in vals}
            values[attr] = [v for v in values.get(attr, []) if str(v) not in doomed]
            if not values[attr]:
                del values[attr]
        entry = _validated_entry(self.schema, dn, current.classes, values, {})
        self._adds[dn] = entry
        self._deletes.discard(dn)
        self._notify("modify", dn)
        self._maybe_compact()
        return entry

    def _children_now(self, dn: DN):
        for child_dn in self._adds:
            if dn.is_parent_of(child_dn):
                yield child_dn
        for entry in self.store.scan_subtree(dn):
            if dn.is_parent_of(entry.dn) and not self._is_deleted(entry.dn):
                yield entry.dn

    # -- compaction ----------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self.pending() >= self.auto_compact_at:
            self.compact()

    def compact(self) -> DirectoryStore:
        """Merge the update log into a fresh master run (one co-scan)."""
        if not self.pending():
            return self.store
        pager = self.store.pager
        adds = sorted(self._adds.values(), key=lambda e: e.dn.key())
        writer = RunWriter(pager)
        add_index = 0
        for entry in self.store.scan_all():
            while add_index < len(adds) and adds[add_index].dn.key() < entry.dn.key():
                writer.append(adds[add_index])
                add_index += 1
            if add_index < len(adds) and adds[add_index].dn == entry.dn:
                writer.append(adds[add_index])  # modify: new version wins
                add_index += 1
                continue
            if not self._is_deleted(entry.dn):
                writer.append(entry)
        while add_index < len(adds):
            writer.append(adds[add_index])
            add_index += 1
        new_master = writer.close()

        int_attrs = tuple(self.store.int_indices)
        str_attrs = tuple(self.store.string_indices)
        self.store.master.free()
        self.store = DirectoryStore(pager, self.schema, new_master)
        if int_attrs or str_attrs:
            self.store.build_indices(int_attrs, str_attrs)
        self._adds.clear()
        self._deletes.clear()
        self._delete_subtrees.clear()
        self.compactions += 1
        self._compactions_metric.inc()
        return self.store

    def engine(self, **options):
        """A query engine over the current state (compacts if needed)."""
        from ..engine.engine import QueryEngine

        self.compact()
        return QueryEngine(self.store, **options)

    def __repr__(self) -> str:
        return "UpdatableDirectory(%d stored, %d pending)" % (
            len(self.store),
            self.pending(),
        )


def _validated_entry(
    schema: DirectorySchema,
    dn: DN,
    classes: Iterable[str],
    attributes: Optional[Dict[str, Iterable[Any]]],
    kw_attributes: Dict[str, Any],
) -> Entry:
    """Build one schema-validated entry by round-tripping through a
    scratch instance (reusing all of Definition 3.2's checks)."""
    scratch = DirectoryInstance(schema)
    return scratch.add(dn, classes, attributes, **kw_attributes)
