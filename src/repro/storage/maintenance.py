"""Directory maintenance: updates against the read-optimised store.

Directories are read-mostly (the paper's engine is built around a
clustered, sorted master run), so updates follow the classic differential
scheme of that era: mutations accumulate in a validated overlay ahead of
the master; :meth:`UpdatableDirectory.compact` merges the overlay into a
fresh master run in one co-scan -- ``O((N + |log|)/B)`` page transfers
plus the log sort -- and rebuilds the secondary indices.  Queries always
run against a compacted image (:meth:`UpdatableDirectory.engine` compacts
on demand), so every complexity bound of the query engine is preserved.

The overlay itself is a :class:`~repro.txn.mvcc.VersionChain`: every
validated mutation becomes one :class:`~repro.txn.records.ChangeRecord`,
commits one immutable :class:`~repro.txn.mvcc.Version` and is assigned
the version's lsn.  Readers take a :class:`StoreView` -- a (master run,
overlay snapshot) pair captured atomically -- and keep answering as of
that lsn no matter what writers or compactions do next:

- the snapshot's version list is immutable (see :mod:`repro.txn.mvcc`);
- the master run a view pins is *deferred-freed*: compaction installs the
  merged run immediately but the superseded run's pages are only
  returned to the pager when the last pinning view closes.

Compaction may run synchronously (the seed behaviour, still the default)
or on a :class:`~repro.txn.agent.MaintenanceAgent` attached via
:meth:`UpdatableDirectory.attach_maintenance` -- then writers only
*request* compaction and never pay the merge themselves.

Supported mutations:

- :meth:`~UpdatableDirectory.add` -- insert a new entry (validated against
  the schema exactly like :meth:`DirectoryInstance.add`);
- :meth:`~UpdatableDirectory.delete` -- remove an entry (optionally a
  whole subtree);
- :meth:`~UpdatableDirectory.modify` -- replace / add / remove attribute
  values of an existing entry (``objectClass`` cannot be modified; delete
  and re-add instead).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..model.dn import DN
from ..model.entry import Entry
from ..model.instance import DirectoryInstance, InstanceError
from ..model.schema import OBJECT_CLASS, DirectorySchema
from ..obs.log import NULL_LOGGER
from ..obs.metrics import get_registry
from ..txn.mvcc import Snapshot, VersionChain
from ..txn.records import ChangeRecord

from .runs import RunWriter
from .store import DirectoryStore

__all__ = [
    "CompactionListener",
    "ReplayError",
    "StoreView",
    "UpdatableDirectory",
    "UpdateError",
    "UpdateListener",
    "RecordListener",
]


class UpdateError(InstanceError):
    """Raised for invalid updates, with a structured ``code`` so callers
    can map failures to protocol result codes without matching on the
    message text."""

    #: The dn names no current entry.
    NO_SUCH_ENTRY = "noSuchEntry"
    #: An add collided with an existing entry (dn is a key).
    ALREADY_EXISTS = "alreadyExists"
    #: A non-recursive delete hit an entry with children.
    HAS_CHILDREN = "hasChildren"
    #: A modify touched an RDN attribute or ``objectClass``.
    PROTECTED_ATTRIBUTE = "protectedAttribute"
    #: Anything else (schema violations surfaced as updates).
    OTHER = "other"

    def __init__(self, message: str, code: str = OTHER):
        super().__init__(message)
        self.code = code


class ReplayError(RuntimeError):
    """Raised when replaying committed change records fails structurally
    (a record without an lsn, or an lsn gap against the version chain).
    Both crash recovery (:class:`~repro.txn.durable.DurableDirectory`) and
    replication (:class:`~repro.dist.replication.ReplicatedContext`) apply
    records through :meth:`UpdatableDirectory.apply_records`, so both
    surface the same failure shape."""


#: An update-log observer: called as ``listener(kind, dn, subtree)`` for
#: every validated mutation (kind in "add"/"delete"/"modify"; subtree is
#: True only for recursive deletes).
UpdateListener = Callable[[str, DN, bool], None]

#: A change-record observer: called with the committed
#: :class:`~repro.txn.records.ChangeRecord` (lsn assigned).  The
#: incremental cache maintainer and the live statistics hook in here.
#: Online mutations attach the pre-image entry for deletes/modifies
#: (``record.pre_image``); replayed records carry None there.
RecordListener = Callable[[ChangeRecord], None]

#: A compaction observer: called with the freshly installed master
#: :class:`~repro.storage.store.DirectoryStore` after every compaction.
#: Statistics fold their full rebuild in here.
CompactionListener = Callable[[DirectoryStore], None]


class StoreView:
    """A pinned, immutable read view: one master run + one overlay
    snapshot, captured atomically.  Close it (or use it as a context
    manager) to release the pin so superseded runs can be freed."""

    __slots__ = ("store", "snapshot", "_directory", "_closed")

    def __init__(
        self, directory: "UpdatableDirectory", store: DirectoryStore, snapshot: Snapshot
    ):
        self.store = store
        self.snapshot = snapshot
        self._directory = directory
        self._closed = False

    @property
    def lsn(self) -> int:
        return self.snapshot.lsn

    def lookup(self, dn: DN) -> Optional[Entry]:
        verdict = self.snapshot.overlay_lookup(dn)
        if verdict is not None:
            return verdict[1]  # entry for adds/modifies, None for deletes
        for entry in self.store.scan_subtree(dn):
            if entry.dn == dn:
                return entry
            break
        return None

    def children(self, dn: DN):
        """Dns of the entry's current children (adds first, then stored
        entries that the overlay has not deleted)."""
        adds, _deletes, _subtrees = self.snapshot.folded()
        for child_dn in adds:
            if dn.is_parent_of(child_dn):
                yield child_dn
        for entry in self.store.scan_subtree(dn):
            if dn.is_parent_of(entry.dn) and not self.snapshot.is_deleted(entry.dn):
                yield entry.dn

    def clone(self) -> "StoreView":
        """A second, independently-closeable pin on the same (master run,
        snapshot) pair.  Only valid while this view is still open -- the
        extra pin keeps the run alive after the original closes."""
        if self._closed:
            raise RuntimeError("cannot clone a closed view")
        with self._directory._state_lock:
            self._directory._pins[id(self.store)] = (
                self._directory._pins.get(id(self.store), 0) + 1
            )
        return StoreView(self._directory, self.store, self.snapshot)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._directory._release_store(self.store)

    def __enter__(self) -> "StoreView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "StoreView(lsn=%d, %d stored)" % (self.lsn, len(self.store))


class UpdatableDirectory:
    """A directory store plus a versioned pending-update overlay."""

    def __init__(
        self,
        store: DirectoryStore,
        auto_compact_at: int = 1024,
        start_lsn: int = 0,
        metrics=None,
        log=None,
    ):
        self.store = store
        self.schema = store.schema
        #: Compact automatically once this many mutations are pending.
        self.auto_compact_at = auto_compact_at
        #: ``start_lsn`` anchors the version chain when the store already
        #: represents the fold of every update up to that lsn (a durable
        #: checkpoint, or a replication snapshot installed by resync).
        self._chain = VersionChain(start_lsn=start_lsn)
        #: Serialises validate+commit so concurrent writers cannot both
        #: pass the same uniqueness check.
        self._write_lock = threading.RLock()
        #: Guards the (store pointer, pins, retired) triple.
        self._state_lock = threading.Lock()
        #: Only one compaction materialises at a time.
        self._compact_lock = threading.Lock()
        self._pins: Dict[int, int] = {}
        self._retired: Dict[int, DirectoryStore] = {}
        self._agent = None
        self.compactions = 0
        #: Superseded master runs whose free was deferred behind a pin.
        self.deferred_frees = 0
        self._listeners: List[UpdateListener] = []
        self._record_listeners: List[RecordListener] = []
        self._compaction_listeners: List[CompactionListener] = []
        #: Count of listener callbacks that raised (dispatch continues
        #: past failures; see :meth:`_notify`).
        self.listener_errors = 0
        self.log = log if log is not None else NULL_LOGGER
        self.metrics = metrics if metrics is not None else get_registry()
        self._compactions_metric = self.metrics.counter(
            "repro_compactions_total",
            "Update-log compactions merged into the master run",
        )
        self._compaction_seconds = self.metrics.histogram(
            "repro_compaction_seconds",
            "Wall time of one overlay compaction (merge + index rebuild)",
        )
        self._updates_metric = self.metrics.counter(
            "repro_updates_total",
            "Committed directory updates by kind",
            labelnames=("kind",),
        )
        self._update_errors_metric = self.metrics.counter(
            "repro_update_errors_total",
            "Rejected directory updates by structured error code",
            labelnames=("code",),
        )
        self._listener_errors_metric = self.metrics.counter(
            "repro_update_listener_errors_total",
            "Update listeners that raised during dispatch (skipped, not fatal)",
            labelnames=("kind",),
        )

    # -- update log observers ---------------------------------------------

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Subscribe to validated mutations (query caches hook in here)."""
        self._listeners.append(listener)

    def remove_update_listener(self, listener: UpdateListener) -> None:
        """Unsubscribe (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def add_record_listener(self, listener: RecordListener) -> None:
        """Subscribe to committed change records (lsn included) -- the
        richer form of :meth:`add_update_listener`."""
        self._record_listeners.append(listener)

    def remove_record_listener(self, listener: RecordListener) -> None:
        if listener in self._record_listeners:
            self._record_listeners.remove(listener)

    def add_compaction_listener(self, listener: CompactionListener) -> None:
        """Subscribe to compactions (called with the new master store once
        it is installed).  Live statistics fold their rebuild in here."""
        self._compaction_listeners.append(listener)

    def remove_compaction_listener(self, listener: CompactionListener) -> None:
        if listener in self._compaction_listeners:
            self._compaction_listeners.remove(listener)

    def _notify_compaction(self, store: DirectoryStore) -> None:
        for listener in list(self._compaction_listeners):
            try:
                listener(store)
            except Exception:
                self.listener_errors += 1
                self._listener_errors_metric.inc(kind="compact")

    def _notify(self, record: ChangeRecord) -> None:
        # A broken listener must not abort the (already committed) update
        # or starve the listeners after it: record the failure and move on.
        for listener in list(self._listeners):
            try:
                listener(record.kind, record.dn, record.subtree)
            except Exception:
                self.listener_errors += 1
                self._listener_errors_metric.inc(kind=record.kind)
        for listener in list(self._record_listeners):
            try:
                listener(record)
            except Exception:
                self.listener_errors += 1
                self._listener_errors_metric.inc(kind=record.kind)

    # -- building ------------------------------------------------------------

    @classmethod
    def from_instance(
        cls,
        instance: DirectoryInstance,
        page_size: int = 16,
        buffer_pages: int = 8,
        **options,
    ) -> "UpdatableDirectory":
        store = DirectoryStore.from_instance(
            instance, page_size=page_size, buffer_pages=buffer_pages
        )
        return cls(store, **options)

    # -- snapshot views -------------------------------------------------------

    def acquire_view(self) -> StoreView:
        """Pin a consistent (master run, overlay snapshot) pair.  The view
        answers as of its lsn until closed; close promptly -- a pinned
        superseded run keeps its pages allocated."""
        with self._state_lock:
            store = self.store
            self._pins[id(store)] = self._pins.get(id(store), 0) + 1
            snapshot = self._chain.snapshot()
        return StoreView(self, store, snapshot)

    def snapshot(self) -> Snapshot:
        """The overlay snapshot alone (no store pin)."""
        return self._chain.snapshot()

    def _release_store(self, store: DirectoryStore) -> None:
        doomed = None
        with self._state_lock:
            key = id(store)
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
            else:
                self._pins.pop(key, None)
                doomed = self._retired.pop(key, None)
        if doomed is not None:
            doomed.master.free()

    @property
    def head_lsn(self) -> int:
        """The lsn of the newest committed update."""
        return self._chain.head_lsn

    @property
    def floor_lsn(self) -> int:
        """The lsn already folded into the master run."""
        return self._chain.floor_lsn

    # -- current-state lookups -------------------------------------------------

    def lookup(self, dn: Union[DN, str]) -> Optional[Entry]:
        """The entry at ``dn`` as of all committed updates."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        with self.acquire_view() as view:
            return view.lookup(dn)

    def pending(self) -> int:
        return self._chain.snapshot().pending()

    def __len__(self) -> int:
        """Exact only right after compaction; otherwise an O(pending)
        adjustment over the stored count (subtree deletes force compaction
        first)."""
        with self.acquire_view() as view:
            adds, deletes, subtrees = view.snapshot.folded()
            if not subtrees:
                return len(view.store) + len(adds) - len(deletes)
        self.compact()
        return len(self.store)

    # -- mutations ----------------------------------------------------------

    def add(
        self,
        dn: Union[DN, str],
        classes: Iterable[str],
        attributes: Optional[Dict[str, Iterable[Any]]] = None,
        **kw_attributes: Any,
    ) -> Entry:
        """Insert a new entry (schema-validated)."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        with self._write_lock:
            if self.lookup(dn) is not None:
                self._fail(
                    "dn is a key: %s already present" % dn, UpdateError.ALREADY_EXISTS
                )
            entry = _validated_entry(
                self.schema, dn, classes, attributes, kw_attributes
            )
            record = self._commit(ChangeRecord("add", dn, entry=entry))
        self._finish(record)
        return entry

    def delete(self, dn: Union[DN, str], recursive: bool = False) -> None:
        """Remove the entry at ``dn``; with ``recursive`` its subtree too."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        with self._write_lock:
            with self.acquire_view() as view:
                current = view.lookup(dn)
                if current is None:
                    self._fail("no entry at %s" % dn, UpdateError.NO_SUCH_ENTRY)
                if not recursive and any(True for _ in view.children(dn)):
                    self._fail(
                        "%s has children; pass recursive=True" % dn,
                        UpdateError.HAS_CHILDREN,
                    )
            doomed = ChangeRecord("delete", dn, subtree=recursive)
            # The validation lookup is the pre-image; listeners that keep
            # incremental state (live statistics) consume it.
            doomed.pre_image = current
            record = self._commit(doomed)
        self._finish(record)

    def modify(
        self,
        dn: Union[DN, str],
        replace: Optional[Dict[str, Iterable[Any]]] = None,
        add_values: Optional[Dict[str, Iterable[Any]]] = None,
        remove_values: Optional[Dict[str, Iterable[Any]]] = None,
    ) -> Entry:
        """Change attribute values of an existing entry.

        ``replace`` overwrites an attribute's whole value set (an empty
        iterable removes the attribute); ``add_values`` and
        ``remove_values`` adjust individual values.  The RDN attributes and
        ``objectClass`` cannot be touched."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        with self._write_lock:
            current = self.lookup(dn)
            if current is None:
                self._fail("no entry at %s" % dn, UpdateError.NO_SUCH_ENTRY)
            protected = set(dn.rdn.attributes()) | {OBJECT_CLASS}
            values: Dict[str, List[Any]] = {
                attr: list(current.values(attr))
                for attr in current.attributes()
                if attr != OBJECT_CLASS
            }
            for attr, vals in (replace or {}).items():
                self._check_unprotected(attr, protected)
                vals = list(vals)
                if vals:
                    values[attr] = vals
                else:
                    values.pop(attr, None)
            for attr, vals in (add_values or {}).items():
                self._check_unprotected(attr, protected)
                values.setdefault(attr, []).extend(vals)
            for attr, vals in (remove_values or {}).items():
                self._check_unprotected(attr, protected)
                doomed = {str(v) for v in vals}
                values[attr] = [
                    v for v in values.get(attr, []) if str(v) not in doomed
                ]
                if not values[attr]:
                    del values[attr]
            entry = _validated_entry(self.schema, dn, current.classes, values, {})
            changed = ChangeRecord("modify", dn, entry=entry)
            changed.pre_image = current
            record = self._commit(changed)
        self._finish(record)
        return entry

    def _check_unprotected(self, attr: str, protected) -> None:
        if attr in protected:
            self._fail(
                "cannot modify protected attribute %r" % attr,
                UpdateError.PROTECTED_ATTRIBUTE,
            )

    def _fail(self, message: str, code: str) -> None:
        self._update_errors_metric.inc(code=code)
        raise UpdateError(message, code)

    # -- the commit pipeline -------------------------------------------------

    def _commit(self, record: ChangeRecord) -> ChangeRecord:
        """Advance the version chain with the record's delta and assign its
        lsn; runs under the write lock so lsn order equals commit order."""
        if record.kind == "delete":
            if record.subtree:
                version = self._chain.advance(delete_subtrees=(record.dn,))
            else:
                version = self._chain.advance(deletes=(record.dn,))
        else:
            version = self._chain.advance(adds={record.dn: record.entry})
        record.lsn = version.lsn
        self._log_record(record)
        return record

    # -- the replay path (crash recovery and replication) --------------------

    def apply_record(self, record: ChangeRecord, notify: bool = False) -> bool:
        """Apply one *committed* post-image record without re-validation.

        This is the replay path shared by crash recovery and replication:
        the record was validated when it first committed, so it is applied
        verbatim.  Records at or below the current head lsn are skipped
        (idempotent re-delivery: a checkpoint already folded them, or a
        replica saw the batch twice); an lsn *gap* raises
        :class:`ReplayError` -- the log the records came from is missing a
        prefix and applying more would corrupt the replica.

        Returns True when the record advanced the chain, False when it was
        a duplicate.  ``notify`` forwards applied records to the update
        listeners (replicas keep their caches fresh through the same hook
        the online path uses); recovery leaves it off because listeners
        attach after open.
        """
        if record.lsn is None:
            raise ReplayError("cannot replay a record without an lsn: %r" % record)
        with self._write_lock:
            if record.lsn <= self.head_lsn:
                return False
            if record.kind == "delete":
                if record.subtree:
                    version = self._chain.advance(delete_subtrees=(record.dn,))
                else:
                    version = self._chain.advance(deletes=(record.dn,))
            else:
                version = self._chain.advance(adds={record.dn: record.entry})
            if version.lsn != record.lsn:
                raise ReplayError(
                    "lsn gap in replay: log says %d, chain says %d"
                    % (record.lsn, version.lsn)
                )
        if notify:
            self._updates_metric.inc(kind=record.kind)
            self._notify(record)
        return True

    def apply_records(
        self, records: Iterable[ChangeRecord], notify: bool = False
    ) -> List[ChangeRecord]:
        """Apply a batch through :meth:`apply_record`; returns the records
        actually applied (duplicates skipped)."""
        applied = [r for r in records if self.apply_record(r, notify=notify)]
        if applied:
            self._maybe_compact()
        return applied

    def _log_record(self, record: ChangeRecord) -> None:
        """Durability hook, called under the write lock right after the
        chain advanced (a WAL buffers the record here)."""

    def _after_commit(self, record: ChangeRecord) -> None:
        """Durability hook, called *outside* the write lock -- a WAL
        group-commits here, so concurrent committers share fsyncs."""

    def _finish(self, record: ChangeRecord) -> None:
        self._after_commit(record)
        self._updates_metric.inc(kind=record.kind)
        self._notify(record)
        self._maybe_compact()

    # -- compaction ----------------------------------------------------------

    def attach_maintenance(self, agent) -> None:
        """Route auto-compaction through a
        :class:`~repro.txn.agent.MaintenanceAgent` instead of running it
        inside the writer that crossed the threshold."""
        self._agent = agent

    def detach_maintenance(self) -> None:
        self._agent = None

    def _maybe_compact(self) -> None:
        if self.pending() < self.auto_compact_at:
            return
        agent = self._agent
        if agent is not None:
            if agent.submit("compact", self.compact, dedupe=True):
                return
            if agent.running:
                return  # an equal request is already queued or running
        self.compact()

    def compact(self) -> DirectoryStore:
        """Merge the committed overlay into a fresh master run (one
        co-scan).  Readers are never blocked: they keep the view they
        pinned; the superseded run is freed when its last pin drops."""
        with self._compact_lock:
            view = self.acquire_view()
            try:
                adds_map, deletes, subtrees = view.snapshot.folded()
                if not (adds_map or deletes or subtrees):
                    return view.store
                started = time.perf_counter()
                folded = len(adds_map) + len(deletes) + len(subtrees)

                def is_deleted(dn: DN) -> bool:
                    if dn in deletes:
                        return True
                    return any(root.is_prefix_of(dn) for root in subtrees)

                pager = view.store.pager
                adds = sorted(adds_map.values(), key=lambda e: e.dn.key())
                writer = RunWriter(pager)
                add_index = 0
                for entry in view.store.scan_all():
                    while (
                        add_index < len(adds)
                        and adds[add_index].dn.key() < entry.dn.key()
                    ):
                        writer.append(adds[add_index])
                        add_index += 1
                    if add_index < len(adds) and adds[add_index].dn == entry.dn:
                        writer.append(adds[add_index])  # modify: new version wins
                        add_index += 1
                        continue
                    if not is_deleted(entry.dn):
                        writer.append(entry)
                while add_index < len(adds):
                    writer.append(adds[add_index])
                    add_index += 1
                new_master = writer.close()

                int_attrs = tuple(view.store.int_indices)
                str_attrs = tuple(view.store.string_indices)
                new_store = DirectoryStore(pager, self.schema, new_master)
                if int_attrs or str_attrs:
                    new_store.build_indices(int_attrs, str_attrs)

                fold_lsn = view.snapshot.lsn
                with self._state_lock:
                    old_store = self.store
                    self.store = new_store
                    self._chain.truncate(fold_lsn)
                    # The old run is pinned at least by our own view;
                    # defer its free to the last release.
                    self._retired[id(old_store)] = old_store
                    if self._pins.get(id(old_store), 0) > 1:
                        self.deferred_frees += 1
                elapsed = time.perf_counter() - started
                self.compactions += 1
                self._compactions_metric.inc()
                self._compaction_seconds.observe(elapsed)
                self.log.info(
                    "maintenance.compact",
                    seconds=round(elapsed, 6),
                    folded=folded,
                    lsn=fold_lsn,
                    entries=len(new_store),
                )
                self._notify_compaction(new_store)
                return new_store
            finally:
                view.close()

    def engine(self, **options):
        """A query engine over the current state (compacts if needed)."""
        from ..engine.engine import QueryEngine

        self.compact()
        return QueryEngine(self.store, **options)

    def __repr__(self) -> str:
        return "UpdatableDirectory(%d stored, %d pending)" % (
            len(self.store),
            self.pending(),
        )


def _validated_entry(
    schema: DirectorySchema,
    dn: DN,
    classes: Iterable[str],
    attributes: Optional[Dict[str, Iterable[Any]]],
    kw_attributes: Dict[str, Any],
) -> Entry:
    """Build one schema-validated entry by round-tripping through a
    scratch instance (reusing all of Definition 3.2's checks)."""
    scratch = DirectoryInstance(schema)
    return scratch.add(dn, classes, attributes, **kw_attributes)
