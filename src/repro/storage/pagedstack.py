"""A stack that spills to the block device (for Figures 2, 4, 5, 6).

The paper's stack algorithms note that "particular stack entries may be
swapped out (and eventually re-fetched) from the memory multiple times when
the stack repeatedly grows and shrinks", yet the overall I/O remains
``O((|L1| + |L2|)/B)``.  A naive one-page cache does *not* give that bound
(alternating push/pop at a page boundary causes one transfer per
operation); the standard fix, used here, is hysteresis: keep up to two
pages' worth of the stack top in memory, spill the deeper page only when
the in-memory portion reaches ``2B``, and re-fetch one page only when it
empties.  Between two consecutive spills of the same region at least ``B``
pushes (or pops) must occur, so the amortised cost is ``O(1/B)`` transfers
per operation -- exactly the paper's claim.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .pager import Pager

__all__ = ["PagedStack"]


class PagedStack:
    """LIFO stack with amortised ``O(1/B)`` page transfers per operation."""

    def __init__(self, pager: Pager):
        self.pager = pager
        self._spilled: List[int] = []  # page ids, deepest first
        self._top: List[Any] = []  # in-memory top, deepest first
        self.max_depth = 0
        self._depth = 0

    def push(self, item: Any) -> None:
        self._top.append(item)
        self._depth += 1
        if self._depth > self.max_depth:
            self.max_depth = self._depth
        if len(self._top) >= 2 * self.pager.page_size:
            # Spill the deepest B in-memory items.
            spill, self._top = (
                self._top[: self.pager.page_size],
                self._top[self.pager.page_size :],
            )
            self._spilled.append(self.pager.append_page(spill))

    def pop(self) -> Any:
        if not self._top:
            self._refill()
        if not self._top:
            raise IndexError("pop from empty PagedStack")
        self._depth -= 1
        return self._top.pop()

    def peek(self) -> Optional[Any]:
        """Top of stack without popping; None when empty."""
        if not self._top:
            self._refill()
        if not self._top:
            return None
        return self._top[-1]

    def replace_top(self, item: Any) -> None:
        """Overwrite the top item in place (the algorithms update counters
        on the entry at the top)."""
        if not self._top:
            self._refill()
        if not self._top:
            raise IndexError("replace_top on empty PagedStack")
        self._top[-1] = item

    def _refill(self) -> None:
        if not self._spilled:
            return
        page_id = self._spilled.pop()
        self._top = list(self.pager.read(page_id))
        self.pager.free(page_id)

    def __len__(self) -> int:
        return self._depth

    def is_empty(self) -> bool:
        return self._depth == 0

    def __repr__(self) -> str:
        return "PagedStack(depth=%d, spilled_pages=%d)" % (
            self._depth,
            len(self._spilled),
        )
