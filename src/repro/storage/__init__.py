"""The external-memory substrate: simulated block device, runs, stacks,
sorting, the directory store and secondary indices."""

from .btree import BPlusTree
from .extsort import external_sort, merge_runs
from .maintenance import UpdatableDirectory, UpdateError
from .pagedstack import PagedStack
from .pager import IOStats, Pager, PagerError
from .runs import Run, RunReader, RunWriter, run_from_iterable
from .store import DirectoryStore
from .strindex import StringIndex

__all__ = [
    "BPlusTree",
    "external_sort",
    "merge_runs",
    "UpdatableDirectory",
    "UpdateError",
    "PagedStack",
    "IOStats",
    "Pager",
    "PagerError",
    "Run",
    "RunReader",
    "RunWriter",
    "run_from_iterable",
    "DirectoryStore",
    "StringIndex",
]
