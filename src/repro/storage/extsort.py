"""External merge sort over pager-resident runs.

Used wherever the paper sorts: producing the initial reverse-dn-ordered
entry lists, and sorting the pair list ``LP`` inside ``ComputeERAggDV``
(Figure 3), whose ``(|L2| m / B) log(|L2| m / B)`` term is exactly this
sort's cost.

The sort honours the external-memory model: phase 1 fills a bounded
in-memory workspace (``memory_pages`` pages of ``B`` records), sorts it and
emits a level-0 run; phase 2 repeatedly merges up to ``fan_in`` runs until
one remains.  All page movement goes through the pager and is counted.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List

from .pager import Pager
from .runs import Run, RunWriter

__all__ = ["external_sort", "merge_runs"]


def external_sort(
    pager: Pager,
    records: Iterable[Any],
    key: Callable[[Any], Any],
    memory_pages: int = 4,
) -> Run:
    """Sort ``records`` by ``key`` into a single run.

    ``memory_pages`` bounds the in-memory workspace (and the merge fan-in),
    independent of input size, so the constant-memory discipline holds.
    """
    if memory_pages < 2:
        raise ValueError("external sort needs at least 2 memory pages")
    capacity = memory_pages * pager.page_size

    runs: List[Run] = []
    workspace: List[Any] = []
    for record in records:
        workspace.append(record)
        if len(workspace) >= capacity:
            runs.append(_emit_sorted(pager, workspace, key))
            workspace = []
    if workspace or not runs:
        runs.append(_emit_sorted(pager, workspace, key))

    fan_in = max(2, memory_pages - 1)
    while len(runs) > 1:
        merged: List[Run] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start : start + fan_in]
            if len(group) == 1:
                merged.append(group[0])
            else:
                merged.append(merge_runs(pager, group, key))
        runs = merged
    return runs[0]


def _emit_sorted(pager: Pager, workspace: List[Any], key) -> Run:
    workspace.sort(key=key)
    writer = RunWriter(pager)
    writer.extend(workspace)
    return writer.close()


def merge_runs(
    pager: Pager,
    runs: List[Run],
    key: Callable[[Any], Any],
) -> Run:
    """K-way merge of sorted runs into one; inputs are freed."""
    writer = RunWriter(pager)
    readers = [run.reader() for run in runs]
    heap = []
    for index, reader in enumerate(readers):
        head = reader.peek()
        if head is not None:
            heapq.heappush(heap, (key(head), index))
    while heap:
        _item_key, index = heapq.heappop(heap)
        reader = readers[index]
        writer.append(reader.next())
        head = reader.peek()
        if head is not None:
            heapq.heappush(heap, (key(head), index))
    for run in runs:
        run.free()
    return writer.close()
