"""String attribute index: sorted (value, position) pairs on the device.

The paper points to "trie and suffix tree indices [McCreight 76] for string
filters".  We substitute a simpler structure with the same I/O profile for
the filter classes the languages use (see DESIGN.md):

- equality ``a=v``: binary search over the in-memory page directory, then
  read only the pages holding the value -- ``t/B`` page reads;
- prefix wildcards ``a=v*``: the matching values are a contiguous range of
  the sorted index, same cost as equality;
- general wildcards ``a=*v*``: scan the index pages (``V/B`` where ``V`` is
  the number of (value, position) pairs), never the data pages;
- presence ``a=*``: the whole index, ``V/B``.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Iterator, List, Sequence, Tuple

from .pager import Pager

__all__ = ["StringIndex"]


class StringIndex:
    """Read-only sorted index of (string value, master position) pairs."""

    def __init__(
        self,
        pager: Pager,
        page_ids: List[int],
        page_first_values: List[str],
        length: int,
    ):
        self.pager = pager
        self._page_ids = page_ids
        self._page_first_values = page_first_values
        self.length = length

    @classmethod
    def build(
        cls, pager: Pager, pairs: Sequence[Tuple[str, int]]
    ) -> "StringIndex":
        ordered = sorted(pairs)
        page_ids: List[int] = []
        first_values: List[str] = []
        size = pager.page_size
        for start in range(0, len(ordered), size):
            chunk = list(ordered[start : start + size])
            page_ids.append(pager.append_page(chunk))
            first_values.append(chunk[0][0])
        return cls(pager, page_ids, first_values, len(ordered))

    # -- queries -------------------------------------------------------------

    def lookup_eq(self, value: str) -> Iterator[int]:
        """Positions whose value equals ``value``."""
        return self._range(value, value + "\0")

    def lookup_prefix(self, prefix: str) -> Iterator[int]:
        """Positions whose value starts with ``prefix``."""
        return self._range(prefix, prefix + "￿")

    def lookup_pattern(self, pattern: str) -> Iterator[int]:
        """Positions whose value matches a ``*``-wildcard pattern.

        A pattern with a literal prefix narrows the scan to the prefix
        range; a leading ``*`` forces a full index scan."""
        literal_prefix = pattern.split("*", 1)[0]
        regex = re.compile(
            "^%s$"
            % "".join(
                ".*" if piece == "*" else re.escape(piece)
                for piece in re.split(r"(\*)", pattern)
            )
        )
        if literal_prefix:
            candidates = self._range_pairs(literal_prefix, literal_prefix + "￿")
        else:
            candidates = self._all_pairs()
        for value, position in candidates:
            if regex.match(value):
                yield position

    def lookup_presence(self) -> Iterator[int]:
        """Positions of every entry holding the attribute (full index)."""
        for _value, position in self._all_pairs():
            yield position

    # -- internals ----------------------------------------------------------

    def _range(self, low: str, high_exclusive: str) -> Iterator[int]:
        for _value, position in self._range_pairs(low, high_exclusive):
            yield position

    def _range_pairs(
        self, low: str, high_exclusive: str
    ) -> Iterator[Tuple[str, int]]:
        if not self._page_ids:
            return
        # bisect_left: duplicates of ``low`` may span page boundaries, so
        # start at the last page whose first value is strictly below ``low``.
        start = max(0, bisect_left(self._page_first_values, low) - 1)
        for page_index in range(start, len(self._page_ids)):
            if self._page_first_values[page_index] >= high_exclusive:
                break
            for value, position in self.pager.read(self._page_ids[page_index]):
                if value < low:
                    continue
                if value >= high_exclusive:
                    return
                yield value, position

    def _all_pairs(self) -> Iterator[Tuple[str, int]]:
        for page_id in self._page_ids:
            for pair in self.pager.read(page_id):
                yield pair

    @property
    def pages(self) -> int:
        return len(self._page_ids)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return "StringIndex(%d pairs, %d pages)" % (self.length, self.pages)
