"""Sorted runs: the sequential entry lists every algorithm consumes.

A :class:`Run` is an immutable sequence of records laid out across pager
pages.  Every operator in the engine reads its operand runs front to back
and writes its output as a new run, so scanning a run of ``n`` records
costs ``ceil(n / B)`` page reads and writing it costs ``ceil(n / B)`` page
writes -- the exact quantities the paper's theorems count.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

from .pager import Pager

__all__ = ["Run", "RunWriter", "RunReader", "run_from_iterable"]


class Run:
    """An immutable on-"disk" sequence of records.

    ``eval_errors`` counts records the producing operator *could not*
    evaluate and had to skip (e.g. an embedded-reference value that
    failed dn coercion).  It is 0 for every clean run; operators that
    can skip surface their count here so callers -- the engine's
    :class:`~repro.engine.engine.QueryResult`, EXPLAIN ``--analyze`` --
    can report it instead of silently losing data.
    """

    __slots__ = ("pager", "page_ids", "length", "eval_errors")

    def __init__(
        self,
        pager: Pager,
        page_ids: Sequence[int],
        length: int,
        eval_errors: int = 0,
    ):
        self.pager = pager
        self.page_ids = tuple(page_ids)
        self.length = length
        self.eval_errors = eval_errors

    def reader(self) -> "RunReader":
        return RunReader(self)

    def __iter__(self) -> Iterator[Any]:
        for page_id in self.page_ids:
            for record in self.pager.read(page_id):
                yield record

    def to_list(self) -> List[Any]:
        """Materialise in memory (tests and result delivery only)."""
        return list(self)

    def __len__(self) -> int:
        return self.length

    @property
    def page_count(self) -> int:
        return len(self.page_ids)

    def free(self) -> None:
        """Release the run's pages (intermediate results are dead once
        consumed)."""
        for page_id in self.page_ids:
            self.pager.free(page_id)

    def __repr__(self) -> str:
        return "Run(%d records, %d pages)" % (self.length, self.page_count)


class RunWriter:
    """Sequential writer producing a :class:`Run`."""

    def __init__(self, pager: Pager):
        self.pager = pager
        #: Skipped-record count carried onto the produced :class:`Run`.
        self.eval_errors = 0
        self._page_ids: List[int] = []
        self._buffer: List[Any] = []
        self._length = 0
        self._closed = False

    def append(self, record: Any) -> None:
        if self._closed:
            raise RuntimeError("writer already closed")
        self._buffer.append(record)
        self._length += 1
        if len(self._buffer) == self.pager.page_size:
            self._spill()

    def extend(self, records: Iterable[Any]) -> None:
        for record in records:
            self.append(record)

    def _spill(self) -> None:
        self._page_ids.append(self.pager.append_page(self._buffer))
        self._buffer = []

    def close(self) -> Run:
        if self._closed:
            raise RuntimeError("writer already closed")
        if self._buffer:
            self._spill()
        self._closed = True
        return Run(
            self.pager, self._page_ids, self._length,
            eval_errors=self.eval_errors,
        )


class RunReader:
    """Sequential reader with one-record lookahead.

    The merge and stack algorithms are expressed in terms of
    ``firstElement`` / ``nextElement`` over lists; the lookahead (``peek``)
    gives them that interface while preserving one-page-at-a-time access.
    """

    def __init__(self, run: Run):
        self._run = run
        self._page_index = 0
        self._records: List[Any] = []
        self._offset = 0
        self._advance_page()

    def _advance_page(self) -> None:
        while self._page_index < len(self._run.page_ids):
            page_id = self._run.page_ids[self._page_index]
            self._page_index += 1
            records = self._run.pager.read(page_id)
            if records:
                self._records = records
                self._offset = 0
                return
        self._records = []
        self._offset = 0

    def peek(self) -> Optional[Any]:
        """The next record without consuming it, or None at end."""
        if self._offset < len(self._records):
            return self._records[self._offset]
        return None

    def next(self) -> Any:
        record = self.peek()
        if record is None:
            raise StopIteration("run exhausted")
        self._offset += 1
        if self._offset >= len(self._records):
            self._advance_page()
        return record

    def exhausted(self) -> bool:
        return self.peek() is None

    def __iter__(self) -> Iterator[Any]:
        while not self.exhausted():
            yield self.next()


def run_from_iterable(pager: Pager, records: Iterable[Any]) -> Run:
    """Write an iterable out as a run."""
    writer = RunWriter(pager)
    writer.extend(records)
    return writer.close()
