"""The LDAP baseline: the paper's point of comparison (Sections 4.2, 8.1)."""

from .emulate import LDAPSession, emulate_children, emulate_l0
from .query import LDAPQuery, evaluate_ldap
from .url import LDAPUrl, LDAPUrlError, format_ldap_url, parse_ldap_url

__all__ = [
    "LDAPSession",
    "emulate_children",
    "emulate_l0",
    "LDAPQuery",
    "evaluate_ldap",
    "LDAPUrl",
    "LDAPUrlError",
    "format_ldap_url",
    "parse_ldap_url",
]
