"""The LDAP query language, as the paper defines it for comparison.

"We have not defined the LDAP query language formally, since it is
virtually identical, for our purposes, to L0, except for this one material
difference": an LDAP query has a *single* base dn and a *single* scope, and
only its **filters** compose with ``&``, ``|``, ``!`` -- whole queries do
not compose, and there is no set difference (Section 4.2, Example 4.1).

To keep the comparison about exactly that difference, scopes here follow
Definition 4.1 (``one``/``sub`` include the base entry), matching L0.
"""

from __future__ import annotations

from typing import Union

from ..filters.ast import Filter
from ..filters.parser import parse_filter
from ..model.dn import DN

from ..query.ast import Scope
from ..storage.runs import Run, RunWriter
from ..storage.store import DirectoryStore

__all__ = ["LDAPQuery", "evaluate_ldap"]


class LDAPQuery:
    """One LDAP search: base dn, scope, and a (possibly boolean) filter."""

    def __init__(self, base: Union[DN, str], scope: str, filter_: Union[Filter, str]):
        if isinstance(base, str):
            base = DN.parse(base)
        if scope not in Scope.ALL:
            raise ValueError("unknown scope %r" % scope)
        if isinstance(filter_, str):
            filter_ = parse_filter(filter_)
        self.base = base
        self.scope = scope
        self.filter = filter_

    def __str__(self) -> str:
        return "ldapsearch -b %r -s %s %r" % (
            str(self.base),
            self.scope,
            str(self.filter),
        )

    def __repr__(self) -> str:
        return "LDAPQuery(%s)" % self


def evaluate_ldap(store: DirectoryStore, query: LDAPQuery) -> Run:
    """Evaluate an LDAP query on the store: one clustered scan of the
    base's subtree range, with the boolean filter applied per entry."""
    writer = RunWriter(store.pager)
    base, scope = query.base, query.scope
    for entry in store.scan_subtree(base):
        if scope == Scope.BASE:
            if entry.dn != base:
                break  # the base entry leads its subtree range
            if query.filter.matches(entry, store.schema):
                writer.append(entry)
            break
        if scope == Scope.ONE and not (
            entry.dn == base or base.is_parent_of(entry.dn)
        ):
            continue
        if query.filter.matches(entry, store.schema):
            writer.append(entry)
    return writer.close()
