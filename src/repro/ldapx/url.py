"""LDAP URLs (RFC 2255, the paper's reference [19]).

An LDAP URL packs a whole search into one string::

    ldap://host:port/<dn>?<attributes>?<scope>?<filter>?<extensions>

e.g. ``ldap://ldap.att.com/dc=att,dc=com?cn,mail?sub?(surName=jagadish)``.
:func:`parse_ldap_url` parses one into an :class:`LDAPUrl`, whose
:meth:`~LDAPUrl.to_query` yields the executable
:class:`~repro.ldapx.query.LDAPQuery`; :func:`format_ldap_url` goes the
other way.  Percent-escapes are honoured in every component.
"""

from __future__ import annotations

from typing import Optional, Tuple
from urllib.parse import quote, unquote

from ..model.dn import DN
from .query import LDAPQuery

__all__ = ["LDAPUrl", "LDAPUrlError", "parse_ldap_url", "format_ldap_url"]

_SCHEMES = ("ldap", "ldaps")
_SCOPES = ("base", "one", "sub")


class LDAPUrlError(ValueError):
    """Raised on malformed LDAP URLs."""


class LDAPUrl:
    """A parsed LDAP URL."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        base: DN = DN(()),
        attributes: Tuple[str, ...] = (),
        scope: str = "base",
        filter_text: str = "(objectClass=*)",
        scheme: str = "ldap",
    ):
        if scope not in _SCOPES:
            raise LDAPUrlError("unknown scope %r" % scope)
        if scheme not in _SCHEMES:
            raise LDAPUrlError("unknown scheme %r" % scheme)
        self.scheme = scheme
        self.host = host
        self.port = port
        self.base = base
        self.attributes = tuple(attributes)
        self.scope = scope
        self.filter_text = filter_text

    def to_query(self) -> LDAPQuery:
        """The executable search this URL denotes."""
        return LDAPQuery(self.base, self.scope, self.filter_text)

    def __str__(self) -> str:
        return format_ldap_url(self)

    def __repr__(self) -> str:
        return "LDAPUrl(%r)" % str(self)

    def __eq__(self, other) -> bool:
        if not isinstance(other, LDAPUrl):
            return NotImplemented
        return (
            self.scheme,
            self.host,
            self.port,
            self.base,
            self.attributes,
            self.scope,
            self.filter_text,
        ) == (
            other.scheme,
            other.host,
            other.port,
            other.base,
            other.attributes,
            other.scope,
            other.filter_text,
        )


def parse_ldap_url(url: str) -> LDAPUrl:
    """Parse an RFC 2255 LDAP URL (extensions are accepted and ignored)."""
    url = url.strip()
    scheme, sep, rest = url.partition("://")
    if not sep or scheme.lower() not in _SCHEMES:
        raise LDAPUrlError("not an LDAP URL: %r" % url)

    hostport, _slash, tail = rest.partition("/")
    host: Optional[str] = None
    port: Optional[int] = None
    if hostport:
        host, colon, port_text = hostport.partition(":")
        host = host or None
        if colon:
            try:
                port = int(port_text)
            except ValueError:
                raise LDAPUrlError("bad port %r in %r" % (port_text, url)) from None
            if not (0 < port < 65536):
                raise LDAPUrlError("port out of range in %r" % url)

    # tail = dn?attributes?scope?filter?extensions (all optional).
    parts = tail.split("?")
    if len(parts) > 5:
        raise LDAPUrlError("too many '?' components in %r" % url)
    parts += [""] * (5 - len(parts))
    dn_text, attrs_text, scope_text, filter_text, _extensions = (
        unquote(parts[0]),
        parts[1],
        parts[2].strip().lower(),
        unquote(parts[3]),
        parts[4],
    )
    try:
        base = DN.parse(dn_text)
    except Exception as exc:
        raise LDAPUrlError("bad base dn %r: %s" % (dn_text, exc)) from exc
    attributes = tuple(
        unquote(attr.strip()) for attr in attrs_text.split(",") if attr.strip()
    )
    scope = scope_text or "base"
    if scope not in _SCOPES:
        raise LDAPUrlError("unknown scope %r in %r" % (scope, url))
    filter_text = filter_text or "(objectClass=*)"
    return LDAPUrl(
        host=host,
        port=port,
        base=base,
        attributes=attributes,
        scope=scope,
        filter_text=filter_text,
        scheme=scheme.lower(),
    )


def format_ldap_url(parsed: LDAPUrl) -> str:
    """Render back to string form (always spells out scope and filter)."""
    hostport = parsed.host or ""
    if parsed.port is not None:
        hostport += ":%d" % parsed.port
    dn_text = quote(str(parsed.base), safe="=,+ ")
    attrs = ",".join(parsed.attributes)
    filter_text = quote(parsed.filter_text, safe="()=*&|!<>")
    return "%s://%s/%s?%s?%s?%s" % (
        parsed.scheme,
        hostport,
        dn_text,
        attrs,
        parsed.scope,
        filter_text,
    )
