"""Client-side emulation of L0/L1 queries over an LDAP-only server.

Section 1's thesis: "With LDAP, DEN applications would have to specify not
only which directory entries need to be accessed, but also how to access
them, using long sequences of queries."  This module makes that cost
measurable:

- :class:`LDAPSession` plays the LDAP server: it answers single
  (base, scope, filter) searches and counts round trips, entries shipped to
  the client, and server-side I/O.
- :func:`emulate_l0` evaluates an arbitrary L0 query the only way an LDAP
  client can: one search per atomic leaf, boolean combination at the
  client (Example 4.1's two-searches-plus-client-difference).
- :func:`emulate_children` evaluates the L1 ``(c Q1 Q2)`` the way a
  navigational LDAP application must: fetch Q1's candidates, then issue one
  ``one``-scoped probe per candidate to look for a qualifying child --
  the "long sequence of queries".

The same queries run in one shot on the :class:`~repro.engine.QueryEngine`,
so benchmark E9 can put the two costs side by side.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..filters.ast import Filter
from ..model.dn import DN
from ..model.entry import Entry
from ..query.ast import And, AtomicQuery, Diff, Or, Query
from ..storage.store import DirectoryStore
from .query import LDAPQuery, evaluate_ldap

__all__ = ["LDAPSession", "emulate_l0", "emulate_children"]


class LDAPSession:
    """A client's connection to an LDAP-only directory server."""

    def __init__(self, store: DirectoryStore):
        self.store = store
        self.round_trips = 0
        self.entries_shipped = 0
        self._io_before = store.pager.stats.snapshot()

    def search(self, base: Union[DN, str], scope: str, filter_: Union[Filter, str]) -> List[Entry]:
        """One LDAP search round trip; results are shipped to the client."""
        self.round_trips += 1
        run = evaluate_ldap(self.store, LDAPQuery(base, scope, filter_))
        entries = run.to_list()
        run.free()
        self.entries_shipped += len(entries)
        return entries

    @property
    def server_io(self):
        return self.store.pager.stats.since(self._io_before)

    def __repr__(self) -> str:
        return "LDAPSession(round_trips=%d, shipped=%d)" % (
            self.round_trips,
            self.entries_shipped,
        )


def emulate_l0(session: LDAPSession, query: Query) -> List[Entry]:
    """Evaluate an L0 query through LDAP searches plus client-side set
    operations.  Raises on non-L0 nodes."""
    if isinstance(query, AtomicQuery):
        return session.search(query.base, query.scope, query.filter)
    if isinstance(query, (And, Or, Diff)):
        left = emulate_l0(session, query.left)
        right = emulate_l0(session, query.right)
        right_dns = {entry.dn for entry in right}
        if isinstance(query, And):
            return [entry for entry in left if entry.dn in right_dns]
        if isinstance(query, Diff):
            return [entry for entry in left if entry.dn not in right_dns]
        merged: Dict[DN, Entry] = {entry.dn: entry for entry in left}
        for entry in right:
            merged.setdefault(entry.dn, entry)
        return sorted(merged.values(), key=lambda entry: entry.dn.key())
    raise ValueError("not an L0 query: %r" % (query,))


def emulate_children(
    session: LDAPSession,
    first: Query,
    second_filter: Filter,
) -> List[Entry]:
    """Evaluate ``(c first (base-of-candidate ? one ? second_filter))`` the
    navigational way: ship every candidate of ``first``, then issue one
    one-level probe per candidate.  ``len(candidates) + |first's leaves|``
    round trips."""
    candidates = emulate_l0(session, first)
    selected = []
    for candidate in candidates:
        probe = session.search(candidate.dn, "one", second_filter)
        if any(entry.dn != candidate.dn for entry in probe):
            selected.append(candidate)
    return selected
