"""Aggregate selection (Section 6): terms, filters and incremental states.

The grammar of Figure 9 builds aggregate selection filters
``AggAttribute IntOp AggAttribute`` from three kinds of aggregate
attributes:

- integer constants, e.g. ``10``;
- *entry aggregates* -- one value per entry: ``agg(a)`` / ``agg($1.a)``
  (over the entry's own values of ``a``), ``agg($2.a)`` (over the values of
  ``a`` across the entry's witness set) and ``count($2)`` (size of the
  witness set);
- *entry-set aggregates* -- one value per operator application:
  ``agg1(entry-aggregate)`` folded across all entries of the first operand,
  ``count($1)`` and ``count($$)``.

Besides the definitional evaluation used by the reference semantics, this
module provides :class:`AggState`: the incremental (distributive/algebraic,
in the terminology the paper borrows from Ross et al.) accumulation that the
external-memory algorithms of Figures 3 and 6 propagate through their stacks
and scans.  ``min``/``max``/``average`` of an empty multiset are undefined;
a comparison against an undefined aggregate is false.  ``count`` of an empty
multiset is 0 and ``sum`` is 0.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..model.entry import Entry

__all__ = [
    "AGG_FUNCS",
    "INT_OPS",
    "AggError",
    "AggState",
    "Constant",
    "EntryAggregate",
    "EntrySetAggregate",
    "AggSelFilter",
    "WITNESS_COUNT_POSITIVE",
]

AGG_FUNCS = ("min", "max", "count", "sum", "average")

INT_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class AggError(ValueError):
    """Raised for ill-formed aggregate terms."""


def _numeric(values: Iterable[Any]) -> List[float]:
    """Keep the values an integer aggregate can range over."""
    out = []
    for value in values:
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out.append(value)
        elif isinstance(value, str):
            try:
                out.append(int(value))
            except ValueError:
                continue
    return out


class AggState:
    """Incremental state of one aggregate function over a multiset.

    Supports ``add`` (one value), ``merge`` (another state) and ``result``.
    ``count`` ignores the values themselves; for it, ``add_count`` bumps the
    counter by an arbitrary amount (used for count($2) propagation).
    """

    __slots__ = ("func", "_count", "_sum", "_min", "_max")

    def __init__(self, func: str):
        if func not in AGG_FUNCS:
            raise AggError("unknown aggregate function %r" % func)
        self.func = func
        self._count = 0
        self._sum = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, value: Any) -> None:
        numeric = _numeric([value])
        if self.func == "count":
            self._count += 1
            return
        if not numeric:
            return
        number = numeric[0]
        self._count += 1
        self._sum += number
        if self._min is None or number < self._min:
            self._min = number
        if self._max is None or number > self._max:
            self._max = number

    def add_count(self, amount: int) -> None:
        if self.func != "count":
            raise AggError("add_count only applies to count aggregates")
        self._count += amount

    def merge(self, other: "AggState") -> None:
        if other.func != self.func:
            raise AggError("cannot merge %s into %s" % (other.func, self.func))
        self._count += other._count
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max

    def copy(self) -> "AggState":
        clone = AggState(self.func)
        clone._count = self._count
        clone._sum = self._sum
        clone._min = self._min
        clone._max = self._max
        return clone

    def result(self) -> Optional[float]:
        if self.func == "count":
            return self._count
        if self.func == "sum":
            return self._sum
        if self._count == 0:
            return None  # min/max/average of the empty multiset
        if self.func == "min":
            return self._min
        if self.func == "max":
            return self._max
        return self._sum / self._count  # average

    def __repr__(self) -> str:
        return "AggState(%s=%r)" % (self.func, self.result())


def apply_func(func: str, values: Iterable[Any]) -> Optional[float]:
    """One-shot evaluation of an aggregate function over a multiset."""
    state = AggState(func)
    if func == "count":
        state.add_count(sum(1 for _ in values))
    else:
        for value in values:
            state.add(value)
    return state.result()


class Constant:
    """An integer constant aggregate attribute."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other):
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self):
        return hash(("Constant", self.value))


class EntryAggregate:
    """``agg(target)`` producing one value per entry.

    ``source`` selects the multiset:

    - ``"$1"`` -- values of ``attribute`` on the entry itself (also the
      meaning of a bare attribute name);
    - ``"$2"`` with an attribute -- values of ``attribute`` across the
      entry's witnesses;
    - ``"$2"`` with ``attribute=None`` -- the witness count, i.e.
      ``count($2)``.
    """

    __slots__ = ("func", "source", "attribute")

    def __init__(self, func: str, source: str, attribute: Optional[str]):
        if func not in AGG_FUNCS:
            raise AggError("unknown aggregate function %r" % func)
        if source not in ("$1", "$2"):
            raise AggError("entry aggregate source must be $1 or $2")
        if attribute is None and not (source == "$2" and func == "count"):
            raise AggError("only count($2) may omit the attribute")
        self.func = func
        self.source = source
        self.attribute = attribute

    def needs_witnesses(self) -> bool:
        return self.source == "$2"

    def evaluate(
        self,
        entry: Entry,
        witnesses: Optional[Sequence[Entry]] = None,
    ) -> Optional[float]:
        """``ea[r]`` (Definition 6.1) or ``ea[r, Rs]`` (Definition 6.2)."""
        if self.source == "$1":
            return apply_func(self.func, entry.values(self.attribute))
        if witnesses is None:
            raise AggError(
                "%s references $2 but no witness set is available "
                "(simple aggregate selection has no witnesses)" % self
            )
        if self.attribute is None:
            return len(witnesses)
        values: List[Any] = []
        for witness in witnesses:
            values.extend(witness.values(self.attribute))
        return apply_func(self.func, values)

    def fresh_state(self) -> AggState:
        return AggState(self.func)

    def witness_contribution(self, witness: Entry) -> Iterable[Any]:
        """The values a single witness feeds into this aggregate's state."""
        if self.attribute is None:
            return (1,)  # count($2): each witness contributes one unit
        return witness.values(self.attribute)

    def __str__(self) -> str:
        if self.attribute is None:
            return "count($2)"
        prefix = "" if self.source == "$1" else "$2."
        if self.source == "$1":
            prefix = "$1."
        return "%s(%s%s)" % (self.func, prefix, self.attribute)

    def __eq__(self, other):
        return (
            isinstance(other, EntryAggregate)
            and (other.func, other.source, other.attribute)
            == (self.func, self.source, self.attribute)
        )

    def __hash__(self):
        return hash(("EntryAggregate", self.func, self.source, self.attribute))


class EntrySetAggregate:
    """``agg1(ea)``, ``count($1)`` or ``count($$)`` -- one value per
    operator application.

    ``inner is None`` encodes the two counting forms: ``count($1)`` in the
    structural context and ``count($$)`` in the simple context; both count
    the entries of the first operand, so they share a representation and
    differ only in concrete syntax (kept in ``spelling``).
    """

    __slots__ = ("func", "inner", "spelling")

    def __init__(
        self,
        func: str,
        inner: Optional[EntryAggregate],
        spelling: Optional[str] = None,
    ):
        if func not in AGG_FUNCS:
            raise AggError("unknown aggregate function %r" % func)
        if inner is None and func != "count":
            raise AggError("only count may aggregate the bare entry set")
        self.func = func
        self.inner = inner
        self.spelling = spelling or ("count($$)" if inner is None else None)

    def evaluate(
        self,
        population: Sequence[Tuple[Entry, Optional[Sequence[Entry]]]],
    ) -> Optional[float]:
        """``esa[R1]`` / ``esa[R1, R2, f]``: ``population`` pairs every entry
        of the first operand with its witness set (``None`` in the simple
        context)."""
        if self.inner is None:
            return len(population)
        inner_values = [
            self.inner.evaluate(entry, witnesses)
            for entry, witnesses in population
        ]
        return apply_func(
            self.func, [v for v in inner_values if v is not None]
        )

    def __str__(self) -> str:
        if self.inner is None:
            return self.spelling
        return "%s(%s)" % (self.func, self.inner)

    def __eq__(self, other):
        return (
            isinstance(other, EntrySetAggregate)
            and (other.func, other.inner) == (self.func, self.inner)
        )

    def __hash__(self):
        return hash(("EntrySetAggregate", self.func, self.inner))


class AggSelFilter:
    """``aa1 IntOp aa2`` -- the aggregate selection filter."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left, op: str, right):
        if op not in INT_OPS:
            raise AggError("unknown integer comparison %r" % op)
        for side in (left, right):
            if not isinstance(side, (Constant, EntryAggregate, EntrySetAggregate)):
                raise AggError("bad aggregate attribute %r" % (side,))
        self.left = left
        self.op = op
        self.right = right

    def needs_witnesses(self) -> bool:
        """True iff any side references $2 (witness-dependent)."""
        return any(
            isinstance(side, EntryAggregate) and side.needs_witnesses()
            or isinstance(side, EntrySetAggregate)
            and side.inner is not None
            and side.inner.needs_witnesses()
            for side in (self.left, self.right)
        )

    def entry_set_aggregates(self) -> List[EntrySetAggregate]:
        return [
            side
            for side in (self.left, self.right)
            if isinstance(side, EntrySetAggregate)
        ]

    def test(
        self,
        entry: Entry,
        witnesses: Optional[Sequence[Entry]],
        set_values: dict,
    ) -> bool:
        """Evaluate the filter for one entry.  ``set_values`` maps each
        entry-set aggregate (by identity of the object) to its precomputed
        value for this operator application."""
        left = self._side_value(self.left, entry, witnesses, set_values)
        right = self._side_value(self.right, entry, witnesses, set_values)
        if left is None or right is None:
            return False
        return INT_OPS[self.op](left, right)

    @staticmethod
    def _side_value(side, entry, witnesses, set_values):
        if isinstance(side, Constant):
            return side.value
        if isinstance(side, EntryAggregate):
            return side.evaluate(entry, witnesses)
        return set_values[id(side)]

    def test_resolved(
        self,
        entry: Entry,
        resolved: dict,
        set_values: dict,
    ) -> bool:
        """Like :meth:`test`, but $2-sourced entry aggregates are looked up
        in ``resolved`` (a mapping from term to its already-computed value,
        as produced by the external-memory stack pass) instead of being
        recomputed from a witness list."""
        left = self._side_value_resolved(self.left, entry, resolved, set_values)
        right = self._side_value_resolved(self.right, entry, resolved, set_values)
        if left is None or right is None:
            return False
        return INT_OPS[self.op](left, right)

    @staticmethod
    def _side_value_resolved(side, entry, resolved, set_values):
        if isinstance(side, Constant):
            return side.value
        if isinstance(side, EntryAggregate):
            if side.needs_witnesses():
                return resolved[side]
            return side.evaluate(entry, None)
        return set_values[id(side)]

    def __str__(self) -> str:
        return "%s %s %s" % (self.left, self.op, self.right)

    def __eq__(self, other):
        return (
            isinstance(other, AggSelFilter)
            and (other.left, other.op, other.right)
            == (self.left, self.op, self.right)
        )

    def __hash__(self):
        return hash(("AggSelFilter", self.left, self.op, self.right))


#: ``count($2) > 0``: the aggregate filter that turns a structural aggregate
#: operator back into the plain L1 hierarchical operator (end of Section 6.2).
WITNESS_COUNT_POSITIVE = AggSelFilter(
    EntryAggregate("count", "$2", None), ">", Constant(0)
)
