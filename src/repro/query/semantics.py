"""Reference (definitional) semantics ``M(Q)`` for L0 -- L3.

This evaluator transcribes Definitions 4.1, 5.1, 6.1, 6.2 and 7.1 literally,
with no regard for efficiency: witness sets are found by scanning, which is
quadratic.  It serves three purposes:

1. an executable specification of the languages;
2. the *correctness oracle* against which the external-memory engine is
   differentially tested;
3. the quadratic baseline the benchmarks compare the paper's algorithms to.

Results are returned as lists of entries sorted by the reverse-dn key, the
canonical order of every list in this system.

One reading note: Definition 4.1 includes the base entry itself in the
``one`` and ``sub`` scopes (``dn(r) = B \\/ dn(r) is a child of B``), unlike
stock LDAP one-level search.  We follow the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..model.dn import DN, DNSyntaxError
from ..model.entry import Entry
from ..model.instance import DirectoryInstance
from .aggregates import AggSelFilter
from .ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    QueryError,
    Scope,
    SimpleAggSelect,
)

__all__ = ["evaluate", "atomic_matches", "witness_set", "ReferenceEvaluator"]


def evaluate(query: Query, instance: DirectoryInstance) -> List[Entry]:
    """Evaluate ``query`` on ``instance`` definitionally; sorted result."""
    return ReferenceEvaluator(instance).evaluate(query)


def atomic_matches(query: AtomicQuery, entry: Entry, instance) -> bool:
    """Does ``entry`` satisfy atomic query ``query`` (filter + scope)?"""
    schema = getattr(instance, "schema", None)
    if not query.filter.matches(entry, schema):
        return False
    base, dn = query.base, entry.dn
    if query.scope == Scope.BASE:
        return dn == base
    if query.scope == Scope.ONE:
        return dn == base or base.is_parent_of(dn)
    return dn == base or base.is_ancestor_of(dn)


class ReferenceEvaluator:
    """Definitional evaluator bound to one instance."""

    def __init__(self, instance: DirectoryInstance):
        self.instance = instance

    # -- dispatch ---------------------------------------------------------

    def evaluate(self, query: Query) -> List[Entry]:
        result = self._eval(query)
        return sorted(result, key=lambda e: e.dn.key())

    def _eval(self, query: Query) -> List[Entry]:
        if isinstance(query, AtomicQuery):
            return self._atomic(query)
        if isinstance(query, And):
            return self._boolean(query, "and")
        if isinstance(query, Or):
            return self._boolean(query, "or")
        if isinstance(query, Diff):
            return self._boolean(query, "diff")
        if isinstance(query, HierarchySelect):
            return self._hierarchy(query)
        if isinstance(query, SimpleAggSelect):
            return self._simple_agg(query)
        if isinstance(query, EmbeddedRef):
            return self._embedded_ref(query)
        raise QueryError("unknown query node %r" % (query,))

    # -- L0 ----------------------------------------------------------------

    def _atomic(self, query: AtomicQuery) -> List[Entry]:
        return [
            entry
            for entry in self.instance
            if atomic_matches(query, entry, self.instance)
        ]

    def _boolean(self, query, kind: str) -> List[Entry]:
        left = {e.dn: e for e in self._eval(query.left)}
        right = {e.dn for e in self._eval(query.right)}
        if kind == "and":
            return [e for dn, e in left.items() if dn in right]
        if kind == "diff":
            return [e for dn, e in left.items() if dn not in right]
        # union: left entries plus right entries not already present
        merged = dict(left)
        for entry in self._eval(query.right):
            merged.setdefault(entry.dn, entry)
        return list(merged.values())

    # -- L1 / L2 hierarchical -----------------------------------------------

    def _hierarchy(self, query: HierarchySelect) -> List[Entry]:
        first = self._eval(query.first)
        second = self._eval(query.second)
        third = self._eval(query.third) if query.third is not None else None
        population = [
            (entry, witness_set(query.op, entry, second, third))
            for entry in first
        ]
        return _select(population, query.agg)

    # -- L2 simple aggregate ---------------------------------------------------

    def _simple_agg(self, query: SimpleAggSelect) -> List[Entry]:
        operand = self._eval(query.operand)
        population: List[Tuple[Entry, Optional[List[Entry]]]] = [
            (entry, None) for entry in operand
        ]
        return _select(population, query.agg, require_witness=False)

    # -- L3 embedded references ---------------------------------------------

    def _embedded_ref(self, query: EmbeddedRef) -> List[Entry]:
        first = self._eval(query.first)
        second = self._eval(query.second)
        attribute = query.attribute
        if query.op == "vd":
            # r1 selected iff some r2 with (a, dn(r2)) in val(r1).
            by_dn: Dict[DN, Entry] = {e.dn: e for e in second}
            population = []
            for entry in first:
                witnesses = []
                for value in entry.values(attribute):
                    target = _as_dn(value)
                    if target is not None and target in by_dn:
                        witnesses.append(by_dn[target])
                population.append((entry, _dedupe_entries(witnesses)))
        else:
            # dv: r1 selected iff some r2 with (a, dn(r1)) in val(r2).
            refs: Dict[DN, List[Entry]] = {}
            for witness in second:
                for value in witness.values(attribute):
                    target = _as_dn(value)
                    if target is not None:
                        refs.setdefault(target, []).append(witness)
            population = [
                (entry, _dedupe_entries(refs.get(entry.dn, [])))
                for entry in first
            ]
        return _select(population, query.agg)


def witness_set(
    op: str,
    entry: Entry,
    second: Sequence[Entry],
    third: Optional[Sequence[Entry]] = None,
) -> List[Entry]:
    """The op-witness set ``ws_Q(entry)`` in ``second`` (Section 6.2),
    blocked by ``third`` for the path-constrained operators."""
    dn = entry.dn
    if op == "p":
        return [w for w in second if w.dn.is_parent_of(dn)]
    if op == "c":
        return [w for w in second if dn.is_parent_of(w.dn)]
    if op == "a":
        return [w for w in second if w.dn.is_ancestor_of(dn)]
    if op == "d":
        return [w for w in second if dn.is_ancestor_of(w.dn)]
    if op == "dc":
        assert third is not None
        blockers = [b.dn for b in third]
        witnesses = []
        for w in second:
            if not dn.is_ancestor_of(w.dn):
                continue
            blocked = any(
                dn.is_ancestor_of(b) and b.is_ancestor_of(w.dn) for b in blockers
            )
            if not blocked:
                witnesses.append(w)
        return witnesses
    if op == "ac":
        assert third is not None
        blockers = [b.dn for b in third]
        witnesses = []
        for w in second:
            if not w.dn.is_ancestor_of(dn):
                continue
            blocked = any(
                b.is_ancestor_of(dn) and w.dn.is_ancestor_of(b) for b in blockers
            )
            if not blocked:
                witnesses.append(w)
        return witnesses
    raise QueryError("unknown hierarchical operator %r" % op)


def _select(
    population: List[Tuple[Entry, Optional[List[Entry]]]],
    agg: Optional[AggSelFilter],
    require_witness: bool = True,
) -> List[Entry]:
    """Apply the selection step shared by all witness-producing operators:
    plain operators keep entries with non-empty witness sets; aggregate
    variants evaluate the filter."""
    if agg is None:
        return [entry for entry, witnesses in population if witnesses]
    set_values = {
        id(esa): esa.evaluate(population) for esa in agg.entry_set_aggregates()
    }
    selected = []
    for entry, witnesses in population:
        if agg.test(entry, witnesses, set_values):
            selected.append(entry)
    return selected


def _as_dn(value) -> Optional[DN]:
    if isinstance(value, DN):
        return value
    if isinstance(value, str):
        try:
            return DN.parse(value)
        except DNSyntaxError:
            # Only a value that genuinely is not a dn is "no reference";
            # anything else propagates instead of vanishing.
            return None
    return None


def _dedupe_entries(entries: List[Entry]) -> List[Entry]:
    seen = set()
    out = []
    for entry in entries:
        if entry.dn not in seen:
            seen.add(entry.dn)
            out.append(entry)
    return out
