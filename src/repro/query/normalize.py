"""Query normalisation: canonical forms for equivalence detection.

The boolean operators of L0 are set operations, so ``(& A B) = (& B A)``
and ``(| A B) = (| B A)``; commuted but equal sub-queries should be
recognised by the optimiser's idempotence rule and by query caches.
:func:`normalize` rewrites a query into a canonical form:

- operands of ``&`` and ``|`` are flattened across same-operator nesting
  and re-associated in a deterministic order (by rendered text), so any
  two queries equal modulo commutativity/associativity normalise
  identically;
- exact duplicate operands of ``&``/``|`` are dropped (idempotence);
- ``-`` (set difference) is not commutative and is left alone beyond
  normalising its operands.

Normalisation is purely syntactic and provably semantics-preserving (the
only rewrites used are the set identities above); the hypothesis test
checks that on random instances.
"""

from __future__ import annotations

from typing import List, Type, Union

from .ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    SimpleAggSelect,
)

__all__ = ["normalize", "equivalent_modulo_acd"]


def _flatten(node: Query, op: Type[Query], out: List[Query]) -> None:
    """Collect the maximal same-operator subtree's leaves."""
    if isinstance(node, op):
        _flatten(node.left, op, out)
        _flatten(node.right, op, out)
    else:
        out.append(node)


def _rebuild(op: Type[Query], operands: List[Query]) -> Query:
    """Left-deep recombination of canonically ordered operands."""
    result = operands[0]
    for operand in operands[1:]:
        result = op(result, operand)
    return result


def normalize(query: Query) -> Query:
    """The canonical form (see module docstring)."""
    if isinstance(query, AtomicQuery):
        return query
    if isinstance(query, (And, Or)):
        op = type(query)
        leaves: List[Query] = []
        _flatten(query, op, leaves)
        normalized = [normalize(leaf) for leaf in leaves]
        unique = []
        seen = set()
        for operand in sorted(normalized, key=str):
            text = str(operand)
            if text not in seen:
                seen.add(text)
                unique.append(operand)
        return _rebuild(op, unique)
    if isinstance(query, Diff):
        return Diff(normalize(query.left), normalize(query.right))
    if isinstance(query, HierarchySelect):
        return HierarchySelect(
            query.op,
            normalize(query.first),
            normalize(query.second),
            normalize(query.third) if query.third is not None else None,
            query.agg,
        )
    if isinstance(query, SimpleAggSelect):
        return SimpleAggSelect(normalize(query.operand), query.agg)
    if isinstance(query, EmbeddedRef):
        return EmbeddedRef(
            query.op,
            normalize(query.first),
            normalize(query.second),
            query.attribute,
            query.agg,
        )
    return query


def equivalent_modulo_acd(first: Query, second: Query) -> bool:
    """Do the queries agree up to associativity, commutativity and
    duplication of the boolean operators?  (Sound, not complete: deeper
    semantic equivalences are not decided.)"""
    return normalize(first) == normalize(second)
