"""Query ASTs for the language family L0 -- L3 (Figures 7--10).

Every query node is a function from directory instances to directory
instances that only *selects* entries (closure property, Section 4.1), so
the semantics of a query is fully described by its result set of entries.

Node kinds:

========================  =========  ==========================
node                      language   paper syntax
========================  =========  ==========================
:class:`AtomicQuery`      L0         ``(base ? scope ? filter)``
:class:`And` / :class:`Or` / :class:`Diff`  L0  ``(& Q Q)`` etc.
:class:`HierarchySelect`  L1/L2      ``(p Q Q [AggSel])`` ... ``(dc Q Q Q [AggSel])``
:class:`SimpleAggSelect`  L2         ``(g Q AggSel)``
:class:`EmbeddedRef`      L3         ``(vd Q Q attr [AggSel])``, ``(dv ...)``
========================  =========  ==========================

:func:`language_level` computes the smallest ``Li`` a query belongs to.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from ..filters.ast import Filter
from ..model.dn import DN
from .aggregates import AggSelFilter

__all__ = [
    "Scope",
    "Query",
    "AtomicQuery",
    "And",
    "Or",
    "Diff",
    "HierarchySelect",
    "SimpleAggSelect",
    "EmbeddedRef",
    "HIER_OPS",
    "ER_OPS",
    "language_level",
    "QueryError",
]


class QueryError(ValueError):
    """Raised for structurally invalid queries."""


class Scope:
    """Search scopes of an atomic query (Section 4.1)."""

    BASE = "base"
    ONE = "one"
    SUB = "sub"
    ALL = (BASE, ONE, SUB)


#: Binary hierarchical operators and the ternary path-constrained ones.
HIER_OPS = ("p", "c", "a", "d", "ac", "dc")
_TERNARY = ("ac", "dc")

#: Embedded-reference operators (Section 7).
ER_OPS = ("vd", "dv")


class Query:
    """Base class for all query nodes."""

    def children(self) -> Tuple["Query", ...]:
        """Sub-queries, left to right."""
        return ()

    def walk(self) -> Iterator["Query"]:
        """Pre-order traversal of the query tree."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def atomic_leaves(self) -> List["AtomicQuery"]:
        return [node for node in self.walk() if isinstance(node, AtomicQuery)]

    def node_count(self) -> int:
        """``|Q|``, the number of nodes in the query tree (Theorem 8.3)."""
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:
        return "<%s %s>" % (type(self).__name__, self)


class AtomicQuery(Query):
    """``(base ? scope ? filter)`` (Definition 4.1)."""

    __slots__ = ("base", "scope", "filter")

    def __init__(self, base: Union[DN, str], scope: str, filter_: Filter):
        if isinstance(base, str):
            base = DN.parse(base)
        if scope not in Scope.ALL:
            raise QueryError("unknown scope %r" % scope)
        self.base = base
        self.scope = scope
        self.filter = filter_

    def __str__(self) -> str:
        base = str(self.base) or ""
        return "(%s ? %s ? %s)" % (base, self.scope, self.filter)

    def __eq__(self, other):
        return (
            isinstance(other, AtomicQuery)
            and (other.base, other.scope, str(other.filter))
            == (self.base, self.scope, str(self.filter))
        )

    def __hash__(self):
        return hash(("AtomicQuery", self.base, self.scope, str(self.filter)))


class _Boolean(Query):
    """Shared shape of the three boolean query operators."""

    op = "?"

    __slots__ = ("left", "right")

    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return "(%s %s %s)" % (self.op, self.left, self.right)

    def __eq__(self, other):
        return (
            type(other) is type(self)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash((type(self).__name__, self.left, self.right))


class And(_Boolean):
    """``(& Q1 Q2)`` -- set intersection."""

    op = "&"


class Or(_Boolean):
    """``(| Q1 Q2)`` -- set union."""

    op = "|"


class Diff(_Boolean):
    """``(- Q1 Q2)`` -- set difference.  The operator LDAP lacks
    (Example 4.1)."""

    op = "-"


class HierarchySelect(Query):
    """The six hierarchical selection operators (Definition 5.1), with the
    optional aggregate selection filter of L2 (Definition 6.2).

    Without ``agg`` the node is the plain L1 operator: *r1 is selected iff
    its witness set in Q2 is non-empty* (for ``ac``/``dc`` the witness set
    excludes witnesses separated from r1 by a Q3 entry).  With ``agg`` the
    witness set is aggregated and filtered instead.
    """

    __slots__ = ("op", "first", "second", "third", "agg")

    def __init__(
        self,
        op: str,
        first: Query,
        second: Query,
        third: Optional[Query] = None,
        agg: Optional[AggSelFilter] = None,
    ):
        if op not in HIER_OPS:
            raise QueryError("unknown hierarchical operator %r" % op)
        if (op in _TERNARY) != (third is not None):
            raise QueryError(
                "%s is %s; got %s operands"
                % (op, "ternary" if op in _TERNARY else "binary", 3 if third else 2)
            )
        self.op = op
        self.first = first
        self.second = second
        self.third = third
        self.agg = agg

    def children(self) -> Tuple[Query, ...]:
        if self.third is not None:
            return (self.first, self.second, self.third)
        return (self.first, self.second)

    def __str__(self) -> str:
        parts = [self.op] + [str(child) for child in self.children()]
        if self.agg is not None:
            parts.append(str(self.agg))
        return "(%s)" % " ".join(parts)

    def __eq__(self, other):
        return (
            isinstance(other, HierarchySelect)
            and (other.op, other.first, other.second, other.third, other.agg)
            == (self.op, self.first, self.second, self.third, self.agg)
        )

    def __hash__(self):
        return hash(
            ("HierarchySelect", self.op, self.first, self.second, self.third, self.agg)
        )


class SimpleAggSelect(Query):
    """``(g Q AggSel)`` -- simple aggregate selection (Definition 6.1)."""

    __slots__ = ("operand", "agg")

    def __init__(self, operand: Query, agg: AggSelFilter):
        if agg.needs_witnesses():
            raise QueryError(
                "simple aggregate selection has no witness set; "
                "%s references $2" % agg
            )
        self.operand = operand
        self.agg = agg

    def children(self) -> Tuple[Query, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return "(g %s %s)" % (self.operand, self.agg)

    def __eq__(self, other):
        return (
            isinstance(other, SimpleAggSelect)
            and (other.operand, other.agg) == (self.operand, self.agg)
        )

    def __hash__(self):
        return hash(("SimpleAggSelect", self.operand, self.agg))


class EmbeddedRef(Query):
    """``(vd Q1 Q2 a [AggSel])`` and ``(dv Q1 Q2 a [AggSel])``
    (Definition 7.1).

    ``vd`` selects entries of Q1 whose attribute ``a`` embeds the dn of some
    Q2 entry; ``dv`` selects entries of Q1 whose dn is embedded in attribute
    ``a`` of some Q2 entry.
    """

    __slots__ = ("op", "first", "second", "attribute", "agg")

    def __init__(
        self,
        op: str,
        first: Query,
        second: Query,
        attribute: str,
        agg: Optional[AggSelFilter] = None,
    ):
        if op not in ER_OPS:
            raise QueryError("unknown embedded-reference operator %r" % op)
        if not attribute:
            raise QueryError("embedded-reference operator needs an attribute")
        self.op = op
        self.first = first
        self.second = second
        self.attribute = attribute
        self.agg = agg

    def children(self) -> Tuple[Query, ...]:
        return (self.first, self.second)

    def __str__(self) -> str:
        parts = [self.op, str(self.first), str(self.second), self.attribute]
        if self.agg is not None:
            parts.append(str(self.agg))
        return "(%s)" % " ".join(parts)

    def __eq__(self, other):
        return (
            isinstance(other, EmbeddedRef)
            and (other.op, other.first, other.second, other.attribute, other.agg)
            == (self.op, self.first, self.second, self.attribute, self.agg)
        )

    def __hash__(self):
        return hash(
            ("EmbeddedRef", self.op, self.first, self.second, self.attribute, self.agg)
        )


def language_level(query: Query) -> int:
    """The smallest ``i`` such that ``query`` is an Li query.

    L0: atomic + boolean; L1: adds hierarchical selection without aggregate
    filters; L2: adds any aggregate selection; L3: adds embedded references.
    """
    level = 0
    for node in query.walk():
        if isinstance(node, EmbeddedRef):
            level = max(level, 3)
        elif isinstance(node, SimpleAggSelect):
            level = max(level, 2)
        elif isinstance(node, HierarchySelect):
            level = max(level, 2 if node.agg is not None else 1)
    return level
