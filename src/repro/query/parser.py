"""Parser for the concrete S-expression query syntax (Figures 7--10).

The surface syntax follows the paper::

    (dc=att, dc=com ? sub ? surName=jagadish)                  -- atomic
    (- (dc=att, dc=com ? sub ? F1) (dc=research, ... ? sub ? F1))
    (c Q1 Q2)  (p Q1 Q2)  (a Q1 Q2)  (d Q1 Q2)
    (ac Q1 Q2 Q3)  (dc Q1 Q2 Q3)
    (g Q count(SLAPVPRef) > 1)
    (c Q1 Q2 count($2) > 10)
    (vd Q1 Q2 SLATPRef)  (dv Q1 Q2 SLADSActRef [AggSel])

Atomic queries are ``(base ? scope ? filter)`` with ``?`` separating the
three parts (an empty base is the null dn).  Aggregate selection filters
follow Figure 9: e.g. ``count($2) > 10``,
``min(SLARulePriority)=min(min(SLARulePriority))``, ``count($$) >= 5``.

Known limitation of the concrete syntax (inherited from the paper's
notation): a literal ``?`` inside a dn or filter value cannot be escaped;
such queries must be built programmatically
(:mod:`repro.query.builder`), which has no such restriction.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..filters.parser import parse_atomic_filter
from ..model.dn import DN
from .aggregates import (
    AGG_FUNCS,
    AggError,
    AggSelFilter,
    Constant,
    EntryAggregate,
    EntrySetAggregate,
)
from .ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    SimpleAggSelect,
)

__all__ = ["parse_query", "parse_aggsel", "QueryParseError"]


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


_BOOLEAN = {"&": And, "|": Or, "-": Diff}
_HIER_BINARY = ("p", "c", "a", "d")
_HIER_TERNARY = ("ac", "dc")
_ER = ("vd", "dv")
_OPERATORS = set(_BOOLEAN) | set(_HIER_BINARY) | set(_HIER_TERNARY) | set(_ER) | {"g"}


def parse_query(text: str) -> Query:
    """Parse one query; raises :class:`QueryParseError` on any leftover."""
    query, index = _parse(text, _skip_ws(text, 0))
    index = _skip_ws(text, index)
    if index != len(text):
        raise QueryParseError("trailing input after query: %r" % text[index:])
    return query


def _skip_ws(text: str, index: int) -> int:
    while index < len(text) and text[index].isspace():
        index += 1
    return index


def _parse(text: str, index: int) -> Tuple[Query, int]:
    if index >= len(text) or text[index] != "(":
        raise QueryParseError("expected '(' at position %d in %r" % (index, text))
    inner = _skip_ws(text, index + 1)
    token, after = _read_token(text, inner)
    if token in _OPERATORS and _next_is_group(text, after):
        return _parse_operator(token, text, after)
    return _parse_atomic(text, index)


def _read_token(text: str, index: int) -> Tuple[str, int]:
    start = index
    while index < len(text) and not text[index].isspace() and text[index] not in "()":
        index += 1
    return text[start:index], index


def _next_is_group(text: str, index: int) -> bool:
    index = _skip_ws(text, index)
    return index < len(text) and text[index] == "("


def _parse_operator(op: str, text: str, index: int) -> Tuple[Query, int]:
    if op in _BOOLEAN:
        left, index = _parse(text, _skip_ws(text, index))
        right, index = _parse(text, _skip_ws(text, index))
        index = _expect_close(text, index)
        return _BOOLEAN[op](left, right), index

    if op == "g":
        operand, index = _parse(text, _skip_ws(text, index))
        agg_text, index = _until_close(text, index)
        if not agg_text.strip():
            raise QueryParseError("(g Q AggSel) requires an aggregate filter")
        return SimpleAggSelect(operand, parse_aggsel(agg_text)), index

    if op in _HIER_BINARY or op in _HIER_TERNARY:
        first, index = _parse(text, _skip_ws(text, index))
        second, index = _parse(text, _skip_ws(text, index))
        third: Optional[Query] = None
        if op in _HIER_TERNARY:
            third, index = _parse(text, _skip_ws(text, index))
        agg_text, index = _until_close(text, index)
        agg = parse_aggsel(agg_text) if agg_text.strip() else None
        return HierarchySelect(op, first, second, third, agg), index

    # vd / dv
    first, index = _parse(text, _skip_ws(text, index))
    second, index = _parse(text, _skip_ws(text, index))
    index = _skip_ws(text, index)
    attribute, index = _read_token(text, index)
    if not attribute:
        raise QueryParseError("(%s Q Q attr) is missing the attribute name" % op)
    agg_text, index = _until_close(text, index)
    agg = parse_aggsel(agg_text) if agg_text.strip() else None
    return EmbeddedRef(op, first, second, attribute, agg), index


def _expect_close(text: str, index: int) -> int:
    index = _skip_ws(text, index)
    if index >= len(text) or text[index] != ")":
        raise QueryParseError("expected ')' at position %d in %r" % (index, text))
    return index + 1


def _until_close(text: str, index: int) -> Tuple[str, int]:
    """Collect raw text (possibly containing balanced parens, as aggregate
    terms do) until the enclosing operator's closing paren."""
    depth = 0
    start = index
    while index < len(text):
        ch = text[index]
        if ch == "(":
            depth += 1
        elif ch == ")":
            if depth == 0:
                return text[start:index], index + 1
            depth -= 1
        index += 1
    raise QueryParseError("unbalanced parentheses near %r" % text[start:])


def _parse_atomic(text: str, index: int) -> Tuple[Query, int]:
    body, index = _until_close(text, index + 1)
    parts = body.split("?")
    if len(parts) != 3:
        raise QueryParseError(
            "atomic query must be (base ? scope ? filter); got %r" % body
        )
    base_text, scope_text, filter_text = (part.strip() for part in parts)
    base = DN.parse(base_text) if base_text else DN(())
    scope = scope_text.lower()
    try:
        filter_ = parse_atomic_filter(filter_text)
    except ValueError as exc:
        raise QueryParseError("bad atomic filter %r: %s" % (filter_text, exc)) from exc
    try:
        return AtomicQuery(base, scope, filter_), index
    except ValueError as exc:
        raise QueryParseError(str(exc)) from exc


# -- aggregate selection filters ------------------------------------------------


def parse_aggsel(text: str) -> AggSelFilter:
    """Parse ``AggAttribute IntOp AggAttribute`` (Figure 9)."""
    left_text, op, right_text = _split_on_int_op(text)
    try:
        return AggSelFilter(
            _parse_agg_attribute(left_text),
            op,
            _parse_agg_attribute(right_text),
        )
    except AggError as exc:
        raise QueryParseError("bad aggregate filter %r: %s" % (text, exc)) from exc


def _split_on_int_op(text: str) -> Tuple[str, str, str]:
    """Find the top-level (outside parens) integer comparison operator."""
    depth = 0
    index = 0
    while index < len(text):
        ch = text[index]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0:
            two = text[index : index + 2]
            if two in ("<=", ">=", "!="):
                return text[:index], two, text[index + 2 :]
            if ch in "<>=":
                return text[:index], ch, text[index + 1 :]
        index += 1
    raise QueryParseError("no comparison operator in aggregate filter %r" % text)


def _parse_agg_attribute(text: str):
    text = text.strip()
    if not text:
        raise QueryParseError("empty aggregate attribute")
    try:
        return Constant(int(text))
    except ValueError:
        pass
    func, args = _split_call(text)
    if func not in AGG_FUNCS:
        raise QueryParseError("unknown aggregate function %r in %r" % (func, text))
    args = args.strip()
    if args == "$$":
        return EntrySetAggregate("count", None, spelling="count($$)") if func == "count" else _bad(text)
    if args == "$1":
        return EntrySetAggregate("count", None, spelling="count($1)") if func == "count" else _bad(text)
    if args == "$2":
        return EntryAggregate("count", "$2", None) if func == "count" else _bad(text)
    if "(" in args:
        inner = _parse_agg_attribute(args)
        if not isinstance(inner, EntryAggregate):
            raise QueryParseError(
                "entry-set aggregate must wrap an entry aggregate: %r" % text
            )
        return EntrySetAggregate(func, inner)
    # ModAttrName: attr | $1.attr | $2.attr  (bare attr means the entry's own)
    if args.startswith("$1."):
        return EntryAggregate(func, "$1", args[3:])
    if args.startswith("$2."):
        return EntryAggregate(func, "$2", args[3:])
    return EntryAggregate(func, "$1", args)


def _split_call(text: str) -> Tuple[str, str]:
    open_index = text.find("(")
    if open_index <= 0 or not text.endswith(")"):
        raise QueryParseError("expected agg(arg) form, got %r" % text)
    return text[:open_index].strip(), text[open_index + 1 : -1]


def _bad(text: str):
    raise QueryParseError(
        "only count may be applied to $$/$1/$2 directly: %r" % text
    )
