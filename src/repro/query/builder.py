"""A fluent Python API for building L0--L3 queries.

The S-expression syntax is the paper's; programs prefer combinators::

    from repro.query.builder import Q

    units   = Q.sub("dc=att, dc=com").where("objectClass=organizationalUnit")
    people  = Q.sub("dc=att, dc=com").where("surName=jagadish")
    query   = units.with_child(people)                      # Example 5.1
    busy    = units.with_child(people, having="count($2) > 10")   # Example 6.2
    except_ = Q.sub("dc=att, dc=com").where("surName=*") - Q.sub(
        "dc=research, dc=att, dc=com").where("surName=*")   # Example 4.1

Every combinator returns a :class:`QueryBuilder` wrapping an immutable AST
node (``.build()`` or ``.query`` to unwrap); ``&``, ``|`` and ``-`` are the
boolean operators.  Aggregate filters may be given as strings (parsed with
the paper's grammar) or :class:`~repro.query.aggregates.AggSelFilter`
objects.
"""

from __future__ import annotations

from typing import Optional, Union

from ..filters.ast import Filter, MatchAll
from ..filters.parser import parse_atomic_filter
from ..model.dn import DN, ROOT_DN
from .aggregates import AggSelFilter
from .ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    Scope,
    SimpleAggSelect,
)
from .parser import parse_aggsel

__all__ = ["Q", "QueryBuilder"]

_AggLike = Union[str, AggSelFilter, None]
_FilterLike = Union[str, Filter]
_QueryLike = Union["QueryBuilder", Query]


def _agg(value: _AggLike) -> Optional[AggSelFilter]:
    if value is None or isinstance(value, AggSelFilter):
        return value
    return parse_aggsel(value)


def _filter(value: _FilterLike) -> Filter:
    if isinstance(value, Filter):
        return value
    return parse_atomic_filter(value)


def _query(value: _QueryLike) -> Query:
    if isinstance(value, QueryBuilder):
        return value.query
    return value


class QueryBuilder:
    """An immutable wrapper around a query AST node."""

    __slots__ = ("query",)

    def __init__(self, query: Query):
        object.__setattr__(self, "query", query)

    def __setattr__(self, name, value):
        raise AttributeError("QueryBuilder is immutable")

    def build(self) -> Query:
        return self.query

    # -- boolean operators ----------------------------------------------------

    def __and__(self, other: _QueryLike) -> "QueryBuilder":
        return QueryBuilder(And(self.query, _query(other)))

    def __or__(self, other: _QueryLike) -> "QueryBuilder":
        return QueryBuilder(Or(self.query, _query(other)))

    def __sub__(self, other: _QueryLike) -> "QueryBuilder":
        return QueryBuilder(Diff(self.query, _query(other)))

    # -- hierarchical selection ----------------------------------------------

    def with_parent(self, other: _QueryLike, having: _AggLike = None) -> "QueryBuilder":
        """Entries of self with a parent in ``other`` -- ``(p self other)``."""
        return QueryBuilder(
            HierarchySelect("p", self.query, _query(other), None, _agg(having))
        )

    def with_child(self, other: _QueryLike, having: _AggLike = None) -> "QueryBuilder":
        """``(c self other [having])``."""
        return QueryBuilder(
            HierarchySelect("c", self.query, _query(other), None, _agg(having))
        )

    def with_ancestor(self, other: _QueryLike, having: _AggLike = None) -> "QueryBuilder":
        """``(a self other [having])``."""
        return QueryBuilder(
            HierarchySelect("a", self.query, _query(other), None, _agg(having))
        )

    def with_descendant(self, other: _QueryLike, having: _AggLike = None) -> "QueryBuilder":
        """``(d self other [having])``."""
        return QueryBuilder(
            HierarchySelect("d", self.query, _query(other), None, _agg(having))
        )

    def with_nearest_ancestor(
        self, other: _QueryLike, unless: _QueryLike, having: _AggLike = None
    ) -> "QueryBuilder":
        """``(ac self other unless [having])`` -- ancestors in ``other``
        not separated from self by an ``unless`` entry."""
        return QueryBuilder(
            HierarchySelect(
                "ac", self.query, _query(other), _query(unless), _agg(having)
            )
        )

    def with_nearest_descendant(
        self, other: _QueryLike, unless: _QueryLike, having: _AggLike = None
    ) -> "QueryBuilder":
        """``(dc self other unless [having])``."""
        return QueryBuilder(
            HierarchySelect(
                "dc", self.query, _query(other), _query(unless), _agg(having)
            )
        )

    # -- aggregates -----------------------------------------------------------

    def having(self, agg: Union[str, AggSelFilter]) -> "QueryBuilder":
        """Simple aggregate selection -- ``(g self agg)``."""
        return QueryBuilder(SimpleAggSelect(self.query, _agg(agg)))

    # -- embedded references ---------------------------------------------------

    def referencing(
        self, other: _QueryLike, attribute: str, having: _AggLike = None
    ) -> "QueryBuilder":
        """Entries of self whose ``attribute`` embeds a dn from ``other``
        -- ``(vd self other attribute [having])``."""
        return QueryBuilder(
            EmbeddedRef("vd", self.query, _query(other), attribute, _agg(having))
        )

    def referenced_by(
        self, other: _QueryLike, attribute: str, having: _AggLike = None
    ) -> "QueryBuilder":
        """Entries of self whose dn is embedded in ``attribute`` of some
        ``other`` entry -- ``(dv self other attribute [having])``."""
        return QueryBuilder(
            EmbeddedRef("dv", self.query, _query(other), attribute, _agg(having))
        )

    def __str__(self) -> str:
        return str(self.query)

    def __repr__(self) -> str:
        return "QueryBuilder(%s)" % self.query

    def __eq__(self, other) -> bool:
        if isinstance(other, QueryBuilder):
            return self.query == other.query
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.query)


class _Entrypoint:
    """The ``Q`` facade: atomic query constructors."""

    @staticmethod
    def base(dn: Union[DN, str], filter_: _FilterLike = MatchAll()) -> QueryBuilder:
        """``(dn ? base ? filter)``."""
        return QueryBuilder(AtomicQuery(dn, Scope.BASE, _filter(filter_)))

    @staticmethod
    def one(dn: Union[DN, str], filter_: _FilterLike = MatchAll()) -> QueryBuilder:
        """``(dn ? one ? filter)``."""
        return QueryBuilder(AtomicQuery(dn, Scope.ONE, _filter(filter_)))

    @staticmethod
    def sub(dn: Union[DN, str] = ROOT_DN, filter_: _FilterLike = MatchAll()) -> QueryBuilder:
        """``(dn ? sub ? filter)`` -- the workhorse."""
        return QueryBuilder(AtomicQuery(dn, Scope.SUB, _filter(filter_)))

    @staticmethod
    def everything() -> QueryBuilder:
        """The whole instance: ``(null-dn ? sub ? objectClass=*)``."""
        return QueryBuilder(AtomicQuery(ROOT_DN, Scope.SUB, MatchAll()))

    def __call__(self, text: str) -> QueryBuilder:
        """Wrap a query given in the paper's concrete syntax."""
        from .parser import parse_query

        return QueryBuilder(parse_query(text))


#: The public facade: ``Q.sub("dc=com", "kind=alpha")`` or
#: ``Q.sub("dc=com").where("kind=alpha")``.
Q = _Entrypoint()


def _where(self: QueryBuilder, filter_: _FilterLike) -> QueryBuilder:
    """Replace the filter of an atomic builder (``Q.sub(dn).where(f)``)."""
    node = self.query
    if not isinstance(node, AtomicQuery):
        raise TypeError("where() applies to atomic queries only")
    return QueryBuilder(AtomicQuery(node.base, node.scope, _filter(filter_)))


QueryBuilder.where = _where
