"""The query language family L0 -- L3 (Sections 4--7)."""

from .aggregates import (
    AGG_FUNCS,
    INT_OPS,
    WITNESS_COUNT_POSITIVE,
    AggError,
    AggSelFilter,
    AggState,
    Constant,
    EntryAggregate,
    EntrySetAggregate,
)
from .ast import (
    ER_OPS,
    HIER_OPS,
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    Query,
    QueryError,
    Scope,
    SimpleAggSelect,
    language_level,
)
from .builder import Q, QueryBuilder
from .normalize import equivalent_modulo_acd, normalize
from .parser import QueryParseError, parse_aggsel, parse_query
from .semantics import ReferenceEvaluator, atomic_matches, evaluate, witness_set
from .typecheck import QueryTypeError, check_query, validate_query

__all__ = [
    "AGG_FUNCS",
    "INT_OPS",
    "WITNESS_COUNT_POSITIVE",
    "AggError",
    "AggSelFilter",
    "AggState",
    "Constant",
    "EntryAggregate",
    "EntrySetAggregate",
    "ER_OPS",
    "HIER_OPS",
    "And",
    "AtomicQuery",
    "Diff",
    "EmbeddedRef",
    "HierarchySelect",
    "Or",
    "Query",
    "QueryError",
    "Scope",
    "SimpleAggSelect",
    "language_level",
    "Q",
    "QueryBuilder",
    "equivalent_modulo_acd",
    "normalize",
    "QueryParseError",
    "parse_aggsel",
    "parse_query",
    "ReferenceEvaluator",
    "atomic_matches",
    "evaluate",
    "witness_set",
    "QueryTypeError",
    "check_query",
    "validate_query",
]
