"""Schema-aware query validation.

The languages are typed through the schema: comparisons require
``tau(a) = int``, wildcards require ``tau(a) = string`` (Section 4.1), and
the embedded-reference operators only make sense on
``distinguishedName``-typed attributes (Section 7).  An ill-typed atomic
filter is not an *error* at evaluation time -- it simply never matches --
but a client almost certainly misspelled something, so real servers warn.
This module provides that check:

- :func:`validate_query` returns a list of human-readable problems
  (empty = clean);
- :func:`check_query` raises :class:`QueryTypeError` on the first problem
  (strict mode, e.g. for the service's front door).
"""

from __future__ import annotations

from typing import List

from ..filters.ast import (
    Comparison,
    Filter,
    FilterAnd,
    FilterNot,
    FilterOr,
    MatchAll,
    Substring,
)
from ..model.schema import DirectorySchema
from .aggregates import AggSelFilter, EntryAggregate, EntrySetAggregate
from .ast import AtomicQuery, EmbeddedRef, HierarchySelect, Query, SimpleAggSelect

__all__ = ["validate_query", "check_query", "QueryTypeError"]


class QueryTypeError(ValueError):
    """A query refers to the schema inconsistently."""


def validate_query(query: Query, schema: DirectorySchema) -> List[str]:
    """Every typing problem in the query, most significant first."""
    problems: List[str] = []
    for node in query.walk():
        if isinstance(node, AtomicQuery):
            _check_filter(node.filter, schema, problems)
        elif isinstance(node, EmbeddedRef):
            _check_ref_attribute(node.attribute, schema, problems)
            if node.agg is not None:
                _check_aggsel(node.agg, schema, problems)
        elif isinstance(node, HierarchySelect):
            if node.agg is not None:
                _check_aggsel(node.agg, schema, problems)
        elif isinstance(node, SimpleAggSelect):
            _check_aggsel(node.agg, schema, problems)
    return problems


def check_query(query: Query, schema: DirectorySchema) -> None:
    """Raise :class:`QueryTypeError` on the first problem."""
    problems = validate_query(query, schema)
    if problems:
        raise QueryTypeError(problems[0])


def _check_filter(filter_: Filter, schema: DirectorySchema, problems: List[str]) -> None:
    if isinstance(filter_, MatchAll):
        return
    if isinstance(filter_, (FilterAnd, FilterOr)):
        for operand in filter_.operands:
            _check_filter(operand, schema, problems)
        return
    if isinstance(filter_, FilterNot):
        _check_filter(filter_.operand, schema, problems)
        return
    attribute = getattr(filter_, "attribute", None)
    if attribute is None:
        return
    if not schema.has_attribute(attribute):
        problems.append("filter uses undeclared attribute %r" % attribute)
        return
    type_name = schema.type_name_of(attribute)
    if isinstance(filter_, Comparison) and type_name != "int":
        problems.append(
            "comparison %s requires an int attribute but tau(%s) = %s"
            % (filter_, attribute, type_name)
        )
    if isinstance(filter_, Substring) and type_name != "string":
        problems.append(
            "wildcard %s requires a string attribute but tau(%s) = %s"
            % (filter_, attribute, type_name)
        )


def _check_ref_attribute(attribute: str, schema: DirectorySchema, problems: List[str]) -> None:
    if not schema.has_attribute(attribute):
        problems.append(
            "embedded-reference operator uses undeclared attribute %r" % attribute
        )
        return
    type_name = schema.type_name_of(attribute)
    if type_name != "distinguishedName":
        problems.append(
            "vd/dv need a distinguishedName attribute but tau(%s) = %s"
            % (attribute, type_name)
        )


def _check_aggsel(agg: AggSelFilter, schema: DirectorySchema, problems: List[str]) -> None:
    for side in (agg.left, agg.right):
        terms = []
        if isinstance(side, EntryAggregate):
            terms.append(side)
        elif isinstance(side, EntrySetAggregate) and side.inner is not None:
            terms.append(side.inner)
        for term in terms:
            if term.attribute is None:
                continue
            if not schema.has_attribute(term.attribute):
                problems.append(
                    "aggregate %s uses undeclared attribute %r" % (term, term.attribute)
                )
                continue
            type_name = schema.type_name_of(term.attribute)
            if term.func in ("min", "max", "sum", "average") and type_name != "int":
                problems.append(
                    "aggregate %s needs int values but tau(%s) = %s"
                    % (term, term.attribute, type_name)
                )
