"""E16 (extension): update-log compaction is one linear co-scan.

The differential update scheme must not disturb the engine's bounds:
compacting a log of u mutations into a master of N entries costs
O((N + u)/B) page accesses, so the per-mutation cost amortises to O(1/B).
"""

from repro.storage.maintenance import UpdatableDirectory
from repro.workload import balanced_instance

from ._util import assert_linear, record

SIZES = (1_000, 2_000, 4_000, 8_000)
LOG_SIZE = 200


def _compaction_cost(size):
    instance = balanced_instance(size, fanout=4, seed=16)
    directory = UpdatableDirectory.from_instance(
        instance, page_size=16, buffer_pages=8, auto_compact_at=10 ** 9
    )
    root = next(iter(instance.roots())).dn
    victims = [e.dn for e in list(instance)[::7][:LOG_SIZE // 4]
               if e.dn != root and not any(True for _ in instance.children_of(e.dn))]
    for index in range(LOG_SIZE // 2):
        directory.add(root.child("name=new%04d" % index), ["node"],
                      name="new%04d" % index, kind="delta")
    for dn in victims:
        directory.delete(dn)
    pager = directory.store.pager
    pager.flush()
    before = pager.stats.snapshot()
    directory.compact()
    delta = pager.stats.since(before)
    return len(directory.store), delta.logical_reads + delta.logical_writes


def test_e16_compaction_linear(benchmark):
    rows = []
    costs = []
    for size in SIZES:
        stored, logical = _compaction_cost(size)
        costs.append(logical)
        rows.append((size, LOG_SIZE, stored, logical, round(logical / size, 3)))
    assert_linear(SIZES, costs)
    record(
        benchmark,
        "E16: compaction I/O vs master size (log of ~%d mutations)" % LOG_SIZE,
        ("entries", "log", "stored after", "logical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _compaction_cost(2_000), rounds=2, iterations=1)
