"""E17 (extension): client-chased referrals vs server-side federation
(Section 8.3's strategy), same data, same network counters.

Expected shape: both return identical answers; referral chasing costs the
client one extra round trip per referral hop and ships subordinate results
to the *client* rather than between servers, so its message count grows
with the number of naming contexts the scope spans while the federation's
grows only with the remote atomic leaves.
"""

from repro.dist import FederatedDirectory
from repro.dist.referral import ReferralClient
from repro.workload import balanced_instance

from ._util import record

SIZES = (1_000, 2_000, 4_000)


def _setup(size):
    instance = balanced_instance(size, fanout=4, seed=17)
    root = next(iter(instance.roots())).dn
    subnets = [e.dn for e in instance if e.dn.depth() == 2][:4]
    assignments = {"hq": [root]}
    for index, subnet in enumerate(subnets):
        assignments["subnet%d" % index] = [subnet]
    federation = FederatedDirectory.partition(instance, assignments, page_size=16)
    return instance, federation, root


def test_e17_referral_vs_federation(benchmark):
    rows = []
    for size in SIZES:
        _instance, federation, root = _setup(size)
        query_text = "(%s ? sub ? kind=alpha)" % root

        network = federation.network
        before = network.messages
        fed_result = federation.query("hq", query_text)
        fed_messages = network.messages - before

        before = network.messages
        client = ReferralClient(federation, home="subnet0")
        referral_entries = client.search(query_text)
        referral_messages = network.messages - before

        assert [str(e.dn) for e in referral_entries] == fed_result.dns()
        rows.append((size, len(fed_result), fed_messages, referral_messages))
        # The referral path pays at least the federation's message count.
        assert referral_messages >= fed_messages
    record(
        benchmark,
        "E17: federation (server-side) vs referral chasing (client-side)",
        ("entries", "answer", "federation msgs", "referral msgs"),
        rows,
    )
    benchmark.pedantic(
        lambda: ReferralClient(_setup(1_000)[1], home="subnet0").search(
            "(%s ? sub ? kind=alpha)" % _setup(1_000)[2]
        ),
        rounds=2,
        iterations=1,
    )
