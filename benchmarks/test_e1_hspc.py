"""E1 (Theorem 5.1 / Figure 2): ComputeHSPC runs in linear I/O; the naive
nested-loop strategy is quadratic.

Expected shape: doubling |L1|+|L2| doubles the stack algorithm's page
accesses, quadruples the naive baseline's, and the gap widens with size.
"""

from repro.engine.hsagg import hierarchical_select
from repro.engine.naive import naive_hierarchical_select

from ._util import (
    as_runs,
    assert_linear,
    assert_superlinear,
    fresh_pager,
    measure_io,
    operand_lists,
    record,
)

SIZES = (1_000, 2_000, 4_000, 8_000)
NAIVE_SIZES = (250, 500, 1_000)


def _stack_cost(op, size):
    _instance, subsets = operand_lists(seed=1, size=size)
    pager = fresh_pager()
    first, second = as_runs(pager, subsets)
    _result, logical, physical = measure_io(
        pager, lambda: hierarchical_select(pager, op, first, second)
    )
    return logical, physical


def _naive_cost(op, size):
    _instance, subsets = operand_lists(seed=1, size=size)
    pager = fresh_pager()
    first, second = as_runs(pager, subsets)
    _result, logical, _physical = measure_io(
        pager, lambda: naive_hierarchical_select(pager, op, first, second)
    )
    return logical


def test_e1_hspc_linear_io(benchmark):
    rows = []
    for op in ("p", "c"):
        costs = []
        for size in SIZES:
            logical, physical = _stack_cost(op, size)
            costs.append(logical)
            rows.append((op, size, logical, physical, round(logical / size, 3)))
        assert_linear(SIZES, costs)
    record(
        benchmark,
        "E1: ComputeHSPC I/O vs input size",
        ("op", "entries", "logical I/O", "physical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _stack_cost("c", 2_000), rounds=3, iterations=1)


def test_e1_naive_is_quadratic(benchmark):
    rows = []
    naive_costs = []
    stack_costs = []
    for size in NAIVE_SIZES:
        naive = _naive_cost("c", size)
        stack, _ = _stack_cost("c", size)
        naive_costs.append(naive)
        stack_costs.append(stack)
        rows.append((size, naive, stack, round(naive / max(stack, 1), 1)))
    assert_superlinear(NAIVE_SIZES, naive_costs)
    assert_linear(NAIVE_SIZES, stack_costs)
    assert naive_costs[-1] > 10 * stack_costs[-1]
    record(
        benchmark,
        "E1: naive vs stack (children)",
        ("entries", "naive I/O", "stack I/O", "speedup"),
        rows,
    )
    benchmark.pedantic(lambda: _naive_cost("c", 250), rounds=2, iterations=1)
