"""E11 (Section 8.3): distributed evaluation ships atomic *results*, not
directories.

One logical directory is split across a headquarters server plus k
delegated subnet servers.  Expected shape: messages stay at 2 per remote
atomic leaf regardless of directory size; entries shipped equal the remote
leaves' result sizes; issuing at the data's owner ships nothing."""

from repro.dist import FederatedDirectory
from repro.engine import QueryEngine
from repro.workload import balanced_instance

from ._util import record

SIZES = (1_000, 2_000, 4_000)

QUERY_TEMPLATE = "(%s ? sub ? kind=alpha)"


def _setup(size):
    instance = balanced_instance(size, fanout=4, seed=11)
    root = next(iter(instance.roots())).dn
    # Delegate each depth-2 subtree to its own server.
    subnets = [e.dn for e in instance if e.dn.depth() == 2][:4]
    assignments = {"hq": [root]}
    for index, subnet in enumerate(subnets):
        assignments["subnet%d" % index] = [subnet]
    federation = FederatedDirectory.partition(instance, assignments, page_size=16)
    return instance, federation, root, subnets


def test_e11_shipping_proportional_to_results(benchmark):
    rows = []
    for size in SIZES:
        instance, federation, root, subnets = _setup(size)
        target = subnets[0]
        expected = sum(
            1 for e in instance
            if target.is_prefix_of(e.dn) and "alpha" in map(str, e.values("kind"))
        )
        remote = federation.query("hq", QUERY_TEMPLATE % target)
        local = federation.query("subnet0", QUERY_TEMPLATE % target)
        assert remote.dns() == local.dns()
        assert len(remote) == expected
        rows.append((size, expected, remote.messages, remote.entries_shipped,
                     local.messages, local.entries_shipped))
        assert remote.messages == 2           # request + response, size-independent
        assert remote.entries_shipped == expected
        assert local.messages == 0            # owner answers locally
    record(
        benchmark,
        "E11a: remote vs local atomic query",
        ("entries", "answer", "remote msgs", "remote shipped",
         "local msgs", "local shipped"),
        rows,
    )
    benchmark.pedantic(
        lambda: _setup(1_000)[1].query("hq", QUERY_TEMPLATE % _setup(1_000)[3][0]),
        rounds=2,
        iterations=1,
    )


def test_e11_spanning_query_matches_centralised(benchmark):
    rows = []
    for size in SIZES:
        instance, federation, root, _subnets = _setup(size)
        central = QueryEngine.from_instance(instance, page_size=16)
        query = "(c ( ? sub ? kind=alpha) ( ? sub ? weight>=40))"
        distributed = federation.query("hq", query)
        assert distributed.dns() == central.run(query).dns()
        rows.append((size, len(distributed), distributed.messages,
                     distributed.entries_shipped))
    record(
        benchmark,
        "E11b: spanning L1 query, distributed == centralised",
        ("entries", "answer", "messages", "entries shipped"),
        rows,
    )
    benchmark.pedantic(
        lambda: _setup(1_000)[1].query(
            "hq", "(c ( ? sub ? kind=alpha) ( ? sub ? weight>=40))"
        ),
        rounds=2,
        iterations=1,
    )
