"""E22: parallel scatter-gather -- wall-clock speedup without changing a
single answer.

One logical directory is split across a headquarters server plus four
delegated subnet servers, and the simulated network is given a *real*
per-message wire latency, so a spanning atomic query costs 2 messages per
remote owner of genuine waiting.  The worker pool overlaps those waits.

Expected shape: with w workers the fan-out over k remote owners takes
~ceil(k/w) x (2 x wire latency) instead of k x (2 x wire latency), so 4
workers over 4 remote owners approach a 4x speedup (acceptance bar: >=
2x).  Meanwhile the answers are *bit-identical* at every worker count --
same entries in the same order, same message/shipped accounting, same
coordinator page I/O -- and the single-worker pool never starts a
thread, so the default configuration pays zero overhead."""

import time

from repro.dist import FederatedDirectory, SimulatedNetwork
from repro.engine import QueryEngine
from repro.obs.metrics import MetricsRegistry
from repro.workload import balanced_instance

from ._util import record

SIZE = 1_000
SEED = 22
WORKERS = (1, 2, 4)
WIRE_LATENCY_S = 0.010
QUERY = "( ? sub ? kind=alpha)"  # null base: spans every server
ROUNDS = 5


def _build(max_workers, wire_latency_s=WIRE_LATENCY_S):
    instance = balanced_instance(SIZE, fanout=4, seed=SEED)
    root = next(iter(instance.roots())).dn
    subnets = [e.dn for e in instance if e.dn.depth() == 2][:4]
    assignments = {"hq": [root]}
    for index, subnet in enumerate(subnets):
        assignments["subnet%d" % index] = [subnet]
    network = SimulatedNetwork(wire_latency_s=wire_latency_s)
    federation = FederatedDirectory.partition(
        instance,
        assignments,
        page_size=16,
        network=network,
        leaf_cache_bytes=0,  # every remote leaf goes over the wire
        metrics=MetricsRegistry(),
        max_workers=max_workers,
    )
    return instance, federation, network


def _time_queries(federation, rounds=ROUNDS):
    # First query outside the timed window: it lazily builds each
    # server's engine (and, when parallel, starts the pool's threads).
    reference = federation.query("hq", QUERY)
    started = time.perf_counter()
    for _ in range(rounds):
        result = federation.query("hq", QUERY)
    elapsed = (time.perf_counter() - started) / rounds
    assert result.dns() == reference.dns()
    return reference, elapsed


def test_e22_parallel_speedup_and_identity(benchmark):
    instance, sequential_fed, _ = _build(max_workers=1)
    central = QueryEngine.from_instance(instance, page_size=16)
    oracle = central.run(QUERY).dns()

    rows = []
    results = {}
    times = {}
    for workers in WORKERS:
        _, federation, network = _build(max_workers=workers)
        try:
            result, elapsed = _time_queries(federation)
        finally:
            federation.close()
        results[workers] = result
        times[workers] = elapsed
        rows.append((
            workers,
            len(result),
            result.messages,
            result.entries_shipped,
            round(elapsed * 1e3, 2),
            round(times[1] / elapsed, 2),
        ))

    # Identity: every worker count returns the centralised answer, in the
    # same order, with the same traffic and the same coordinator I/O.
    baseline = results[1]
    assert baseline.dns() == oracle
    for workers in WORKERS[1:]:
        result = results[workers]
        assert result.dns() == baseline.dns()
        assert result.messages == baseline.messages
        assert result.entries_shipped == baseline.entries_shipped
        assert result.io.as_dict() == baseline.io.as_dict()

    # The default (sequential) federation is also bit-identical and never
    # starts a thread: the parallel layer is free when unused.
    default_result = sequential_fed.query("hq", QUERY)
    assert default_result.dns() == baseline.dns()
    assert default_result.io.as_dict() == baseline.io.as_dict()
    assert sequential_fed.pool.parallel_batches == 0
    assert sequential_fed.pool._executor is None

    # The acceptance bar: >= 2x wall-clock speedup at 4 workers (the
    # latency math says ~4x; 2x leaves slack for scheduling noise).
    speedup = times[1] / times[4]
    assert speedup >= 2.0, "4-worker speedup %.2fx < 2x" % speedup

    record(
        benchmark,
        "E22: scatter-gather speedup vs workers (%d entries, 4 remote owners,"
        " %.0fms wire latency)" % (SIZE, WIRE_LATENCY_S * 1e3),
        ("workers", "answer", "messages", "shipped", "ms/query", "speedup"),
        rows,
    )
    benchmark.pedantic(
        lambda: _time_queries(_build(max_workers=4)[1], rounds=1),
        rounds=2,
        iterations=1,
    )
