"""E4 (Theorem 6.1): simple aggregate selection ``(g L AggSel)`` costs at
most two scans of the input (one when the filter has no entry-set
aggregate)."""

from repro.engine.simpleagg import simple_agg_select
from repro.query.parser import parse_aggsel

from ._util import as_runs, assert_linear, fresh_pager, measure_io, operand_lists, record

SIZES = (1_000, 2_000, 4_000, 8_000)

GLOBAL_FILTER = parse_aggsel("min(weight)=min(min(weight))")
LOCAL_FILTER = parse_aggsel("count(tag) >= 1")


def _cost(agg_filter, size):
    _instance, subsets = operand_lists(seed=4, size=size, lists=1, fraction=0.8)
    pager = fresh_pager()
    (operand,) = as_runs(pager, subsets)
    result, logical, _physical = measure_io(
        pager, lambda: simple_agg_select(pager, operand, agg_filter)
    )
    return len(result), logical, operand.page_count


def test_e4_two_scans(benchmark):
    rows = []
    for label, agg_filter, scan_bound in (
        ("min=min(min)", GLOBAL_FILTER, 2),
        ("count>=1", LOCAL_FILTER, 1),
    ):
        costs = []
        for size in SIZES:
            selected, logical, input_pages = _cost(agg_filter, size)
            costs.append(logical)
            rows.append((label, size, selected, logical, input_pages,
                         round(logical / input_pages, 2)))
            # The theorem's bound: <= scan_bound input scans + output write.
            assert logical <= scan_bound * input_pages + selected / 16 + 2
        assert_linear(SIZES, costs)
    record(
        benchmark,
        "E4: simple aggregate selection scans",
        ("filter", "entries", "selected", "logical I/O", "input pages", "scans"),
        rows,
    )
    benchmark.pedantic(lambda: _cost(GLOBAL_FILTER, 2_000), rounds=3, iterations=1)
