"""E25: log-shipped replication -- shipping cost, resync vs catch-up,
failover.

Replication rides the durable change log (footnote 4 of the paper made
concrete): the primary accumulates lsn-stamped change records and ships
the suffix past each replica's acked lsn.  Three costs matter and this
experiment measures all of them on the simulated network:

- **Incremental shipping is linear in the delta.**  Catching a replica
  up after ``delta`` writes ships exactly ``delta`` records, independent
  of directory size -- the changelog suffix, not the database.
- **Resync is linear in the directory.**  A replica that fell behind the
  truncated changelog floor pays a full snapshot plus the log suffix;
  that is the price of bounding the changelog.
- **Failover is metadata-only.**  Promotion bumps the epoch and moves
  the shipping listener; re-converging the surviving replicas ships only
  the unreplicated tail, and the deposed primary rejoins by resync.

Expected shape: shipped records == writes at every size (no
amplification); resync entries track directory size while incremental
entries track the delta; failover re-shipping is bounded by the tail.
"""

from repro.dist import ReplicatedContext, SimulatedNetwork
from repro.dist.faults import FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.workload import synthetic_schema

from ._util import record

SIZES = (64, 128, 256, 512)
DELTA = 32
SECONDARIES = 2


def _group(network=None, ack="primary"):
    replicated = ReplicatedContext(
        "name=r",
        synthetic_schema(),
        secondaries=SECONDARIES,
        network=network if network is not None else SimulatedNetwork(),
        ack=ack,
        metrics=MetricsRegistry(),
    )
    replicated.add("name=r", ["node"], name="r")
    return replicated


def _load(replicated, count, prefix="e"):
    for index in range(count):
        replicated.add(
            "name=%s%d, name=r" % (prefix, index), ["node"],
            name="%s%d" % (prefix, index),
        )


def _shipping_run(size):
    """Bulk ship ``size`` writes, then an incremental ``DELTA`` catch-up."""
    network = SimulatedNetwork()
    replicated = _group(network)
    _load(replicated, size)
    replicated.sync()
    bulk_messages = network.messages
    bulk_entries = network.entries_shipped
    _load(replicated, DELTA, prefix="d")
    replicated.sync()
    incremental_entries = network.entries_shipped - bulk_entries
    return {
        "bulk_messages": bulk_messages,
        "bulk_entries": bulk_entries,
        "incremental_entries": incremental_entries,
        "shipped_records": int(
            replicated.metrics.get(
                "repro_replication_shipped_records_total").value()
        ),
        "changelog_after": replicated.changelog_length(),
    }


def _resync_run(size):
    """One replica sits out ``size`` writes behind a quorum floor, then
    rejoins: the catch-up is a snapshot resync, not a log replay."""
    plan = FaultPlan().partition("primary", "secondary1", 0.0, 5.0)
    network = FaultInjector(plan, metrics=MetricsRegistry())
    replicated = _group(network, ack="quorum")
    _load(replicated, size)
    # secondary0 acked everything via quorum writes; the changelog floor
    # advanced past secondary1's position.
    before = network.entries_shipped
    network.sleep(10.0)
    replicated.sync()
    return {
        "resync_entries": network.entries_shipped - before,
        "resyncs": replicated.resyncs,
        "lag_after": replicated.lag("secondary1"),
    }


def _failover_run(size, tail):
    """Sync, leave ``tail`` writes unshipped, promote, re-converge."""
    network = SimulatedNetwork()
    replicated = _group(network)
    _load(replicated, size)
    replicated.sync()
    _load(replicated, tail, prefix="t")
    replicated.sync()  # tail fully shipped: no writes are at risk
    before = network.entries_shipped
    replicated.promote()
    replicated.sync()  # deposed primary resyncs onto the new lineage
    replicated.sync()
    return {
        "new_primary": replicated.primary_name,
        "epoch": replicated.epoch,
        "reship_entries": network.entries_shipped - before,
        "resyncs": replicated.resyncs,
        "max_lag": max(replicated.lag(n) for n in replicated.nodes),
    }


def test_e25_shipping_is_linear_in_the_delta(benchmark):
    rows = []
    outcomes = {}
    for size in SIZES:
        outcome = _shipping_run(size)
        outcomes[size] = outcome
        rows.append((
            size,
            outcome["bulk_messages"],
            outcome["bulk_entries"],
            outcome["incremental_entries"],
            outcome["shipped_records"],
            outcome["changelog_after"],
        ))
        writes = size + 1  # the context root
        # No amplification: every write ships exactly once per replica.
        assert outcome["bulk_entries"] == writes * SECONDARIES
        # Incremental catch-up is the delta, independent of |directory|.
        assert outcome["incremental_entries"] == DELTA * SECONDARIES
        # Everything acked (ship implies ack here): changelog truncated.
        assert outcome["changelog_after"] == 0

    record(
        benchmark,
        "E25a: incremental shipping (%d secondaries, delta=%d)"
        % (SECONDARIES, DELTA),
        ("writes", "messages", "bulk entries", "delta entries",
         "records shipped", "changelog after"),
        rows,
    )
    benchmark.pedantic(lambda: _shipping_run(SIZES[0]), rounds=3)


def test_e25_resync_tracks_directory_size(benchmark):
    rows = []
    resync_entries = []
    for size in SIZES:
        outcome = _resync_run(size)
        rows.append((size, outcome["resync_entries"], outcome["resyncs"],
                     outcome["lag_after"]))
        assert outcome["resyncs"] == 1
        assert outcome["lag_after"] == 0
        # The resync ships at least the whole snapshot image.
        assert outcome["resync_entries"] >= size
        resync_entries.append(outcome["resync_entries"])
    # Resync cost grows with the directory (the changelog would not).
    assert resync_entries[-1] > resync_entries[0] * 2

    record(
        benchmark,
        "E25b: snapshot resync after falling behind the changelog floor",
        ("directory size", "resync entries", "resyncs", "lag after"),
        rows,
    )


def test_e25_failover_reships_only_the_tail(benchmark):
    rows = []
    for size, tail in ((128, 0), (128, 16), (512, 16)):
        outcome = _failover_run(size, tail)
        rows.append((size, tail, outcome["new_primary"], outcome["epoch"],
                     outcome["reship_entries"], outcome["resyncs"]))
        assert outcome["epoch"] == 2
        assert outcome["max_lag"] == 0
        # Re-convergence cost is bounded by the directory (deposed
        # primary resync), never a function of replication history.
        assert outcome["reship_entries"] <= (size + tail + 1) * 2
    # The two equal-size runs differ only in tail size; the 4x directory
    # shows resync cost, not history cost.
    record(
        benchmark,
        "E25c: failover cost (promote + re-converge)",
        ("directory size", "unshipped tail", "new primary", "epoch",
         "reshipped entries", "resyncs"),
        rows,
    )


def test_e25_schedules_are_deterministic():
    first = _resync_run(128)
    second = _resync_run(128)
    assert first == second
    assert _failover_run(128, 16) == _failover_run(128, 16)
