"""E21: availability under injected faults (the chaos benchmark).

One logical directory is split across a headquarters server plus three
delegated subnet servers; a seeded fault schedule drops a fraction of all
messages.  With retry + circuit breaking armed the federation should keep
answering: at a 10% drop rate the acceptance bar is >= 99% of queries
answered *exactly* (matching the centralised oracle), the rest degraded
to marked partial answers -- never silently wrong.

Expected shape: availability (answered / issued) stays at 1.0 in partial
mode; exactness falls slowly with the drop rate while retries climb; with
no faults planned the chaos toolkit is invisible (zero faults, zero
retries, all exact)."""

from repro.dist import (
    FaultInjector,
    FaultPlan,
    FederatedDirectory,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.engine import QueryEngine
from repro.obs.metrics import MetricsRegistry
from repro.workload import RandomQueries, balanced_instance

from ._util import record

DROP_RATES = (0.0, 0.05, 0.10, 0.20)
QUERIES = 120
SIZE = 700
SEED = 21


def _build(drop_rate):
    instance = balanced_instance(SIZE, fanout=4, seed=SEED)
    root = next(iter(instance.roots())).dn
    subnets = [e.dn for e in instance if e.dn.depth() == 2][:3]
    assignments = {"hq": [root]}
    for index, subnet in enumerate(subnets):
        assignments["subnet%d" % index] = [subnet]
    registry = MetricsRegistry()
    network = FaultInjector(
        FaultPlan(seed=SEED, drop_rate=drop_rate, latency_s=0.001),
        metrics=registry,
    )
    federation = FederatedDirectory.partition(
        instance,
        assignments,
        page_size=16,
        network=network,
        leaf_cache_bytes=0,  # every remote leaf goes over the faulty wire
        metrics=registry,
    )
    federation.enable_resilience(
        ResiliencePolicy(
            retry=RetryPolicy(max_attempts=6, backoff_s=0.002, seed=SEED),
            breaker_failure_threshold=8,
            breaker_reset_s=0.05,
            serve_stale=False,  # measure retries, not masking
            mode="partial",
        )
    )
    return instance, federation, network


def _run_workload(instance, federation, network):
    baseline = QueryEngine.from_instance(instance, page_size=16)
    queries = RandomQueries(instance, seed=SEED)
    exact = partial = mismatch = retries = 0
    for _ in range(QUERIES):
        query = queries.l0()
        expected = baseline.run(query).dns()
        result = federation.query("hq", query)
        retries += result.retries
        if result.partial:
            partial += 1
        elif result.dns() == expected:
            exact += 1
        else:
            mismatch += 1
    return {
        "exact": exact,
        "partial": partial,
        "mismatch": mismatch,
        "retries": retries,
        "faults": network.fault_count(),
        "sim_seconds": round(network.now, 4),
    }


def test_e21_availability_under_drops(benchmark):
    rows = []
    by_rate = {}
    for rate in DROP_RATES:
        instance, federation, network = _build(rate)
        outcome = _run_workload(instance, federation, network)
        by_rate[rate] = outcome
        rows.append((
            "%.0f%%" % (rate * 100),
            outcome["exact"],
            outcome["partial"],
            outcome["mismatch"],
            outcome["retries"],
            outcome["faults"],
            outcome["sim_seconds"],
        ))
        # Degradation is always *marked*: a non-partial answer is exact.
        assert outcome["mismatch"] == 0, rate

    # Fault-free run: the chaos toolkit is invisible.
    clean = by_rate[0.0]
    assert clean["exact"] == QUERIES
    assert clean["faults"] == 0 and clean["retries"] == 0

    # The acceptance bar: >= 99% exact at a 10% drop rate.
    assert by_rate[0.10]["exact"] >= QUERIES * 0.99
    # And retries are doing the work, not luck.
    assert by_rate[0.10]["retries"] > 0

    record(
        benchmark,
        "E21: availability vs drop rate (%d queries, %d entries, 4 servers)"
        % (QUERIES, SIZE),
        ("drop", "exact", "partial", "mismatch", "retries", "faults",
         "sim clock (s)"),
        rows,
    )
    benchmark.pedantic(
        lambda: _run_workload(*_build(0.10)),
        rounds=2,
        iterations=1,
    )
