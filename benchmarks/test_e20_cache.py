"""E20 (extension): the semantic query cache on skewed workloads.

A directory front-end sees heavily repeated queries (web-trace-like,
Zipf-distributed popularity).  The subtree-keyed cache should convert
that repetition into logical-I/O savings: on a Zipf(1.0) stream the
cached service must do at least 5x fewer page accesses than an uncached
one, and update-log invalidation must evict exactly the
footprint-intersecting entries -- everything else survives, including
across compaction.
"""

import random

from repro.cache import fingerprint
from repro.server import DirectoryService
from repro.workload import ZipfQueryStream, random_instance

from ._util import record

INSTANCE_SEED = 20
INSTANCE_SIZE = 500
STREAM_LENGTH = 300
DISTINCT = 32
CACHE_BYTES = 8 * 1024 * 1024  # generous: isolate hit-rate effects from eviction


def make_service(cache_bytes: int) -> DirectoryService:
    instance = random_instance(INSTANCE_SEED, size=INSTANCE_SIZE)
    return DirectoryService(
        instance, page_size=16, buffer_pages=8, cache_bytes=cache_bytes
    )


def stream_io(service: DirectoryService, queries) -> int:
    """Total logical page accesses to answer ``queries`` in order."""
    pager = service.directory.store.pager
    pager.flush()
    before = pager.stats.snapshot()
    for query in queries:
        service.search(query)
    delta = pager.stats.since(before)
    return delta.logical_reads + delta.logical_writes


def test_e20_io_reduction_vs_skew(benchmark):
    rows = []
    ratio_at_one = None
    for skew in (0.0, 0.5, 1.0, 1.5):
        instance = random_instance(INSTANCE_SEED, size=INSTANCE_SIZE)
        queries = ZipfQueryStream(
            instance, distinct=DISTINCT, skew=skew, seed=7
        ).take(STREAM_LENGTH)
        cached = make_service(CACHE_BYTES)
        uncached = make_service(0)
        io_cached = stream_io(cached, queries)
        io_uncached = stream_io(uncached, queries)
        stats = cached.cache_stats
        ratio = io_uncached / max(io_cached, 1)
        if skew == 1.0:
            ratio_at_one = ratio
        rows.append(
            (
                skew,
                io_uncached,
                io_cached,
                round(ratio, 1),
                round(stats.hit_rate, 3),
                stats.saved_logical_io,
            )
        )
    record(
        benchmark,
        "E20: logical I/O, cached vs uncached (%d queries, %d distinct)"
        % (STREAM_LENGTH, DISTINCT),
        ("skew", "uncached I/O", "cached I/O", "reduction", "hit rate", "saved I/O"),
        rows,
    )
    assert ratio_at_one is not None and ratio_at_one >= 5.0, (
        "expected >=5x I/O reduction at Zipf(1.0), got %.1fx" % ratio_at_one
    )
    benchmark.pedantic(
        lambda: stream_io(make_service(CACHE_BYTES), queries), rounds=2, iterations=1
    )


def test_e20_hit_rate_vs_update_rate(benchmark):
    """Interleaved point updates erode the hit rate gracefully: each modify
    evicts only the cached queries whose footprint covers the touched dn."""
    rows = []
    hit_rates = []
    for update_rate in (0.0, 0.02, 0.05, 0.10):
        instance = random_instance(INSTANCE_SEED, size=INSTANCE_SIZE)
        victims = [
            e.dn for e in instance if e.classes & {"node", "item"}
        ]
        queries = ZipfQueryStream(
            instance, distinct=DISTINCT, skew=1.0, seed=7
        ).take(STREAM_LENGTH)
        service = make_service(CACHE_BYTES)
        rng = random.Random(99)
        for index, query in enumerate(queries):
            service.search(query)
            if update_rate and rng.random() < update_rate:
                dn = rng.choice(victims)
                service.modify(dn, replace={"weight": [rng.randint(0, 100)]})
        stats = service.cache_stats
        hit_rates.append(stats.hit_rate)
        rows.append(
            (
                update_rate,
                stats.hits,
                stats.misses,
                stats.invalidations,
                round(stats.hit_rate, 3),
                stats.saved_logical_io,
            )
        )
    record(
        benchmark,
        "E20: hit rate vs update rate (Zipf 1.0)",
        ("update rate", "hits", "misses", "invalidated", "hit rate", "saved I/O"),
        rows,
    )
    assert hit_rates[0] >= hit_rates[-1], (
        "updates should not improve the hit rate: %s" % hit_rates
    )
    assert hit_rates[-1] > 0, "cache should retain value under 10%% updates"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e20_invalidation_precision(benchmark):
    """A targeted update evicts exactly the footprint-intersecting cached
    queries; the survivors stay correct across compaction."""
    instance = random_instance(INSTANCE_SEED, size=INSTANCE_SIZE, forest_roots=4)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    service = DirectoryService(
        instance, page_size=16, buffer_pages=8, cache_bytes=CACHE_BYTES
    )
    texts = ["(%s ? sub ? kind=alpha)" % root for root in roots]
    keys = [fingerprint(text) for text in texts]
    baselines = [service.search(text).dns() for text in texts]  # fill the cache
    assert all(key in service.cache for key in keys)

    # touch one child under the first root only
    victim = next(
        e.dn for e in instance
        if roots[0].is_ancestor_of(e.dn) and e.classes & {"node", "item"}
    )
    service.modify(victim, replace={"weight": [1]})
    evicted = [key for key in keys if key not in service.cache]
    survivors = [key for key in keys if key in service.cache]
    assert evicted == [keys[0]], "only the touched subtree's query evicts"
    assert len(survivors) == len(roots) - 1

    service.directory.compact()
    assert all(key in service.cache for key in survivors), (
        "compaction must not flush surviving entries"
    )
    for text, baseline, key in zip(texts[1:], baselines[1:], keys[1:]):
        result = service.search(text)
        assert result.cached, "survivor should hit after compaction"
        assert result.dns() == baseline
    record(
        benchmark,
        "E20: invalidation precision (4 subtree queries, 1 point update)",
        ("cached before", "evicted", "survived", "correct after compaction"),
        [(len(keys), len(evicted), len(survivors), len(survivors))],
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
