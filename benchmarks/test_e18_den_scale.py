"""E18 (extension; Section 3.4's closing observation): what each
partitioning style buys at scale.

TOPS partitions the namespace *by subscriber*, so resolving a call scopes
every query to one personal subtree: per-call I/O should stay flat as the
subscriber population grows.  The QoS directory partitions *by
functionality*, so a packet decision consults the whole policy set:
per-packet cost grows with the number of policies.  Both shapes are
measured on the same engine.
"""

from repro.apps import qos, tops
from repro.workload.den import (
    call_workload,
    packet_workload,
    qos_workload,
    tops_workload,
)

from ._util import record

TOPS_SIZES = (200, 400, 800)
QOS_SIZES = (50, 100, 200)
REQUESTS = 30


def _tops_cost(n_subscribers):
    directory = tops_workload(n_subscribers, seed=18)
    engine = directory.engine(page_size=16, buffer_pages=8)
    calls = call_workload(REQUESTS, n_subscribers, seed=18)
    engine.pager.flush()
    before = engine.pager.stats.snapshot()
    resolved = 0
    for request in calls:
        if tops.resolve_call(directory, request, engine):
            resolved += 1
    delta = engine.pager.stats.since(before)
    logical = delta.logical_reads + delta.logical_writes
    return resolved, logical / REQUESTS


def _qos_cost(n_policies):
    directory = qos_workload(n_policies, seed=18)
    engine = directory.engine(page_size=16, buffer_pages=8)
    pdp = qos.PolicyDecisionPoint(directory, engine)
    packets = packet_workload(REQUESTS, seed=18)
    engine.pager.flush()
    before = engine.pager.stats.snapshot()
    decided = 0
    for packet in packets:
        if pdp.decide(packet):
            decided += 1
    delta = engine.pager.stats.since(before)
    logical = delta.logical_reads + delta.logical_writes
    return decided, logical / REQUESTS


def test_e18_tops_per_call_flat(benchmark):
    rows = []
    costs = []
    for size in TOPS_SIZES:
        resolved, per_call = _tops_cost(size)
        costs.append(per_call)
        rows.append((size, resolved, round(per_call, 1)))
    record(
        benchmark,
        "E18a: TOPS (partitioned by subscriber) -- I/O per call vs population",
        ("subscribers", "calls resolved", "I/O per call"),
        rows,
    )
    # Per-call cost grows far slower than the 4x population growth.
    assert costs[-1] < costs[0] * 2.0
    benchmark.pedantic(lambda: _tops_cost(200), rounds=2, iterations=1)


def test_e18_qos_per_packet_grows(benchmark):
    rows = []
    costs = []
    for size in QOS_SIZES:
        decided, per_packet = _qos_cost(size)
        costs.append(per_packet)
        rows.append((size, decided, round(per_packet, 1)))
    record(
        benchmark,
        "E18b: QoS (partitioned by functionality) -- I/O per packet vs policies",
        ("policies", "packets matched", "I/O per packet"),
        rows,
    )
    # Whole-policy-set consultation: cost tracks the policy count.
    assert costs[-1] > costs[0] * 2.0
    benchmark.pedantic(lambda: _qos_cost(50), rounds=2, iterations=1)
