"""Shared helpers for the experiment benchmarks.

Each benchmark reproduces one experiment from DESIGN.md's index: it sweeps
a workload size, measures *I/O in the external-memory model* (page
transfers through the pager -- the quantity the paper's theorems bound),
prints a paper-style table, records it in the benchmark's ``extra_info``,
and asserts the claimed asymptotic *shape* (we do not chase the authors'
absolute constants; see EXPERIMENTS.md).

Telemetry: every :func:`record` also persists its table -- and every
:func:`measure_io` its wall-clock duration -- through
:class:`repro.obs.telemetry.BenchEmitter`, producing one machine-readable
``BENCH_<experiment>.json`` per benchmark module under
``benchmarks/results/`` (override with ``REPRO_BENCH_DIR``).  The
experiment name is derived from the calling module's file name
(``test_e13_boolean.py`` -> ``e13_boolean``), so existing benchmarks feed
the pipeline without per-call changes.
"""

from __future__ import annotations

import math
import os
import random
import sys
import time
from typing import Callable, Dict, List, Sequence, Tuple

from repro.obs.telemetry import BenchEmitter
from repro.storage.pager import Pager
from repro.storage.runs import Run, run_from_iterable
from repro.workload import balanced_instance, random_instance

PAGE_SIZE = 16
BUFFER_PAGES = 6

#: The process-wide emitter every benchmark module reports into.
EMITTER = BenchEmitter()


def _caller_experiment(depth: int = 2) -> str:
    """The experiment name of the benchmark module ``depth`` frames up
    (``benchmarks/test_e13_boolean.py`` -> ``e13_boolean``)."""
    frame = sys._getframe(depth)
    path = frame.f_globals.get("__file__", "")
    name = os.path.splitext(os.path.basename(path))[0]
    if name.startswith("test_"):
        name = name[len("test_"):]
    return name or "adhoc"


def fresh_pager(page_size: int = PAGE_SIZE, buffer_pages: int = BUFFER_PAGES) -> Pager:
    return Pager(page_size=page_size, buffer_pages=buffer_pages)


def operand_lists(seed: int, size: int, lists: int = 2, fraction: float = 0.5):
    """A random instance of ``size`` entries plus ``lists`` sorted operand
    subsets of roughly ``fraction`` of the entries each."""
    instance = random_instance(seed, size=size)
    entries = list(instance)
    rng = random.Random(seed * 31 + lists)
    subsets = []
    for _ in range(lists):
        count = int(len(entries) * fraction)
        subset = rng.sample(entries, count)
        subsets.append(sorted(subset, key=lambda e: e.dn.key()))
    return instance, subsets


def as_runs(pager: Pager, subsets) -> List[Run]:
    return [run_from_iterable(pager, subset) for subset in subsets]


def measure_io(pager: Pager, fn: Callable[[], object]) -> Tuple[object, int, int]:
    """Run ``fn``; return (result, logical page accesses, physical
    transfers).  Logical accesses are the model-level cost (independent of
    buffer luck); physical transfers show the buffer pool at work.  The
    wall-clock duration feeds the experiment's telemetry summary."""
    pager.flush()
    before = pager.stats.snapshot()
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    delta = pager.stats.since(before)
    EMITTER.add_timing(_caller_experiment(), elapsed)
    return result, delta.logical_reads + delta.logical_writes, delta.total


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    print("\n== %s ==" % title)
    widths = [
        max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(header))
    ]
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))


def growth_ratios(ns: Sequence[int], costs: Sequence[float]) -> List[float]:
    """cost ratio per size doubling; ~2 means linear, ~4 means quadratic."""
    return [
        costs[i + 1] / max(costs[i], 1) for i in range(len(costs) - 1)
    ]


def assert_linear(ns: Sequence[int], costs: Sequence[float], slack: float = 1.6):
    """Every doubling of n multiplies cost by at most ``2 * slack``."""
    for i, ratio in enumerate(growth_ratios(ns, costs)):
        size_ratio = ns[i + 1] / ns[i]
        assert ratio <= size_ratio * slack, (
            "superlinear growth: n %d->%d cost ratio %.2f" % (ns[i], ns[i + 1], ratio)
        )


def assert_superlinear(ns: Sequence[int], costs: Sequence[float], floor: float = 2.5):
    """At least one doubling grows cost by more than ``floor``x (the
    quadratic baselines)."""
    assert max(growth_ratios(ns, costs)) >= floor, (
        "expected superlinear growth, got ratios %s" % growth_ratios(ns, costs)
    )


def record(benchmark, title: str, header, rows) -> None:
    """Print the paper-style table, attach it to the pytest-benchmark
    ``extra_info`` and persist it as ``BENCH_<experiment>.json``."""
    print_table(title, header, rows)
    row_dicts = [dict(zip(header, row)) for row in rows]
    benchmark.extra_info[title] = row_dicts
    EMITTER.emit(
        _caller_experiment(),
        title,
        row_dicts,
        meta={"page_size": PAGE_SIZE, "buffer_pages": BUFFER_PAGES},
    )
