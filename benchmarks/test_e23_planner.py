"""E23 (extension): plan quality -- planned vs as-written operand order.

The skewed workload makes equal-looking operands wildly unequal: 90% of
entries are ``kind=alpha``, ``kind=omega`` never occurs, and deep
subtrees hold a tiny fraction of the directory.  Each query below is
written in its *worst* operand order; the paper-literal engine evaluates
it verbatim while the planned engine reorders by estimated selectivity,
short-circuits ``&``/``-`` on an empty first operand and pushes scopes
inward (R3--R6).  The gate: bit-identical results, strictly less page
I/O.  Both engines run without secondary indices so the measured gap is
purely plan shape, not access paths (E15 covers those).
"""

from repro.engine import QueryEngine
from repro.engine.optimizer import PlannedEngine
from repro.storage.store import DirectoryStore
from repro.workload import skewed_instance

from ._util import record

SIZES = (1_000, 2_000, 4_000)

#: (label, query in its as-written worst order).  The deep base
#: ``name=e2, name=e0`` roots ~1/16 of the balanced tree.
QUERIES = (
    ("short-circuit &", "(& ( ? sub ? kind=alpha) ( ? sub ? kind=omega))"),
    ("scope-tighten &",
     "(& ( ? sub ? kind=alpha) (name=e2, name=e0 ? sub ? weight<10))"),
    ("absorb cover",
     "(& ( ? sub ? objectClass=*) (name=e2, name=e0 ? sub ? kind=alpha))"),
    ("tighten -",
     "(- (name=e2, name=e0 ? sub ? kind=alpha) ( ? sub ? kind=beta))"),
    ("push-down c",
     "(c (name=e2, name=e0 ? sub ? kind=alpha) ( ? sub ? weight<10))"),
)


def _store(size):
    instance = skewed_instance(size, fanout=4, seed=23)
    return DirectoryStore.from_instance(instance, page_size=16, buffer_pages=8)


def _logical(result):
    return result.io.logical_reads + result.io.logical_writes


def test_e23_planned_vs_as_written(benchmark):
    rows = []
    for size in SIZES:
        store = _store(size)
        planned_engine = PlannedEngine(store, use_indices=False)
        naive = QueryEngine(store, use_indices=False)
        total_planned = total_naive = 0
        for label, query in QUERIES:
            planned_result = planned_engine.run(query)
            naive_result = naive.run(query)
            # Identity of results is part of the gate.
            assert planned_result.dns() == naive_result.dns(), (size, label)
            planned_cost = _logical(planned_result)
            naive_cost = _logical(naive_result)
            assert planned_cost <= naive_cost, (size, label)
            total_planned += planned_cost
            total_naive += naive_cost
            rows.append((size, label, planned_cost, naive_cost,
                         round(naive_cost / max(planned_cost, 1), 1)))
        # The headline gate: strictly less page I/O over the workload.
        assert total_planned < total_naive, size
        rows.append((size, "TOTAL", total_planned, total_naive,
                     round(total_naive / max(total_planned, 1), 1)))
    record(
        benchmark,
        "E23: plan quality, planned vs as-written operand order (skewed data)",
        ("entries", "query", "planned I/O", "as-written I/O", "saving"),
        rows,
    )
    benchmark.pedantic(
        lambda: PlannedEngine(_store(1_000), use_indices=False).run(QUERIES[0][1]),
        rounds=2,
        iterations=1,
    )
